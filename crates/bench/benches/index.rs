//! Benchmark: the three RQ index regimes side by side.
//!
//! * **small** (1.5k nodes, under the matrix limit): DM vs hop labels vs
//!   biBFS on one 64-query batch — the matrix wins, the labels sit close
//!   behind, search trails; this is why the planner prefers them in that
//!   order.
//! * **large** (50k nodes, 4 colors — far beyond any affordable matrix):
//!   hop labels vs the biBFS fallback, the regime the index subsystem was
//!   built for. Label memory is reported against the dense-matrix
//!   equivalent, and a one-shot speedup line is printed so the ≥5x
//!   acceptance bar is visible in plain bench output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_core::predicate::Predicate;
use rpq_core::rq::Rq;
use rpq_engine::{EngineConfig, Plan, Query, QueryEngine};
use rpq_graph::gen::youtube_like;
use rpq_graph::{DistanceMatrix, Graph};
use rpq_regex::FRegex;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// 64 distinct multi-atom RQs with selective endpoints (every query keys
/// differently, so the no-index engine plans per-query biBFS, not the
/// shared-key memo).
fn workload(g: &Graph, batch: usize) -> Vec<Query> {
    let regexes = [
        "fc^2 fr", "fr sc", "sc^3 sr", "fc fr^2", "sr^2 fc", "fr^3 sc", "sc fc", "sr fc^2",
    ];
    (0..batch)
        .map(|i| {
            let re = regexes[i % regexes.len()];
            let lo = (i * 7) % 300;
            Query::Rq(Rq::new(
                Predicate::parse(&format!("uid <= {}", 20 + lo), g.schema()).unwrap(),
                Predicate::parse(&format!("len >= {}", 40 + (i % 160)), g.schema()).unwrap(),
                FRegex::parse(re, g.alphabet()).unwrap(),
            ))
        })
        .collect()
}

fn engine(g: &Arc<Graph>, matrix_limit: usize, hop_budget: usize) -> QueryEngine {
    QueryEngine::with_config(
        Arc::clone(g),
        EngineConfig::builder()
            .matrix_node_limit(matrix_limit)
            .hop_label_budget(hop_budget)
            .build()
            .unwrap(),
    )
}

fn assert_plan(e: &QueryEngine, q: &Query, want: Plan) {
    let got = e.plan_query(q);
    assert_eq!(got, want, "bench engine must exercise the {want:?} path");
}

fn bench_small_three_way(c: &mut Criterion) {
    let g = Arc::new(youtube_like(1_500, 11));
    let queries = workload(&g, 64);

    let dm = engine(&g, usize::MAX, 0);
    dm.force_matrix();
    let hop = engine(&g, 0, 256 << 20);
    hop.force_hop_labels().expect("labels fit");
    let bibfs = engine(&g, 0, 0);
    assert_plan(&dm, &queries[0], Plan::RqDm);
    assert_plan(&hop, &queries[0], Plan::RqHop);
    assert_plan(&bibfs, &queries[0], Plan::RqBiBfs);

    let mut group = c.benchmark_group("rq_index_small_1500n");
    group.sample_size(10);
    for (name, e) in [("dm", &dm), ("hop", &hop), ("bibfs", &bibfs)] {
        group.bench_with_input(BenchmarkId::new(name, 64), &queries, |b, qs| {
            b.iter(|| black_box(e.run_batch(qs)))
        });
    }
    group.finish();
}

fn bench_large_hop_vs_bibfs(c: &mut Criterion) {
    // 50k nodes, 4 colors: DistanceMatrix::bytes_for estimates ~23 GB, so
    // the matrix regime is unreachable and the planner's only index choice
    // is the hop-label index.
    //
    // In CI smoke (`cargo bench -- --test`, one iteration per bench) a
    // 64-query biBFS batch at this size runs minutes; an 8-query batch
    // still proves hop == biBFS at 50k and keeps the smoke step cheap,
    // while real bench runs measure the full 64.
    let smoke = std::env::args().any(|a| a == "--test");
    let g = Arc::new(youtube_like(50_000, 42));
    let queries = workload(&g, if smoke { 8 } else { 64 });

    // 64 MiB budget: the concrete layers fit in ~10 MiB; the wildcard
    // (union-graph) layer blows past the remainder and is dropped — the
    // graceful-degradation path production budgets hit at this scale.
    // The workload is concrete-color, so every query still plans RqHop.
    let hop = engine(&g, 2048, 64 << 20);
    let t0 = Instant::now();
    let labels = hop.force_hop_labels().expect("concrete layers fit 64 MiB");
    let stats = labels.stats();
    println!("hop-label build: {:?} — {stats}", t0.elapsed());
    println!(
        "label memory: {:.1} MiB vs dense-matrix equivalent {:.1} GiB ({:.5}x)",
        stats.bytes as f64 / (1 << 20) as f64,
        DistanceMatrix::bytes_for(&g) as f64 / (1 << 30) as f64,
        stats.bytes as f64 / DistanceMatrix::bytes_for(&g) as f64,
    );
    assert!(stats.bytes < DistanceMatrix::bytes_for(&g));
    let bibfs = engine(&g, 2048, 0);
    assert_plan(&hop, &queries[0], Plan::RqHop);
    assert_plan(&bibfs, &queries[0], Plan::RqBiBfs);

    // one-shot acceptance line: identical answers, ≥5x wall-clock gap
    let t_hop = Instant::now();
    let out_hop = hop.run_batch(&queries);
    let t_hop = t_hop.elapsed();
    let t_bi = Instant::now();
    let out_bi = bibfs.run_batch(&queries);
    let t_bi = t_bi.elapsed();
    for (a, b) in out_hop.items().iter().zip(out_bi.items()) {
        assert_eq!(a.output, b.output, "hop answers must equal biBFS answers");
    }
    println!(
        "{}-query batch @50k nodes: hop {t_hop:?} vs biBFS {t_bi:?} — {:.1}x speedup",
        queries.len(),
        t_bi.as_secs_f64() / t_hop.as_secs_f64().max(1e-9)
    );

    let mut group = c.benchmark_group("rq_index_large_50000n");
    // a biBFS batch at this scale runs minutes; two samples bound the
    // bench's wall clock while the one-shot line above carries the
    // acceptance comparison
    group.sample_size(2);
    group.bench_with_input(BenchmarkId::new("hop", queries.len()), &queries, |b, qs| {
        b.iter(|| black_box(hop.run_batch(qs)))
    });
    group.bench_with_input(
        BenchmarkId::new("bibfs", queries.len()),
        &queries,
        |b, qs| b.iter(|| black_box(bibfs.run_batch(qs))),
    );
    group.finish();
}

criterion_group!(benches, bench_small_three_way, bench_large_hop_vs_bibfs);
criterion_main!(benches);
