//! Benchmark: the incremental-maintenance path (§7).
//!
//! * `dynamic_apply` — batches of U edge updates against a 10k-edge graph.
//!   The edge-indexed apply is O(|V| + |E| + U): the per-batch time is
//!   dominated by the one CSR rebuild and stays essentially flat as U
//!   grows 100× (the pre-index implementation scanned the edge list per
//!   update — O(U·|E|) — and slowed ~linearly in U).
//! * `standing_pq` — maintaining a standing PQ through a single-edge
//!   update (`IncrementalMatcher::on_update` + `result`) vs. evaluating
//!   from scratch, the saving that motivates the live serving layer.
//! * `live_steady_state` — a mixed read/write stream against an
//!   `UpdatableEngine` in the sharded label regime: per-batch apply cost
//!   with incremental index repair vs. the from-scratch sharded rebuild
//!   the retire-and-rebuild design paid, and query latency on a snapshot
//!   that keeps its index through writes vs. the read-only baseline.
//!   Answers are asserted exact before anything is timed. With
//!   `BENCH_JSON_DIR` set, medians land in `BENCH_incremental.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_core::incremental::{DynamicGraph, IncrementalMatcher, Update};
use rpq_core::pq::Pq;
use rpq_core::predicate::Predicate;
use rpq_core::rq::Rq;
use rpq_engine::{EngineConfig, IndexState, Query, UpdatableEngine};
use rpq_graph::gen::{clustered, synthetic};
use rpq_graph::{Color, Graph, NodeId};
use rpq_index::ShardedLabels;
use rpq_regex::FRegex;
use std::hint::black_box;
use std::sync::Arc;

const NODES: usize = 2000;
const EDGES: usize = 10_000;
const COLORS: u8 = 3;

fn random_updates(seed: u64, count: usize, nodes: u32) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let x = NodeId(rng.gen_range(0..nodes));
            let y = NodeId(rng.gen_range(0..nodes));
            let c = Color(rng.gen_range(0..COLORS));
            if rng.gen_bool(0.5) {
                Update::Insert(x, y, c)
            } else {
                Update::Delete(x, y, c)
            }
        })
        .collect()
}

fn bench_apply(c: &mut Criterion) {
    let base = DynamicGraph::new(synthetic(NODES, EDGES, 2, COLORS as usize, 42));
    let mut group = c.benchmark_group("dynamic_apply");
    group.sample_size(10);
    for &batch in &[10usize, 100, 1000] {
        let updates = random_updates(7, batch, NODES as u32);
        group.bench_with_input(
            BenchmarkId::new("10k_edges", batch),
            &updates,
            |b, updates| {
                b.iter(|| {
                    // the graph image is an Arc: cloning the overlay is O(1)
                    let mut dg = base.clone();
                    black_box(dg.apply(updates).len())
                })
            },
        );
    }
    group.finish();
}

fn bench_standing_pq(c: &mut Criterion) {
    let base = DynamicGraph::new(synthetic(400, 1400, 2, COLORS as usize, 5));
    let mut pq = Pq::new();
    let a = pq.add_node(
        "a",
        Predicate::parse("a0 <= 5", base.graph().schema()).unwrap(),
    );
    let b = pq.add_node("b", Predicate::always_true());
    pq.add_edge(
        a,
        b,
        FRegex::parse("c0^2 c1", base.graph().alphabet()).unwrap(),
    );
    pq.add_edge(b, a, FRegex::parse("_+", base.graph().alphabet()).unwrap());
    let updates = random_updates(11, 16, 400);

    let mut group = c.benchmark_group("standing_pq");
    group.sample_size(10);
    group.bench_function("maintain_16_updates", |bch| {
        bch.iter(|| {
            let mut dg = base.clone();
            let mut inc = IncrementalMatcher::new(pq.clone(), &dg);
            for u in &updates {
                let eff = dg.apply(std::slice::from_ref(u));
                inc.on_update(&dg, &eff);
            }
            black_box(inc.result(&dg).size())
        })
    });
    group.bench_function("reeval_16_updates", |bch| {
        bch.iter(|| {
            let mut dg = base.clone();
            let inc = IncrementalMatcher::new(pq.clone(), &dg);
            let mut size = 0usize;
            for u in &updates {
                dg.apply(std::slice::from_ref(u));
                size = inc.full_reeval(&dg).size();
            }
            black_box(size)
        })
    });
    group.finish();
}

const LIVE_NODES: usize = 4000;
const LIVE_EDGES: usize = 12_000;
const LIVE_SHARDS: usize = 4;

fn live_queries(g: &Graph, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = ["c0^2 c1", "c1^3", "c0 c1^2", "c2^2"];
    (0..count)
        .map(|_| {
            Query::Rq(Rq::new(
                Predicate::parse(&format!("a0 <= {}", rng.gen_range(2..6)), g.schema()).unwrap(),
                Predicate::parse(&format!("a1 >= {}", rng.gen_range(5..9)), g.schema()).unwrap(),
                FRegex::parse(pool[rng.gen_range(0..pool.len())], g.alphabet()).unwrap(),
            ))
        })
        .collect()
}

fn bench_live_steady_state(c: &mut Criterion) {
    let g = clustered(LIVE_NODES, LIVE_EDGES, LIVE_SHARDS, 2, 3, 20, 13);
    criterion::report_context("live_graph_nodes", g.node_count());
    criterion::report_context("live_graph_edges", g.edge_count());
    criterion::report_context("live_shards", LIVE_SHARDS);

    let engine = UpdatableEngine::with_config(
        g,
        EngineConfig::builder()
            .matrix_node_limit(0) // label regime at every size
            .hop_label_budget(0) // single-index path disabled
            .shards(LIVE_SHARDS)
            .workers(4)
            .build()
            .unwrap(),
    );
    // under a sustained write stream a background build never lands (each
    // publication retires it), so the steady state starts from a built
    // index — exactly what the repair path is for
    engine
        .snapshot()
        .engine()
        .force_sharded_labels()
        .expect("bench graph fits the default shard budget");

    // correctness gate: after a write, label-backed answers equal plain BFS
    {
        let report = engine
            .apply(&random_updates(3, 8, LIVE_NODES as u32))
            .unwrap();
        assert_eq!(report.index.state, IndexState::Repaired, "repair declined");
        let snap = report.snapshot;
        for q in live_queries(snap.graph(), 4, 99) {
            let Query::Rq(rq) = &q else { unreachable!() };
            assert_eq!(
                snap.run_query(&q).as_rq().unwrap(),
                &rq.eval_bfs(snap.graph()),
                "carried index diverged from uncached evaluation"
            );
        }
    }

    let mut group = c.benchmark_group("live_steady_state");
    group.sample_size(10);

    // per-batch apply cost with the index carried through repair …
    let mut write_seed = 1000u64;
    group.bench_function("apply4_with_repair", |b| {
        b.iter(|| {
            write_seed += 1;
            let updates = random_updates(write_seed, 4, LIVE_NODES as u32);
            let report = engine.apply(&updates).unwrap();
            if report.index.state != IndexState::Repaired {
                // a broad batch (intra changes across > k/2 shards)
                // retired the index; in production the next write pause
                // lets the background rebuild land — stand in for that
                // pause so the stream stays in the repair regime
                report.snapshot.engine().force_sharded_labels().unwrap();
            }
            black_box((report.applied, report.index.labels_repaired))
        })
    });
    // … vs. what retire-and-rebuild paid per batch: a from-scratch
    // sharded build of the current graph image
    group.bench_function("rebuild_reference", |b| {
        let g = Arc::clone(engine.snapshot().graph());
        b.iter(|| black_box(ShardedLabels::build(&g, LIVE_SHARDS).stats().overlay_bytes))
    });

    // read latency on a snapshot whose index rode through the writes,
    // vs. the same batch on the write-free baseline
    // settle on a snapshot that verifiably rode through a repair (the
    // timed stream above may have ended on a declined batch)
    let snap = loop {
        let s = engine.snapshot();
        if s.index_state() == IndexState::Repaired && s.engine().sharded_ready() {
            break s;
        }
        s.engine().force_sharded_labels().unwrap();
        write_seed += 1;
        engine
            .apply(&random_updates(write_seed, 2, LIVE_NODES as u32))
            .unwrap();
    };
    let queries = live_queries(snap.graph(), 8, 7);
    group.bench_function("read8_after_writes", |b| {
        b.iter(|| black_box(snap.run_batch(&queries).len()))
    });
    group.bench_function("read8_read_only", |b| {
        let frozen = UpdatableEngine::with_config(
            snap.graph().as_ref().clone(),
            snap.engine().config().clone(),
        );
        frozen.snapshot().engine().force_sharded_labels().unwrap();
        let ro = frozen.snapshot();
        b.iter(|| black_box(ro.run_batch(&queries).len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_apply,
    bench_standing_pq,
    bench_live_steady_state
);
criterion_main!(benches);
