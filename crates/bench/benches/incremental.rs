//! Benchmark: the incremental-maintenance path (§7).
//!
//! * `dynamic_apply` — batches of U edge updates against a 10k-edge graph.
//!   The edge-indexed apply is O(|V| + |E| + U): the per-batch time is
//!   dominated by the one CSR rebuild and stays essentially flat as U
//!   grows 100× (the pre-index implementation scanned the edge list per
//!   update — O(U·|E|) — and slowed ~linearly in U).
//! * `standing_pq` — maintaining a standing PQ through a single-edge
//!   update (`IncrementalMatcher::on_update` + `result`) vs. evaluating
//!   from scratch, the saving that motivates the live serving layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_core::incremental::{DynamicGraph, IncrementalMatcher, Update};
use rpq_core::pq::Pq;
use rpq_core::predicate::Predicate;
use rpq_graph::gen::synthetic;
use rpq_graph::{Color, NodeId};
use rpq_regex::FRegex;
use std::hint::black_box;

const NODES: usize = 2000;
const EDGES: usize = 10_000;
const COLORS: u8 = 3;

fn random_updates(seed: u64, count: usize, nodes: u32) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let x = NodeId(rng.gen_range(0..nodes));
            let y = NodeId(rng.gen_range(0..nodes));
            let c = Color(rng.gen_range(0..COLORS));
            if rng.gen_bool(0.5) {
                Update::Insert(x, y, c)
            } else {
                Update::Delete(x, y, c)
            }
        })
        .collect()
}

fn bench_apply(c: &mut Criterion) {
    let base = DynamicGraph::new(synthetic(NODES, EDGES, 2, COLORS as usize, 42));
    let mut group = c.benchmark_group("dynamic_apply");
    group.sample_size(10);
    for &batch in &[10usize, 100, 1000] {
        let updates = random_updates(7, batch, NODES as u32);
        group.bench_with_input(
            BenchmarkId::new("10k_edges", batch),
            &updates,
            |b, updates| {
                b.iter(|| {
                    // the graph image is an Arc: cloning the overlay is O(1)
                    let mut dg = base.clone();
                    black_box(dg.apply(updates).len())
                })
            },
        );
    }
    group.finish();
}

fn bench_standing_pq(c: &mut Criterion) {
    let base = DynamicGraph::new(synthetic(400, 1400, 2, COLORS as usize, 5));
    let mut pq = Pq::new();
    let a = pq.add_node(
        "a",
        Predicate::parse("a0 <= 5", base.graph().schema()).unwrap(),
    );
    let b = pq.add_node("b", Predicate::always_true());
    pq.add_edge(
        a,
        b,
        FRegex::parse("c0^2 c1", base.graph().alphabet()).unwrap(),
    );
    pq.add_edge(b, a, FRegex::parse("_+", base.graph().alphabet()).unwrap());
    let updates = random_updates(11, 16, 400);

    let mut group = c.benchmark_group("standing_pq");
    group.sample_size(10);
    group.bench_function("maintain_16_updates", |bch| {
        bch.iter(|| {
            let mut dg = base.clone();
            let mut inc = IncrementalMatcher::new(pq.clone(), &dg);
            for u in &updates {
                let eff = dg.apply(std::slice::from_ref(u));
                inc.on_update(&dg, &eff);
            }
            black_box(inc.result(&dg).size())
        })
    });
    group.bench_function("reeval_16_updates", |bch| {
        bch.iter(|| {
            let mut dg = base.clone();
            let inc = IncrementalMatcher::new(pq.clone(), &dg);
            let mut size = 0usize;
            for u in &updates {
                dg.apply(std::slice::from_ref(u));
                size = inc.full_reeval(&dg).size();
            }
            black_box(size)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_apply, bench_standing_pq);
criterion_main!(benches);
