//! Criterion micro-benchmark behind Figs. 11-12: `SplitMatch` with the
//! matrix and cached backends as pattern size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::querygen::{generate_pq, QueryParams};
use rpq_core::{CachedReach, MatrixReach, SplitMatch};
use rpq_graph::gen::youtube_like;
use rpq_graph::DistanceMatrix;
use std::hint::black_box;

fn bench_split(c: &mut Criterion) {
    let g = youtube_like(1200, 42);
    let m = DistanceMatrix::build(&g);
    let mut group = c.benchmark_group("pq_split_fig11");
    group.sample_size(10);
    for nv in [4usize, 8, 12] {
        let mut p = QueryParams::defaults();
        p.nodes = nv;
        p.edges = nv + 2;
        let pq = generate_pq(&g, &p, 11);
        group.bench_with_input(BenchmarkId::new("SplitMatchM", nv), &pq, |b, pq| {
            b.iter(|| black_box(SplitMatch::eval(pq, &g, &mut MatrixReach::new(&m))))
        });
        group.bench_with_input(BenchmarkId::new("SplitMatchC", nv), &pq, |b, pq| {
            b.iter(|| {
                let mut cache = CachedReach::with_default_capacity();
                black_box(SplitMatch::eval(pq, &g, &mut cache))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_split);
criterion_main!(benches);
