//! Criterion micro-benchmark behind Figs. 11(a)-(d): `JoinMatch` with the
//! matrix and cached backends as pattern size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::querygen::{generate_pq, QueryParams};
use rpq_core::{CachedReach, JoinMatch, MatrixReach};
use rpq_graph::gen::youtube_like;
use rpq_graph::DistanceMatrix;
use std::hint::black_box;

fn bench_join(c: &mut Criterion) {
    let g = youtube_like(1200, 42);
    let m = DistanceMatrix::build(&g);
    let mut group = c.benchmark_group("pq_join_fig11");
    group.sample_size(10);
    for nv in [4usize, 8, 12] {
        let mut p = QueryParams::defaults();
        p.nodes = nv;
        p.edges = nv + 2;
        let pq = generate_pq(&g, &p, 11);
        group.bench_with_input(BenchmarkId::new("JoinMatchM", nv), &pq, |b, pq| {
            b.iter(|| black_box(JoinMatch::eval(pq, &g, &mut MatrixReach::new(&m))))
        });
        group.bench_with_input(BenchmarkId::new("JoinMatchC", nv), &pq, |b, pq| {
            b.iter(|| {
                let mut cache = CachedReach::with_default_capacity();
                black_box(JoinMatch::eval(pq, &g, &mut cache))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
