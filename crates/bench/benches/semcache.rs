//! Benchmark: the semantic subsumption cache under skewed many-user
//! traffic — a Zipfian query mix where popular queries arrive respelled
//! (syntactic variants of one language) and narrowed (stricter source
//! predicates), the redundancy pattern ROADMAP item 2 targets.
//!
//! The uncached baseline runs every batch on a throwaway memo (in-batch
//! exact sharing only, the pre-semantic-cache behavior); the cached run
//! reuses one engine-lifetime [`SemanticMemo`] across batches, so
//! repeats exact-hit, respellings unify on canonical keys, and narrowed
//! queries are answered by filtering cached reach sets. Answers are
//! asserted bit-identical before anything is timed, the warm cached
//! pass is asserted faster than the uncached baseline, and the semantic
//! hit rate of non-cold traffic is asserted past 50%. With
//! `BENCH_JSON_DIR` set, medians land in `BENCH_semcache.json` together
//! with the hit-rate context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_core::predicate::Predicate;
use rpq_core::rq::Rq;
use rpq_engine::{EngineConfig, Query, QueryEngine, SemanticMemo};
use rpq_graph::gen::clustered;
use rpq_graph::Graph;
use rpq_regex::canon::runs;
use rpq_regex::{Atom, FRegex, Quant};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: usize = 8_000;
const EDGES: usize = 28_000;
const POOL: usize = 12;
const BATCH: usize = 96;
const ZIPF_S: f64 = 1.1;

/// Respell a regex into a syntactic variant of the same language: each
/// maximal same-color run keeps its (min, max) interval but moves the
/// quantifier slack to a picked position.
fn respell(re: &FRegex, rng: &mut StdRng) -> FRegex {
    let mut atoms = Vec::new();
    for run in runs(re) {
        let n = run.min as usize;
        let pos = rng.gen_range(0..n);
        let tail = match run.max {
            None => Quant::Plus,
            Some(m) => {
                let slack = (m - run.min as u64) as u32;
                if slack == 0 {
                    Quant::One
                } else {
                    Quant::AtMost(slack + 1)
                }
            }
        };
        for j in 0..n {
            atoms.push(Atom::new(
                run.color,
                if j == pos { tail } else { Quant::One },
            ));
        }
    }
    FRegex::new(atoms)
}

/// The base query pool — the "popular queries" the Zipfian mix repeats.
/// Each entry keeps its source-predicate text so the workload can
/// derive narrowed (conjunct-appended) forms.
fn base_pool(g: &Graph) -> Vec<(Rq, String)> {
    let regexes = [
        "c0^3", "c1^2 c0", "c0 c1^3", "c2^2 c1", "c0+", "c1^4", "c2 c0^2", "c1 c2^2", "c0^2 c2",
        "c2+", "c0 c1 c0", "c1^3 c2",
    ];
    (0..POOL)
        .map(|i| {
            let from = format!("a0 <= {}", 4 + i % 4);
            let to = format!("a1 >= {}", i % 3);
            let rq = Rq::new(
                Predicate::parse(&from, g.schema()).unwrap(),
                Predicate::parse(&to, g.schema()).unwrap(),
                FRegex::parse(regexes[i % regexes.len()], g.alphabet()).unwrap(),
            );
            (rq, from)
        })
        .collect()
}

/// A Zipf(s)-distributed batch over the pool. With probability
/// `variant_rate` a sampled query arrives *respelled*; a third of the
/// variants additionally arrive with a *narrowed* source predicate (a
/// conjunct appended), exercising the containment path.
fn zipf_workload(g: &Graph, pool: &[(Rq, String)], variant_rate: f64, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (1..=pool.len())
        .map(|r| 1.0 / (r as f64).powf(ZIPF_S))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut out = Vec::with_capacity(BATCH);
    for _ in 0..BATCH {
        let mut u = rng.gen::<f64>() * total;
        let mut idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if u < *w {
                idx = i;
                break;
            }
            u -= w;
        }
        let (base, from_text) = &pool[idx];
        let mut rq = base.clone();
        if variant_rate > 0.0 && rng.gen_bool(variant_rate) {
            rq.regex = respell(&rq.regex, &mut rng);
            if rng.gen_range(0..3) == 0 {
                let narrowed = format!("{from_text} && a1 <= 7");
                rq.from = Predicate::parse(&narrowed, g.schema()).unwrap();
            }
        }
        out.push(Query::Rq(rq));
    }
    out
}

fn median_of(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn bench_semcache(c: &mut Criterion) {
    let g = Arc::new(clustered(NODES, EDGES, 8, 2, 3, 3, 7));
    let engine = QueryEngine::with_config(
        Arc::clone(&g),
        EngineConfig::builder()
            .workers(1)
            .matrix_node_limit(0)
            .hop_label_budget(64 << 20)
            .build()
            .unwrap(),
    );
    engine.force_hop_labels().expect("fits the budget");
    criterion::report_context("graph_nodes", g.node_count());
    criterion::report_context("graph_edges", g.edge_count());
    criterion::report_context("pool", POOL);
    criterion::report_context("batch", BATCH);
    criterion::report_context("zipf_s", format!("{ZIPF_S}"));

    let pool = base_pool(&g);
    let queries = zipf_workload(&g, &pool, 0.6, 3);

    // parity gate: the cached run must be bit-identical to the uncached
    // baseline before anything is timed
    let memo = SemanticMemo::persistent();
    let uncached_out = engine.run_batch(&queries);
    let cached_out = engine.run_batch_with_memo(&queries, &memo);
    for (i, (u, s)) in uncached_out
        .items()
        .iter()
        .zip(cached_out.items())
        .enumerate()
    {
        assert_eq!(u.output, s.output, "query {i} diverged cached vs uncached");
    }
    let warm_out = engine.run_batch_with_memo(&queries, &memo);
    for (i, (u, s)) in uncached_out
        .items()
        .iter()
        .zip(warm_out.items())
        .enumerate()
    {
        assert_eq!(u.output, s.output, "query {i} diverged on the warm pass");
    }

    // hit-rate acceptance: every miss is cold (compulsory) traffic, so
    // hits/total over the replayed workload bounds the non-cold hit rate
    // from below — it must clear the 50% floor
    let stats = memo.semantic_stats();
    let total = stats.hits() + stats.misses;
    let hit_rate = stats.hits() as f64 / total.max(1) as f64;
    println!(
        "semcache: {} lookups, {} exact + {} subsumption hits, {} cold misses ({} cached keys) — {:.1}% served semantically",
        total,
        stats.exact_hits,
        stats.subsumption_hits,
        stats.misses,
        memo.len(),
        100.0 * hit_rate
    );
    assert!(
        hit_rate > 0.5,
        "semantic hit rate {:.2} below the 50% acceptance floor",
        hit_rate
    );
    criterion::report_context("exact_hits", stats.exact_hits);
    criterion::report_context("subsumption_hits", stats.subsumption_hits);
    criterion::report_context("misses", stats.misses);
    criterion::report_context("cached_keys", memo.len());
    criterion::report_context("hit_rate", format!("{hit_rate:.4}"));

    // latency acceptance: median warm cached batch beats the uncached
    // baseline
    let runs_each = 5;
    let uncached_med = median_of(
        (0..runs_each)
            .map(|_| {
                let t = Instant::now();
                black_box(engine.run_batch(&queries));
                t.elapsed()
            })
            .collect(),
    );
    let cached_med = median_of(
        (0..runs_each)
            .map(|_| {
                let t = Instant::now();
                black_box(engine.run_batch_with_memo(&queries, &memo));
                t.elapsed()
            })
            .collect(),
    );
    println!(
        "semcache: batch median {:.2?} uncached vs {:.2?} warm cached ({:.1}x)",
        uncached_med,
        cached_med,
        uncached_med.as_secs_f64() / cached_med.as_secs_f64().max(1e-9),
    );
    assert!(
        cached_med < uncached_med,
        "warm cached batch ({cached_med:?}) must beat the uncached baseline ({uncached_med:?})"
    );
    criterion::report_context("uncached_median_us", uncached_med.as_micros() as u64);
    criterion::report_context("cached_median_us", cached_med.as_micros() as u64);

    // variant-rate sweep: how the hit mix shifts as more of the traffic
    // arrives respelled/narrowed
    let mut group = c.benchmark_group("semcache");
    group.sample_size(10);
    for rate in [0u32, 30, 60] {
        let sweep = zipf_workload(&g, &pool, rate as f64 / 100.0, 17 + rate as u64);
        let sweep_memo = SemanticMemo::persistent();
        engine.run_batch_with_memo(&sweep, &sweep_memo); // warm it
        group.bench_with_input(
            BenchmarkId::new(format!("batch96_cached_v{rate}"), NODES),
            &sweep,
            |b, qs| b.iter(|| black_box(engine.run_batch_with_memo(qs, &sweep_memo))),
        );
        let s = sweep_memo.semantic_stats();
        criterion::report_context(&format!("v{rate}_exact_hits"), s.exact_hits);
        criterion::report_context(&format!("v{rate}_subsumption_hits"), s.subsumption_hits);
    }
    group.bench_with_input(
        BenchmarkId::new("batch96_uncached", NODES),
        &queries,
        |b, qs| b.iter(|| black_box(engine.run_batch(qs))),
    );
    group.finish();
}

criterion_group!(benches, bench_semcache);
criterion_main!(benches);
