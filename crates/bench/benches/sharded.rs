//! Benchmark: the sharded backend against the single-index hop backend —
//! the build-side numbers (partition quality, parallel per-shard build
//! time, per-shard vs whole-graph label memory) and the serving-side cost
//! of stitching probes through the boundary overlay.
//!
//! Answers are asserted identical across backends before anything is
//! timed. With `BENCH_JSON_DIR` set, medians land in `BENCH_sharded.json`
//! together with the graph/partition context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_core::predicate::Predicate;
use rpq_core::rq::Rq;
use rpq_engine::{EngineConfig, Query, QueryEngine, QueryService, ShardedEngine};
use rpq_graph::gen::clustered;
use rpq_graph::Graph;
use rpq_index::ShardedLabels;
use rpq_regex::FRegex;
use std::hint::black_box;
use std::sync::Arc;

const NODES: usize = 20_000;
const EDGES: usize = 60_000;
const SHARDS: usize = 4;

fn workload(g: &Graph, count: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    // concrete colors only: the wildcard union layer is budget-dropped
    // at bench scale on both backends (same regime as the scale test)
    let pool = ["c0^2 c1", "c1^3", "c0 c1^2", "c2^2", "c0+"];
    (0..count)
        .map(|_| {
            let from = format!(
                "a0 = {} && a1 >= {}",
                rng.gen_range(0..10),
                rng.gen_range(4..9)
            );
            let to = format!("a1 <= {}", rng.gen_range(3..7));
            Query::Rq(Rq::new(
                Predicate::parse(&from, g.schema()).unwrap(),
                Predicate::parse(&to, g.schema()).unwrap(),
                FRegex::parse(pool[rng.gen_range(0..pool.len())], g.alphabet()).unwrap(),
            ))
        })
        .collect()
}

fn bench_sharded(c: &mut Criterion) {
    let g = Arc::new(clustered(NODES, EDGES, 8, 2, 3, 3, 11));
    // report_context keys live in one process-global map (last write per
    // key wins), so each group's graph gets its own distinctly-named
    // keys: `batch_graph_*` for the `sharded/batch64_*` rows,
    // `build_graph_*` for the `sharded_build/*` rows
    criterion::report_context("batch_graph_nodes", g.node_count());
    criterion::report_context("batch_graph_edges", g.edge_count());
    criterion::report_context("shards", SHARDS);

    // reference: the single hop-label index
    let hop_engine = QueryEngine::with_config(
        Arc::clone(&g),
        EngineConfig::builder()
            .matrix_node_limit(0)
            // concrete layers fit easily; the wildcard attempt aborts at
            // the cap instead of burning minutes of build time
            .hop_label_budget(64 << 20)
            .build()
            .unwrap(),
    );
    let hop = hop_engine.force_hop_labels().expect("fits default budget");

    // the sharded stack, with its build/shape numbers printed once
    let sharded_engine = ShardedEngine::build(
        Arc::clone(&g),
        EngineConfig::builder()
            .shards(SHARDS)
            .shard_memory_budget(64 << 20)
            .build()
            .unwrap(),
    )
    .expect("concrete layers fit the per-shard budget");
    let stats = sharded_engine.stats();
    println!(
        "sharded build {:.2?}: {stats}\n  vs single index {} KiB — max per-shard {} KiB ({:.1}% of it), edge-cut {:.2}%",
        sharded_engine.build_time(),
        hop.bytes() / 1024,
        stats.max_shard_bytes() / 1024,
        100.0 * stats.max_shard_bytes() as f64 / hop.bytes().max(1) as f64,
        100.0 * stats.edge_cut_ratio,
    );
    criterion::report_context("edge_cut_ratio", format!("{:.4}", stats.edge_cut_ratio));
    criterion::report_context("max_shard_bytes", stats.max_shard_bytes());
    criterion::report_context("single_index_bytes", hop.bytes());
    criterion::report_context("build_ms", sharded_engine.build_time().as_millis());

    // answers must be identical before anything is timed
    let queries = workload(&g, 64, 5);
    let hop_out = hop_engine.run_batch(&queries);
    let sharded_out = sharded_engine.run_batch(&queries);
    for (i, (h, s)) in hop_out.items().iter().zip(sharded_out.items()).enumerate() {
        assert_eq!(h.output, s.output, "query {i} diverged across backends");
    }

    let mut group = c.benchmark_group("sharded");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("batch64_hop", NODES),
        &queries,
        |b, queries| b.iter(|| black_box(hop_engine.run_batch(queries))),
    );
    group.bench_with_input(
        BenchmarkId::new("batch64_sharded", NODES),
        &queries,
        |b, queries| b.iter(|| black_box(sharded_engine.run_batch(queries))),
    );
    group.finish();

    // build-side: partition + parallel per-shard labels + overlay, on a
    // smaller graph so samples stay in bench time
    let small = Arc::new(clustered(5_000, 20_000, 8, 2, 3, 3, 13));
    criterion::report_context("build_graph_nodes", small.node_count());
    criterion::report_context("build_graph_edges", small.edge_count());
    let mut build = c.benchmark_group("sharded_build");
    build.sample_size(10);
    let shard_cfg = rpq_index::ShardedConfig {
        shards: SHARDS,
        shard_budget_bytes: 64 << 20,
        wildcard_layer: false,
        build_workers: 0,
    };
    build.bench_with_input(BenchmarkId::new("labels", 5_000), &small, |b, g| {
        b.iter(|| black_box(ShardedLabels::build_with(g, &shard_cfg, None).unwrap()))
    });
    let hop_cfg = rpq_index::HopConfig {
        wildcard_layer: false,
        ..rpq_index::HopConfig::default()
    };
    build.bench_with_input(BenchmarkId::new("single_index", 5_000), &small, |b, g| {
        b.iter(|| black_box(rpq_index::HopLabels::build_with(g, &hop_cfg, None).unwrap()))
    });
    build.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
