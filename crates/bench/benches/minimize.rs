//! Criterion micro-benchmark behind Fig. 10(a): the cost of `minPQs`
//! itself and the evaluation speedup it buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::querygen::{generate_pq, QueryParams};
use rpq_core::{minimize, JoinMatch, MatrixReach};
use rpq_graph::gen::youtube_like;
use rpq_graph::DistanceMatrix;
use std::hint::black_box;

fn bench_minimize(c: &mut Criterion) {
    let g = youtube_like(1200, 42);
    let m = DistanceMatrix::build(&g);
    let mut group = c.benchmark_group("minimize_fig10a");
    group.sample_size(10);
    for &(nv, ne) in &[(4usize, 6usize), (8, 12), (12, 18)] {
        let p = QueryParams {
            nodes: nv,
            edges: ne,
            preds: 3,
            bound: 5,
            colors: 4,
            redundant: true,
        };
        let pq = generate_pq(&g, &p, 5);
        let slim = minimize(&pq);
        group.bench_with_input(BenchmarkId::new("minPQs", nv), &pq, |b, pq| {
            b.iter(|| black_box(minimize(pq)))
        });
        group.bench_with_input(BenchmarkId::new("eval_normal", nv), &pq, |b, pq| {
            b.iter(|| black_box(JoinMatch::eval(pq, &g, &mut MatrixReach::new(&m))))
        });
        group.bench_with_input(BenchmarkId::new("eval_minimized", nv), &slim, |b, slim| {
            b.iter(|| black_box(JoinMatch::eval(slim, &g, &mut MatrixReach::new(&m))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minimize);
criterion_main!(benches);
