//! Overhead guard for the tracing layer: instrumenting the engine must
//! cost nothing observable while the tracer is disabled.
//!
//! Two arms drive the identical 8-query batch on a 20 000-node graph:
//! one with the process tracer disabled (the production default for
//! library use — every instrumentation site reduces to one relaxed
//! atomic load), one with it enabled (ring recording on). The guard
//! interleaves the arms rep by rep, takes medians, and fails the bench
//! if the *enabled* median exceeds the disabled median by more than 2%
//! (plus a small absolute slack for timer noise). Because the disabled
//! path is a strict subset of the enabled path's work, bounding the
//! enabled overhead at 2% bounds the disabled-vs-uninstrumented
//! overhead even tighter — which is the documented guarantee.
//!
//! The medians land in `BENCH_trace.json` (via `BENCH_JSON_DIR`) so the
//! trajectory across commits is machine-readable.

use criterion::{BenchmarkId, Criterion};
use rpq_bench::querygen::generate_rq;
use rpq_engine::{EngineConfig, Query, QueryEngine};
use rpq_graph::gen::youtube_like;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const GRAPH_NODES: usize = 20_000;
const BATCH: usize = 8;

fn workload(g: &Arc<rpq_graph::Graph>) -> Vec<Query> {
    (0..BATCH)
        .map(|i| Query::Rq(generate_rq(g, 2, 3, 2, 7 + i as u64)))
        .collect()
}

/// Hop-label engine, index built eagerly: the arms must compare tracing
/// overhead on the steady-state batch path, not index-build timing (a
/// 20 000-node graph rules the distance matrix out, and building labels
/// lazily inside the timed region would poison the first rep).
fn engine(g: &Arc<rpq_graph::Graph>) -> QueryEngine {
    let engine = QueryEngine::with_config(
        Arc::clone(g),
        EngineConfig::builder()
            .matrix_node_limit(0)
            .build()
            .unwrap(),
    );
    engine.force_hop_labels().expect("unbudgeted build fits");
    engine
}

fn bench_trace(c: &mut Criterion) {
    let g = Arc::new(youtube_like(GRAPH_NODES, 42));
    criterion::report_context("graph_nodes", g.node_count());
    criterion::report_context("graph_edges", g.edge_count());
    criterion::report_context("batch", BATCH);
    let engine = engine(&g);
    let queries = workload(&g);
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    for enabled in [false, true] {
        let label = if enabled { "enabled" } else { "disabled" };
        group.bench_with_input(BenchmarkId::new("batch", label), &queries, |b, queries| {
            rpq_trace::tracer().set_enabled(enabled);
            b.iter(|| black_box(engine.run_batch(queries)));
        });
    }
    rpq_trace::tracer().set_enabled(false);
    group.finish();
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Interleaved A/B guard. Reps alternate disabled/enabled so drift
/// (thermal, scheduler) hits both arms equally; medians shrug off the
/// stragglers.
fn overhead_guard(smoke: bool) {
    let g = Arc::new(youtube_like(GRAPH_NODES, 42));
    let engine = engine(&g);
    let queries = workload(&g);
    let reps = if smoke { 5 } else { 21 };
    let tracer = rpq_trace::tracer();

    // warm caches and the engine's lazy state before timing anything
    black_box(engine.run_batch(&queries));

    let mut disabled = Vec::with_capacity(reps);
    let mut enabled = Vec::with_capacity(reps);
    for rep in 0..reps {
        // alternate which arm goes first so systematic drift (thermal,
        // page cache, scheduler) cannot bias one arm
        let mut arms = [(false, &mut disabled), (true, &mut enabled)];
        if rep % 2 == 1 {
            arms.swap(0, 1);
        }
        for (on, samples) in arms {
            tracer.set_enabled(on);
            let t = Instant::now();
            black_box(engine.run_batch(&queries));
            samples.push(t.elapsed());
        }
    }
    tracer.set_enabled(false);

    let med_off = median(disabled);
    let med_on = median(enabled);
    criterion::report_context("guard_disabled_ns", med_off.as_nanos());
    criterion::report_context("guard_enabled_ns", med_on.as_nanos());
    criterion::report_context("guard_reps", reps);
    let ratio = med_on.as_secs_f64() / med_off.as_secs_f64().max(1e-12);
    println!(
        "trace overhead guard: disabled {med_off:?} vs enabled {med_on:?} \
         ({:+.2}% with tracing on, {reps} interleaved reps)",
        (ratio - 1.0) * 100.0
    );
    // 2% relative bound + 500µs absolute slack so timer jitter on a
    // sub-millisecond batch can't produce phantom regressions
    let bound = Duration::from_secs_f64(med_off.as_secs_f64() * 1.02) + Duration::from_micros(500);
    assert!(
        med_on <= bound,
        "tracing overhead regression: enabled median {med_on:?} exceeds \
         disabled median {med_off:?} + 2% ({bound:?})"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let mut c = Criterion::default().configure_from_args();
    bench_trace(&mut c);
    overhead_guard(smoke);
    c.final_summary();
}
