//! Criterion micro-benchmark behind Figs. 9(c) and 12(f): the PQ
//! algorithms against the `Match` (bounded simulation) and `SubIso`
//! (Ullmann) baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::querygen::{generate_pq, QueryParams};
use rpq_core::baseline::{bounded_sim_match, subiso_match};
use rpq_core::{JoinMatch, MatrixReach, SplitMatch};
use rpq_graph::gen::terrorism_like;
use rpq_graph::DistanceMatrix;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let g = terrorism_like(42);
    let m = DistanceMatrix::build(&g);
    let mut group = c.benchmark_group("baselines_fig9c");
    group.sample_size(10);
    for size in [3usize, 5, 7] {
        let p = QueryParams {
            nodes: size,
            edges: size,
            preds: 2,
            bound: 2,
            colors: 1,
            redundant: false,
        };
        let pq = generate_pq(&g, &p, 13);
        group.bench_with_input(BenchmarkId::new("JoinMatchM", size), &pq, |b, pq| {
            b.iter(|| black_box(JoinMatch::eval(pq, &g, &mut MatrixReach::new(&m))))
        });
        group.bench_with_input(BenchmarkId::new("SplitMatchM", size), &pq, |b, pq| {
            b.iter(|| black_box(SplitMatch::eval(pq, &g, &mut MatrixReach::new(&m))))
        });
        group.bench_with_input(BenchmarkId::new("MatchM", size), &pq, |b, pq| {
            b.iter(|| black_box(bounded_sim_match(pq, &g, &mut MatrixReach::new(&m))))
        });
        group.bench_with_input(BenchmarkId::new("SubIso", size), &pq, |b, pq| {
            b.iter(|| black_box(subiso_match(pq, &g, 10_000_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
