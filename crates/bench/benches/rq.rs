//! Criterion micro-benchmark behind Fig. 10(b): the three RQ evaluation
//! strategies (DM / biBFS / BFS) as the number of colors in the edge
//! constraint grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::querygen::generate_rq;
use rpq_graph::gen::youtube_like;
use rpq_graph::DistanceMatrix;
use std::hint::black_box;

fn bench_rq(c: &mut Criterion) {
    let g = youtube_like(1200, 42);
    let m = DistanceMatrix::build(&g);
    let mut group = c.benchmark_group("rq_fig10b");
    group.sample_size(10);
    for k in 1..=4usize {
        let rq = generate_rq(&g, 3, 5, k, 7);
        group.bench_with_input(BenchmarkId::new("DM", k), &rq, |b, rq| {
            b.iter(|| black_box(rq.eval_with_matrix(&g, &m)))
        });
        group.bench_with_input(BenchmarkId::new("biBFS", k), &rq, |b, rq| {
            b.iter(|| black_box(rq.eval_bibfs(&g)))
        });
        group.bench_with_input(BenchmarkId::new("BFS", k), &rq, |b, rq| {
            b.iter(|| black_box(rq.eval_bfs(&g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rq);
criterion_main!(benches);
