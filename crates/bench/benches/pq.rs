//! Benchmark: PQ evaluation across the unified reachability-backend layer.
//!
//! Three measurements:
//!
//! * **small** (1.5k nodes, under the matrix limit): a mixed PQ batch on
//!   the matrix, hop-label and cached backends — the matrix regimes win,
//!   the labels sit close behind, the cached product search trails.
//! * **crossover sweep** (one-shot table): `JoinMatch` vs `SplitMatch` on
//!   ring (cyclic) and chain (acyclic) patterns of growing normalized
//!   size, over both index backends — the measurement behind the
//!   planner's `SPLIT_CROSSOVER` shape rule, printed next to the constant
//!   so drift is visible in bench output.
//! * **large** (50k nodes, 4 colors — far beyond any affordable matrix):
//!   the acceptance comparison. The same PQ batch runs through the
//!   planner's hop plans (`JoinMatch/hop`, `SplitMatch/hop`) and through a
//!   *forced* `JoinMatch/cache` engine (label budget 0); answers are
//!   asserted identical and the speedup line must carry the ≥ 10x bar.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_core::pq::Pq;
use rpq_core::predicate::Predicate;
use rpq_core::reach::ProbeReach;
use rpq_core::{join_match::JoinMatch, split_match::SplitMatch};
use rpq_engine::planner::SPLIT_CROSSOVER;
use rpq_engine::{EngineConfig, Plan, Query, QueryEngine};
use rpq_graph::gen::youtube_like;
use rpq_graph::{DistanceMatrix, Graph};
use rpq_regex::FRegex;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// A mixed 8-query PQ workload with selective endpoints: acyclic chains,
/// 2-cycles and a larger ring, over concrete colors (every color layer of
/// the hop index is exercised; no wildcard dependence, so a budget that
/// drops the wildcard layer still plans hop).
fn workload(g: &Graph, batch: usize) -> Vec<Query> {
    let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();
    let pred = |s: &str| Predicate::parse(s, g.schema()).unwrap();
    let n_uploaders = (g.node_count() / 8) as i64;
    (0..batch)
        .map(|i| {
            let mut pq = Pq::new();
            // selective endpoints: a band of uploaders and long videos
            let lo = (i as i64 * 37) % n_uploaders.max(1);
            let a = pq.add_node("a", pred(&format!("uid <= {}", 40 + lo % 400)));
            let b = pq.add_node("b", pred(&format!("len >= {}", 180 + (i as i64 % 40))));
            match i % 4 {
                0 => {
                    // acyclic chain: a → b → c
                    let c = pq.add_node("c", pred("view >= 100000"));
                    pq.add_edge(a, b, re("fc^2 fr"));
                    pq.add_edge(b, c, re("sc^3"));
                }
                1 => {
                    // 2-cycle (small cyclic: stays JoinMatch)
                    pq.add_edge(a, b, re("fr sc"));
                    pq.add_edge(b, a, re("sr^2"));
                }
                2 => {
                    // diamond, acyclic
                    let c = pq.add_node("c", pred("com >= 1000"));
                    let d = pq.add_node("d", pred("age <= 500"));
                    pq.add_edge(a, b, re("fc^2"));
                    pq.add_edge(a, c, re("fr^2 sc"));
                    pq.add_edge(b, d, re("sc sr"));
                    pq.add_edge(c, d, re("sr^2"));
                }
                _ => {
                    // large ring past the split crossover
                    let c = pq.add_node("c", pred("view >= 50000"));
                    let d = pq.add_node("d", pred("age <= 1000"));
                    pq.add_edge(a, b, re("fc fr"));
                    pq.add_edge(b, c, re("sc^2 sr"));
                    pq.add_edge(c, d, re("fr^2"));
                    pq.add_edge(d, a, re("sr sc^2"));
                }
            }
            Query::Pq(pq)
        })
        .collect()
}

fn engine(g: &Arc<Graph>, matrix_limit: usize, hop_budget: usize) -> QueryEngine {
    QueryEngine::with_config(
        Arc::clone(g),
        EngineConfig::builder()
            .matrix_node_limit(matrix_limit)
            .hop_label_budget(hop_budget)
            .build()
            .unwrap(),
    )
}

fn bench_small_three_way(c: &mut Criterion) {
    let g = Arc::new(youtube_like(1_500, 11));
    let queries = workload(&g, 8);

    let dm = engine(&g, usize::MAX, 0);
    dm.force_matrix();
    let hop = engine(&g, 0, 256 << 20);
    hop.force_hop_labels().expect("labels fit");
    let cached = engine(&g, 0, 0);
    for (e, want) in [
        (&dm, &[Plan::PqJoinMatrix, Plan::PqSplitMatrix][..]),
        (&hop, &[Plan::PqJoinHop, Plan::PqSplitHop][..]),
        (&cached, &[Plan::PqJoinCached, Plan::PqSplitCached][..]),
    ] {
        for q in &queries {
            assert!(want.contains(&e.plan_query(q)), "regime mix-up");
        }
    }

    let mut group = c.benchmark_group("pq_backends_small_1500n");
    group.sample_size(10);
    for (name, e) in [("dm", &dm), ("hop", &hop), ("cached", &cached)] {
        group.bench_with_input(BenchmarkId::new(name, 8), &queries, |b, qs| {
            b.iter(|| black_box(e.run_batch(qs)))
        });
    }
    group.finish();
}

/// One-shot join-vs-split sweep: the measurement behind the planner's
/// `SPLIT_CROSSOVER`. Ring patterns (one SCC spanning the whole pattern)
/// and chain patterns (acyclic) of growing edge count, timed on both
/// index backends.
fn crossover_sweep(_c: &mut Criterion) {
    let g = Arc::new(youtube_like(1_500, 7));
    let m = DistanceMatrix::build(&g);
    let labels = rpq_index::HopLabels::build(&g);
    let pred = |s: &str| Predicate::parse(s, g.schema()).unwrap();
    let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();

    let pattern = |edges: usize, ring: bool| -> Pq {
        let mut pq = Pq::new();
        let colors = ["fc", "fr", "sc", "sr"];
        let nodes: Vec<usize> = (0..edges)
            .map(|i| {
                pq.add_node(
                    &format!("n{i}"),
                    // loose alternating predicates keep match sets large
                    // enough that refinement cost dominates bookkeeping
                    pred(if i % 2 == 0 {
                        "len >= 30"
                    } else {
                        "age <= 1500"
                    }),
                )
            })
            .collect();
        for i in 0..edges {
            let from = nodes[i];
            let to = if i + 1 == edges {
                if ring {
                    nodes[0]
                } else {
                    pq.add_node("tail", pred("view >= 1000"))
                }
            } else {
                nodes[i + 1]
            };
            pq.add_edge(from, to, re(colors[i % colors.len()]));
        }
        pq
    };

    fn timed(mut f: impl FnMut() -> usize) -> (f64, usize) {
        let mut size = 0;
        let t0 = Instant::now();
        for _ in 0..3 {
            size = f();
        }
        (t0.elapsed().as_secs_f64() / 3.0, size)
    }

    println!("crossover sweep (1.5k nodes): join vs split, ring & chain patterns");
    println!("planner constant: SPLIT_CROSSOVER = {SPLIT_CROSSOVER} (normalized |Vp|+|Ep|)");
    println!("size | shape | backend |   join (s) |  split (s) | join/split");
    for edges in [2usize, 4, 8, 12, 16, 24] {
        for ring in [true, false] {
            let pq = pattern(edges, ring);
            let norm_size = pq.size(); // single-atom edges: already normal
            type Timing = (f64, usize);
            let runs: [(&str, Timing, Timing); 2] = [
                (
                    "dm",
                    timed(|| JoinMatch::eval(&pq, &g, &mut ProbeReach::new(&m)).size()),
                    timed(|| SplitMatch::eval(&pq, &g, &mut ProbeReach::new(&m)).size()),
                ),
                (
                    "hop",
                    timed(|| JoinMatch::eval(&pq, &g, &mut ProbeReach::new(&labels)).size()),
                    timed(|| SplitMatch::eval(&pq, &g, &mut ProbeReach::new(&labels)).size()),
                ),
            ];
            for (backend, (tj, sj), (ts, ss)) in runs {
                assert_eq!(sj, ss, "join and split disagree at size {norm_size}");
                println!(
                    "{norm_size:4} | {} | {backend:>7} | {tj:10.4} | {ts:10.4} | {:10.2}",
                    if ring { "ring " } else { "chain" },
                    tj / ts.max(1e-9)
                );
            }
        }
    }
}

fn bench_large_hop_vs_cached(c: &mut Criterion) {
    // 50k nodes, 4 colors: the dense matrix would need ~23 GiB, so the
    // matrix regime is unreachable and the planner's PQ choices are the
    // hop-label backends vs the cached product search.
    //
    // In CI smoke (`cargo bench -- --test`, one iteration per bench) a
    // cached PQ batch at this size runs minutes; 2 queries still prove
    // hop == cached at 50k and keep the smoke step cheap, while real
    // bench runs measure the full 8.
    let smoke = std::env::args().any(|a| a == "--test");
    let g = Arc::new(youtube_like(50_000, 42));
    let queries = workload(&g, if smoke { 2 } else { 8 });

    let hop = engine(&g, 2048, 256 << 20);
    let t0 = Instant::now();
    let labels = hop.force_hop_labels().expect("labels fit the budget");
    println!("hop-label build: {:?} — {}", t0.elapsed(), labels.stats());
    let cached = engine(&g, 2048, 0);
    for q in &queries {
        let p = hop.plan_query(q);
        assert!(
            matches!(p, Plan::PqJoinHop | Plan::PqSplitHop),
            "hop engine must exercise the hop PQ plans, got {p:?}"
        );
        let p = cached.plan_query(q);
        assert!(
            matches!(p, Plan::PqJoinCached | Plan::PqSplitCached),
            "fallback engine must exercise the cached plans, got {p:?}"
        );
    }

    // acceptance line: identical answers, ≥10x wall-clock gap
    let t_hop = Instant::now();
    let out_hop = hop.run_batch(&queries);
    let t_hop = t_hop.elapsed();
    let t_cached = Instant::now();
    let out_cached = cached.run_batch(&queries);
    let t_cached = t_cached.elapsed();
    for (a, b) in out_hop.items().iter().zip(out_cached.items()) {
        assert_eq!(a.output, b.output, "hop answers must equal cached answers");
    }
    println!(
        "{}-query PQ batch @50k nodes: hop {t_hop:?} vs cached {t_cached:?} — {:.1}x speedup",
        queries.len(),
        t_cached.as_secs_f64() / t_hop.as_secs_f64().max(1e-9)
    );

    // criterion samples only the hop side: one cached batch at this scale
    // runs ~15 minutes wall (a single 4-edge ring costs ~5.5 minutes of
    // product search), so the cached cost is carried entirely by the
    // single one-shot comparison above
    let mut group = c.benchmark_group("pq_backends_large_50000n");
    group.sample_size(2);
    group.bench_with_input(BenchmarkId::new("hop", queries.len()), &queries, |b, qs| {
        b.iter(|| black_box(hop.run_batch(qs)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_small_three_way,
    crossover_sweep,
    bench_large_hop_vs_cached
);
criterion_main!(benches);
