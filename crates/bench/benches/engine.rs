//! Benchmark: batch throughput of the parallel `QueryEngine` against
//! sequential single-query evaluation of the same workload — the scaling
//! argument for the engine layer (shared indices + reach-set memoization +
//! worker threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::querygen::generate_rq;
use rpq_engine::{EngineConfig, Query, QueryEngine};
use rpq_graph::gen::youtube_like;
use std::hint::black_box;
use std::sync::Arc;

/// A mixed batch: distinct RQs plus repeated hot keys (real traffic
/// repeats popular queries, which is what the memo exploits).
fn workload(g: &Arc<rpq_graph::Graph>, batch: usize) -> Vec<Query> {
    (0..batch)
        .map(|i| {
            // every 4th query repeats one of 8 hot keys
            let seed = if i % 4 == 0 {
                (i % 8) as u64
            } else {
                1000 + i as u64
            };
            Query::Rq(generate_rq(g, 2, 4, 2, seed))
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let g = Arc::new(youtube_like(4000, 42));
    // machine-readable report context (BENCH_engine.json via BENCH_JSON_DIR)
    criterion::report_context("graph_nodes", g.node_count());
    criterion::report_context("graph_edges", g.edge_count());
    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    for &batch in &[16usize, 64] {
        let queries = workload(&g, batch);

        // sequential reference: one query at a time, no shared state
        group.bench_with_input(
            BenchmarkId::new("sequential", batch),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for q in queries {
                        if let Query::Rq(rq) = q {
                            black_box(rq.eval_bibfs(&g));
                        }
                    }
                })
            },
        );

        for &workers in &[1usize, 4] {
            let engine = QueryEngine::with_config(
                Arc::clone(&g),
                EngineConfig::builder()
                    .workers(workers)
                    // youtube_like(4000) is over the default limit anyway;
                    // pin it — and disable the hop-label index — so the
                    // comparison stays index-free (benches/index.rs covers
                    // the indexed regimes)
                    .matrix_node_limit(0)
                    .hop_label_budget(0)
                    .build()
                    .unwrap(),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("engine_w{workers}"), batch),
                &queries,
                |b, queries| b.iter(|| black_box(engine.run_batch(queries))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
