//! Criterion micro-benchmark for the §3 static analyses (no paper figure —
//! evidence for the claimed quadratic/cubic bounds): RQ containment, PQ
//! containment via revised similarity, and `minPQs` as query size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_bench::querygen::{generate_pq, generate_rq, QueryParams};
use rpq_core::{minimize, pq_contained_in, rq_contained_in};
use rpq_graph::gen::synthetic;
use std::hint::black_box;

fn bench_contain(c: &mut Criterion) {
    let g = synthetic(300, 1000, 3, 4, 42);
    let mut group = c.benchmark_group("static_analyses");
    group.sample_size(20);

    let rq_a = generate_rq(&g, 3, 5, 3, 1);
    let rq_b = generate_rq(&g, 3, 5, 3, 2);
    group.bench_function("rq_containment", |b| {
        b.iter(|| black_box(rq_contained_in(&rq_a, &rq_b)))
    });

    for nv in [4usize, 8, 16, 32] {
        let mut p = QueryParams::defaults();
        p.nodes = nv;
        p.edges = nv + nv / 2;
        p.redundant = true;
        let qa = generate_pq(&g, &p, 3);
        let qb = generate_pq(&g, &p, 4);
        group.bench_with_input(
            BenchmarkId::new("pq_containment", nv),
            &(qa.clone(), qb),
            |b, (qa, qb)| b.iter(|| black_box(pq_contained_in(qa, qb))),
        );
        group.bench_with_input(BenchmarkId::new("minPQs", nv), &qa, |b, qa| {
            b.iter(|| black_box(minimize(qa)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contain);
criterion_main!(benches);
