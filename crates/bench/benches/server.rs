//! Benchmark: the serving stack end-to-end — an in-process `rpq-server`
//! on a loopback port, driven by the closed-loop load generator, plus a
//! single-connection round-trip timing. With `BENCH_JSON_DIR` set, the
//! medians and the load report land in `BENCH_server.json`, which CI
//! uploads alongside the other bench artifacts.

use criterion::{criterion_group, criterion_main, Criterion};
use rpq_bench::loadgen::{run_load, LoadConfig};
use rpq_bench::querygen::generate_rq;
use rpq_engine::{Query, UpdatableEngine};
use rpq_graph::gen::youtube_like;
use rpq_server::{Client, Server, ServerConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const NODES: usize = 2_000;
const SEED: u64 = 42;

fn bench_server(c: &mut Criterion) {
    let engine = Arc::new(UpdatableEngine::new(youtube_like(NODES, SEED)));
    let graph = Arc::clone(engine.snapshot().graph());
    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig {
            queue_capacity: 256,
            coalesce_window: Duration::from_millis(1),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr().to_string();

    criterion::report_context("graph_nodes", NODES);

    // one warm load burst so the JSON report carries throughput numbers,
    // not just a single-connection round-trip
    let cfg = LoadConfig {
        connections: 16,
        requests_per_connection: 4,
        write_pct: 20,
        batch: 2,
        updates_per_write: 2,
        seed: SEED,
    };
    let report = run_load(&addr, &graph, &cfg);
    assert_eq!(report.errors, 0, "load burst saw errors");
    criterion::report_context("load_qps", format!("{:.0}", report.qps));
    criterion::report_context("load_p50_us", report.p50_us);
    criterion::report_context("load_p99_us", report.p99_us);

    let mut client = Client::connect(&addr).expect("connect");
    let queries: Vec<Query> = (0..4)
        .map(|i| Query::Rq(generate_rq(&graph, 2, 3, 2, 7_000 + i)))
        .collect();
    c.bench_function("round_trip_batch4", |b| {
        b.iter(|| {
            let resp = client.query(black_box(&queries), &graph).expect("query");
            assert_eq!(resp.status, 200);
            black_box(resp.body.len())
        })
    });

    server.shutdown();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
