//! Timing and reporting helpers for the experiment binaries.

use std::time::{Duration, Instant};

/// Time one closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Mean of durations in milliseconds.
pub fn mean_ms(samples: &[Duration]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(Duration::as_secs_f64).sum::<f64>() * 1e3 / samples.len() as f64
}

/// A printable experiment table: one labelled row per x-value, one column
/// per measured series. Prints in the layout the paper's figures chart.
pub struct Table {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    unit: &'static str,
}

impl Table {
    /// New table with the given title, x-axis label and series names.
    pub fn new(title: &str, x_label: &str, columns: &[&str], unit: &'static str) -> Self {
        Table {
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            unit,
        }
    }

    /// Append one row.
    pub fn row(&mut self, x: impl ToString, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len());
        self.rows.push((x.to_string(), values));
    }

    /// Render to stdout.
    pub fn print(&self) {
        println!("\n=== {} ===", self.title);
        let width = 14usize;
        print!("{:<12}", self.x_label);
        for c in &self.columns {
            print!("{:>width$}", format!("{c} ({})", self.unit));
        }
        println!();
        for (x, vals) in &self.rows {
            print!("{x:<12}");
            for v in vals {
                print!("{v:>width$.3}");
            }
            println!();
        }
    }

    /// The collected rows (for tests).
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_and_means() {
        let (v, d) = time(|| (0..1000u64).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(d.as_nanos() > 0);
        let m = mean_ms(&[Duration::from_millis(2), Duration::from_millis(4)]);
        assert!((m - 3.0).abs() < 1e-9);
        assert_eq!(mean_ms(&[]), 0.0);
    }

    #[test]
    fn table_rows() {
        let mut t = Table::new("demo", "x", &["a", "b"], "ms");
        t.row("(3,3)", vec![1.0, 2.0]);
        t.row("(4,4)", vec![3.0, 4.0]);
        assert_eq!(t.rows().len(), 2);
        t.print(); // smoke: must not panic
    }

    #[test]
    #[should_panic]
    fn row_arity_checked() {
        let mut t = Table::new("demo", "x", &["a", "b"], "ms");
        t.row("x", vec![1.0]);
    }
}
