//! The paper's query generator (§6, "Query generator").
//!
//! "The generator has five parameters: |Vp| denotes the number of pattern
//! nodes, |Ep| is the number of pattern edges, |pred| denotes the number of
//! predicates each pattern node carries, and bounds b and c are used such
//! that each edge is constrained by a regular expression e1^b … ek^b, with
//! 1 ≤ k ≤ c."
//!
//! To produce *meaningful* queries (the paper's word), node predicates are
//! sampled from the attribute tuples of actual data nodes, so every query
//! node has at least one candidate match. For the minimization experiment
//! (Fig. 10(a)) the generator can draw node predicates and edge constraints
//! from small per-query pools, which makes simulation-equivalent nodes —
//! and hence redundancy — likely, as in the paper's observation that
//! "larger queries have a higher probability to contain redundant nodes
//! and edges".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_core::pq::Pq;
use rpq_core::predicate::{CompOp, PredAtom, Predicate};
use rpq_core::rq::Rq;
use rpq_graph::{AttrValue, DistanceMatrix, Graph};
use rpq_regex::{Atom, FRegex, Quant};

/// The five paper parameters plus generation controls.
#[derive(Debug, Clone, Copy)]
pub struct QueryParams {
    /// Number of pattern nodes `|Vp|`.
    pub nodes: usize,
    /// Number of pattern edges `|Ep|`.
    pub edges: usize,
    /// Predicates per pattern node `|pred|`.
    pub preds: usize,
    /// Per-atom hop bound `b` (each atom is `e^b`; `b = 1` degenerates to
    /// a plain color).
    pub bound: u32,
    /// Maximum atoms per edge constraint `c` (each edge draws `k ∈ 1..=c`).
    pub colors: usize,
    /// Draw predicates/regexes from small pools to induce redundancy
    /// (used by the Fig. 10(a) minimization experiment).
    pub redundant: bool,
}

impl QueryParams {
    /// The defaults shared by Figs. 11-12: `(|Vp|, |Ep|, |pred|, b, c) =
    /// (6, 8, 3, 5, 4)`.
    pub fn defaults() -> Self {
        QueryParams {
            nodes: 6,
            edges: 8,
            preds: 3,
            bound: 5,
            colors: 4,
            redundant: false,
        }
    }
}

/// Sample one predicate with `preds` conjuncts from the attribute tuple of
/// a random data node (so the predicate is satisfiable on `g`).
pub fn sample_predicate(g: &Graph, preds: usize, rng: &mut StdRng) -> Predicate {
    let v = rpq_graph::NodeId(rng.gen_range(0..g.node_count() as u32));
    sample_predicate_at(g, v, preds, rng)
}

/// Sample one predicate with `preds` conjuncts satisfied by the specific
/// node `v`.
pub fn sample_predicate_at(
    g: &Graph,
    v: rpq_graph::NodeId,
    preds: usize,
    rng: &mut StdRng,
) -> Predicate {
    let pairs: Vec<_> = g.attrs(v).iter().collect();
    if pairs.is_empty() {
        return Predicate::always_true();
    }
    let mut atoms = Vec::with_capacity(preds);
    for i in 0..preds {
        // avoid near-unique conjuncts (e.g. equality on a key attribute
        // like the GTD group name): they would collapse candidate sets to
        // singletons, which no realistic query workload does
        let mut chosen: Option<PredAtom> = None;
        for retry in 0..4 {
            let (attr, value) = pairs[(rng.gen_range(0..pairs.len()) + i) % pairs.len()];
            let (op, value) = match value {
                AttrValue::Str(_) => (CompOp::Eq, value.clone()),
                AttrValue::Int(n) => match rng.gen_range(0..3) {
                    0 => (CompOp::Le, AttrValue::Int(*n)),
                    1 => (CompOp::Ge, AttrValue::Int(*n)),
                    _ => (CompOp::Ne, AttrValue::Int(n.wrapping_add(1))),
                },
            };
            let atom = PredAtom { attr, op, value };
            let selectivity = g
                .nodes()
                .filter(|&x| {
                    g.attrs(x).get(atom.attr).is_some_and(|val| {
                        val.same_domain(&atom.value) && atom.op.eval(val, &atom.value)
                    })
                })
                .take(5)
                .count();
            if selectivity >= 5 || retry == 3 {
                chosen = Some(atom);
                break;
            }
        }
        atoms.push(chosen.expect("retry loop always yields an atom"));
    }
    Predicate::new(atoms)
}

/// Sample one edge constraint `e1^b … ek^b` with `k ∈ 1..=c` distinct
/// colors from `g`'s alphabet.
pub fn sample_regex(g: &Graph, bound: u32, c: usize, rng: &mut StdRng) -> FRegex {
    let m = g.alphabet().len();
    let k = rng.gen_range(1..=c.max(1)).min(m.max(1));
    let mut colors: Vec<_> = g.alphabet().colors().collect();
    // partial Fisher-Yates for k distinct colors
    for i in 0..k.min(colors.len()) {
        let j = rng.gen_range(i..colors.len());
        colors.swap(i, j);
    }
    let quant = if bound <= 1 {
        Quant::One
    } else {
        Quant::AtMost(bound)
    };
    FRegex::new(
        colors
            .into_iter()
            .take(k)
            .map(|color| Atom::new(color, quant))
            .collect(),
    )
}

/// Generate one PQ over `g` with the given parameters (deterministic in
/// `seed`). The pattern's first `|Vp| - 1` edges form a random spanning
/// tree when `|Ep|` allows, keeping patterns connected as the paper
/// assumes; extra edges (possibly creating cycles) are added uniformly.
pub fn generate_pq(g: &Graph, p: &QueryParams, seed: u64) -> Pq {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pq = Pq::new();

    // pools for redundancy mode
    let pred_pool: Vec<Predicate> = if p.redundant {
        (0..(p.nodes / 2).max(2))
            .map(|_| sample_predicate(g, p.preds, &mut rng))
            .collect()
    } else {
        Vec::new()
    };
    let regex_pool: Vec<FRegex> = if p.redundant {
        (0..3)
            .map(|_| sample_regex(g, p.bound, p.colors, &mut rng))
            .collect()
    } else {
        Vec::new()
    };

    for i in 0..p.nodes {
        let pred = if p.redundant {
            pred_pool[rng.gen_range(0..pred_pool.len())].clone()
        } else {
            sample_predicate(g, p.preds, &mut rng)
        };
        pq.add_node(&format!("u{i}"), pred);
    }
    let mut remaining = p.edges;
    let next_regex = |rng: &mut StdRng| {
        if p.redundant {
            regex_pool[rng.gen_range(0..regex_pool.len())].clone()
        } else {
            sample_regex(g, p.bound, p.colors, rng)
        }
    };
    // spanning-tree backbone
    for i in 1..p.nodes {
        if remaining == 0 {
            break;
        }
        let parent = rng.gen_range(0..i);
        let (u, v) = if rng.gen_bool(0.5) {
            (parent, i)
        } else {
            (i, parent)
        };
        let re = next_regex(&mut rng);
        pq.add_edge(u, v, re);
        remaining -= 1;
    }
    // extra edges
    while remaining > 0 {
        let u = rng.gen_range(0..p.nodes);
        let v = rng.gen_range(0..p.nodes);
        let re = next_regex(&mut rng);
        pq.add_edge(u, v, re);
        remaining -= 1;
    }
    pq
}

/// Generate one PQ that is guaranteed to have a **nonempty answer** on
/// `g` — the paper's "meaningful" queries.
///
/// Pattern nodes are *anchored* at data nodes discovered by color-respecting
/// random walks: the backbone edge from node `j` to node `i` follows an
/// actual path `x_j ⇝ x_i` whose color segments become the constraint
/// `c1^b … ck^b` (k ≤ `colors` segments, each ≤ min(b,2) data hops), and
/// extra edges are added between anchor pairs the distance matrix confirms
/// reachable. The anchor assignment is then a post-fixpoint of the
/// revised-simulation refinement, so every query node keeps at least its
/// anchor as a match.
pub fn generate_pq_anchored(g: &Graph, m: &DistanceMatrix, p: &QueryParams, seed: u64) -> Pq {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count() as u32;
    let rand_node = |rng: &mut StdRng| rpq_graph::NodeId(rng.gen_range(0..n));

    // one color-respecting walk segment of 1..=min(b,2) hops, forward
    // (follow out-edges) or backward (follow in-edges)
    let walk_segment = |start: rpq_graph::NodeId,
                        forward: bool,
                        rng: &mut StdRng|
     -> Option<(rpq_graph::NodeId, rpq_graph::Color)> {
        let adj = |v: rpq_graph::NodeId| {
            if forward {
                g.out_edges(v)
            } else {
                g.in_edges(v)
            }
        };
        let outs = adj(start);
        if outs.is_empty() {
            return None;
        }
        let first = outs[rng.gen_range(0..outs.len())];
        let color = first.color;
        let mut cur = first.node;
        let max_hops = p.bound.clamp(1, 2);
        for _ in 1..max_hops {
            if !rng.gen_bool(0.5) {
                break;
            }
            let nexts: Vec<_> = adj(cur).iter().filter(|e| e.color == color).collect();
            if nexts.is_empty() {
                break;
            }
            cur = nexts[rng.gen_range(0..nexts.len())].node;
        }
        Some((cur, color))
    };
    let quant = if p.bound <= 1 {
        Quant::One
    } else {
        Quant::AtMost(p.bound)
    };

    // anchors + backbone: extend from an existing anchor by a forward walk
    // (edge j → new) or a backward walk (edge new → j). Only the very
    // first anchor may be re-rooted, and only while no edge exists yet.
    let mut anchors: Vec<rpq_graph::NodeId> = vec![rand_node(&mut rng)];
    let mut backbone: Vec<(usize, usize, FRegex)> = Vec::new();
    let mut stuck = 0;
    while anchors.len() < p.nodes {
        let j = rng.gen_range(0..anchors.len());
        let forward = rng.gen_bool(0.5);
        let k = rng.gen_range(1..=p.colors.max(1));
        let mut cur = anchors[j];
        let mut atoms = Vec::new();
        for _ in 0..k {
            match walk_segment(cur, forward, &mut rng) {
                Some((next, color)) => {
                    cur = next;
                    atoms.push(Atom::new(color, quant));
                }
                None => break,
            }
        }
        if atoms.is_empty() {
            stuck += 1;
            if anchors.len() == 1 && backbone.is_empty() && stuck < 100 {
                anchors[0] = rand_node(&mut rng);
            }
            if stuck > 400 {
                // pathological graph (no edges at all): give up extending;
                // remaining nodes become isolated pattern nodes
                while anchors.len() < p.nodes {
                    anchors.push(rand_node(&mut rng));
                }
                break;
            }
            continue;
        }
        if !forward {
            // the walk ran over in-edges from x_j, so the data path and the
            // atom order run cur → … → x_j: flip both
            atoms.reverse();
        }
        let i = anchors.len();
        anchors.push(cur);
        if forward {
            backbone.push((j, i, FRegex::new(atoms)));
        } else {
            backbone.push((i, j, FRegex::new(atoms)));
        }
    }

    let mut pq = Pq::new();
    for (i, &a) in anchors.iter().enumerate() {
        let pred = sample_predicate_at(g, a, p.preds, &mut rng);
        pq.add_node(&format!("u{i}"), pred);
    }
    for (j, i, re) in backbone {
        pq.add_edge(j, i, re);
    }
    // extra edges between anchors the matrix confirms connected
    let colors: Vec<_> = g.alphabet().colors().collect();
    let mut guard = 0;
    while pq.edge_count() < p.edges && guard < 200 {
        guard += 1;
        let j = rng.gen_range(0..p.nodes);
        let i = rng.gen_range(0..p.nodes);
        let c = colors[rng.gen_range(0..colors.len())];
        if m.reaches_within(g, anchors[j], anchors[i], c, Some(p.bound)) {
            pq.add_edge(j, i, FRegex::atom(c, quant));
        }
    }
    pq
}

/// Generate a "meaningful" PQ that provably contains redundancy — the
/// Fig. 10(a) workload.
///
/// A smaller anchored base query is generated first, then random nodes are
/// *duplicated* (same predicate, same out-edges, and copies of the
/// originals' in-edges) until the requested `|Vp|` is reached. A duplicate
/// is simulation-equivalent to its original by construction, so `minPQs`
/// can fold the query back to roughly the base size — mirroring the
/// paper's observation that its larger generated queries had "a higher
/// probability to contain redundant nodes and edges" (their (12,18)
/// queries minimized to (7,9) on average).
pub fn generate_pq_with_redundancy(
    g: &Graph,
    m: &DistanceMatrix,
    p: &QueryParams,
    seed: u64,
) -> Pq {
    let mut rng = StdRng::seed_from_u64(seed);
    let base_nodes = (p.nodes * 3 / 5).max(2);
    let base_edges = (p.edges * 3 / 5).max(base_nodes.saturating_sub(1));
    let base_params = QueryParams {
        nodes: base_nodes,
        edges: base_edges,
        ..*p
    };
    let mut pq = generate_pq_anchored(g, m, &base_params, seed);
    while pq.node_count() < p.nodes {
        let u = rng.gen_range(0..pq.node_count());
        let twin = pq.add_node(
            &format!("{}'", pq.node(u).label.clone()),
            pq.node(u).pred.clone(),
        );
        let outs: Vec<(usize, FRegex)> = pq
            .out_edges(u)
            .iter()
            .map(|&e| (pq.edge(e).to, pq.edge(e).regex.clone()))
            .collect();
        for (to, re) in outs {
            // a self-loop duplicates to a self-loop on the twin
            let to = if to == u { twin } else { to };
            pq.add_edge(twin, to, re);
        }
        let ins: Vec<(usize, FRegex)> = pq
            .in_edges(u)
            .iter()
            .map(|&e| (pq.edge(e).from, pq.edge(e).regex.clone()))
            .collect();
        for (from, re) in ins {
            if from != u {
                pq.add_edge(from, twin, re);
            }
        }
    }
    pq
}

/// Generate one RQ (the PQ special case with two nodes and one edge) whose
/// constraint uses exactly `k` distinct colors, each bounded by `b` —
/// the Fig. 10(b) workload `c1^b … ck^b`.
pub fn generate_rq(g: &Graph, preds: usize, bound: u32, k: usize, seed: u64) -> Rq {
    let mut rng = StdRng::seed_from_u64(seed);
    let from = sample_predicate(g, preds, &mut rng);
    let to = sample_predicate(g, preds, &mut rng);
    let m = g.alphabet().len();
    let k = k.min(m).max(1);
    let mut colors: Vec<_> = g.alphabet().colors().collect();
    for i in 0..k {
        let j = rng.gen_range(i..colors.len());
        colors.swap(i, j);
    }
    let quant = if bound <= 1 {
        Quant::One
    } else {
        Quant::AtMost(bound)
    };
    let regex = FRegex::new(
        colors
            .into_iter()
            .take(k)
            .map(|c| Atom::new(c, quant))
            .collect(),
    );
    Rq::new(from, to, regex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::gen::synthetic;

    #[test]
    fn generated_pq_respects_parameters() {
        let g = synthetic(200, 700, 3, 4, 1);
        let p = QueryParams {
            nodes: 6,
            edges: 9,
            preds: 2,
            bound: 5,
            colors: 3,
            redundant: false,
        };
        for seed in 0..10 {
            let pq = generate_pq(&g, &p, seed);
            assert_eq!(pq.node_count(), 6);
            assert_eq!(pq.edge_count(), 9);
            for n in pq.nodes() {
                assert_eq!(n.pred.len(), 2);
            }
            for e in pq.edges() {
                assert!((1..=3).contains(&e.regex.len()));
                for a in e.regex.atoms() {
                    assert_eq!(a.quant, Quant::AtMost(5));
                }
            }
        }
    }

    #[test]
    fn predicates_are_satisfiable_on_the_graph() {
        let g = synthetic(100, 300, 3, 4, 2);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let pred = sample_predicate(&g, 3, &mut rng);
            assert!(
                g.nodes().any(|v| pred.matches(g.attrs(v))),
                "unsatisfiable predicate generated"
            );
        }
    }

    #[test]
    fn determinism() {
        let g = synthetic(100, 300, 3, 4, 2);
        let p = QueryParams::defaults();
        assert_eq!(generate_pq(&g, &p, 7), generate_pq(&g, &p, 7));
        assert_ne!(generate_pq(&g, &p, 7), generate_pq(&g, &p, 8));
    }

    #[test]
    fn rq_generator_uses_k_colors() {
        let g = synthetic(100, 300, 3, 4, 2);
        for k in 1..=4 {
            let rq = generate_rq(&g, 3, 5, k, 11);
            assert_eq!(rq.regex.len(), k);
            assert_eq!(rq.regex.distinct_colors(), k);
        }
    }

    #[test]
    fn anchored_queries_have_nonempty_answers() {
        use rpq_core::{JoinMatch, MatrixReach};
        let g = rpq_graph::gen::terrorism_like(5);
        let m = DistanceMatrix::build(&g);
        for seed in 0..8 {
            for nodes in [3usize, 5, 7] {
                let p = QueryParams {
                    nodes,
                    edges: nodes + 1,
                    preds: 2,
                    bound: 2,
                    colors: 1,
                    redundant: false,
                };
                let pq = generate_pq_anchored(&g, &m, &p, seed);
                assert_eq!(pq.node_count(), nodes);
                assert!(pq.edge_count() >= nodes - 1);
                let res = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
                assert!(
                    !res.is_empty(),
                    "anchored query must match (seed {seed}, nodes {nodes})"
                );
            }
        }
    }

    #[test]
    fn redundant_queries_shrink_under_minimization() {
        let g = rpq_graph::gen::terrorism_like(5);
        let m = DistanceMatrix::build(&g);
        let p = QueryParams {
            nodes: 10,
            edges: 15,
            preds: 2,
            bound: 3,
            colors: 2,
            redundant: false,
        };
        let mut shrunk = 0;
        for seed in 0..5 {
            let pq = generate_pq_with_redundancy(&g, &m, &p, seed);
            assert_eq!(pq.node_count(), 10);
            let slim = rpq_core::minimize(&pq);
            assert!(rpq_core::pq_equivalent(&slim, &pq), "seed {seed}");
            assert!(slim.size() <= pq.size());
            if slim.size() < pq.size() {
                shrunk += 1;
            }
        }
        assert!(shrunk >= 4, "planted redundancy must usually be removable");
    }

    #[test]
    fn anchored_single_color_edges_when_c_is_1() {
        let g = rpq_graph::gen::terrorism_like(5);
        let m = DistanceMatrix::build(&g);
        let p = QueryParams {
            nodes: 5,
            edges: 6,
            preds: 2,
            bound: 2,
            colors: 1,
            redundant: false,
        };
        let pq = generate_pq_anchored(&g, &m, &p, 3);
        for e in pq.edges() {
            assert_eq!(e.regex.len(), 1, "c = 1 must yield single-atom edges");
        }
    }

    #[test]
    fn redundant_mode_duplicates_predicates() {
        let g = synthetic(100, 300, 3, 4, 2);
        let p = QueryParams {
            nodes: 10,
            edges: 14,
            preds: 2,
            bound: 5,
            colors: 2,
            redundant: true,
        };
        let pq = generate_pq(&g, &p, 3);
        // with a pool of ≤5 predicates over 10 nodes, duplicates must occur
        let mut preds: Vec<String> = (0..pq.node_count())
            .map(|u| format!("{:?}", pq.node(u).pred))
            .collect();
        preds.sort();
        preds.dedup();
        assert!(preds.len() < 10);
    }
}
