//! Closed-loop load generator for `rpq-server`.
//!
//! One thread per connection, each running a closed loop: send a request,
//! wait for the answer, send the next. Traffic is a seeded mix of RQ/PQ
//! read batches (via [`querygen`](crate::querygen)) and small edge-update
//! writes. 429 backpressure responses are honored by a short pause and a
//! retry, and counted — so a saturated server slows the offered load down
//! instead of melting, which is the whole point of admission control.
//!
//! Per-request latencies are collected across all connections; the
//! [`LoadReport`] carries the percentiles the acceptance test asserts and
//! the numbers `BENCH_server.json` records.

use crate::querygen::{generate_pq, generate_rq, QueryParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_core::incremental::Update;
use rpq_engine::Query;
use rpq_graph::{Color, Graph, NodeId};
use rpq_server::Client;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Shape of the offered load.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent connections (threads).
    pub connections: usize,
    /// Requests each connection completes before closing.
    pub requests_per_connection: usize,
    /// Percentage of requests that are update writes (0–100).
    pub write_pct: u32,
    /// Queries per read request.
    pub batch: usize,
    /// Updates per write request.
    pub updates_per_write: usize,
    /// Base RNG seed (connection `i` uses `seed + i`).
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 8,
            requests_per_connection: 16,
            write_pct: 20,
            batch: 4,
            updates_per_write: 4,
            seed: 1,
        }
    }
}

/// Aggregated outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests answered 200.
    pub requests: u64,
    /// Individual queries answered (batch of 4 counts 4).
    pub queries: u64,
    /// Updates acknowledged as applied by the server.
    pub updates_applied: u64,
    /// 429 backpressure responses observed (each was retried).
    pub rejected: u64,
    /// Responses with any other non-200 status, plus transport errors.
    pub errors: u64,
    /// Wall-clock of the whole run.
    pub wall: Duration,
    pub p50_us: u64,
    pub p99_us: u64,
    /// Completed queries per second over the run.
    pub qps: f64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct ConnOutcome {
    latencies_us: Vec<u64>,
    queries: u64,
    updates_applied: u64,
    rejected: u64,
    errors: u64,
}

/// A small random (but valid) update batch: node ids in range, concrete
/// colors only — writes must never 400.
fn random_updates(g: &Graph, count: usize, rng: &mut StdRng) -> Vec<Update> {
    let n = g.node_count() as u32;
    let colors: Vec<Color> = g.alphabet().colors().collect();
    (0..count)
        .map(|_| {
            let x = NodeId(rng.gen_range(0..n));
            let y = NodeId(rng.gen_range(0..n));
            let c = colors[rng.gen_range(0..colors.len())];
            if rng.gen_bool(0.5) {
                Update::Insert(x, y, c)
            } else {
                Update::Delete(x, y, c)
            }
        })
        .collect()
}

fn run_connection(
    addr: &str,
    g: &Graph,
    cfg: &LoadConfig,
    conn_idx: usize,
) -> Result<ConnOutcome, std::io::Error> {
    let mut client = Client::connect(addr)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(conn_idx as u64));
    let mut out = ConnOutcome {
        latencies_us: Vec::with_capacity(cfg.requests_per_connection),
        queries: 0,
        updates_applied: 0,
        rejected: 0,
        errors: 0,
    };
    let pq_params = QueryParams {
        nodes: 3,
        edges: 3,
        preds: 2,
        bound: 3,
        colors: 2,
        redundant: false,
    };

    for req in 0..cfg.requests_per_connection {
        let write = rng.gen_range(0..100u32) < cfg.write_pct;
        let mut attempt = 0usize;
        loop {
            let started = Instant::now();
            let resp = if write {
                let updates = random_updates(g, cfg.updates_per_write, &mut rng);
                client.update(&updates, g)?
            } else {
                let queries: Vec<Query> = (0..cfg.batch)
                    .map(|k| {
                        let seed = cfg
                            .seed
                            .wrapping_add((conn_idx * 1_000_003 + req * 101 + k) as u64);
                        if k % 4 == 3 {
                            Query::Pq(generate_pq(g, &pq_params, seed))
                        } else {
                            Query::Rq(generate_rq(g, 2, 3, 2, seed))
                        }
                    })
                    .collect();
                client.query(&queries, g)?
            };
            match resp.status {
                200 => {
                    out.latencies_us.push(started.elapsed().as_micros() as u64);
                    if write {
                        if let Ok(applied) = parse_applied(&resp.body) {
                            out.updates_applied += applied;
                        }
                    } else {
                        out.queries += cfg.batch as u64;
                    }
                    break;
                }
                429 => {
                    out.rejected += 1;
                    attempt += 1;
                    if attempt > 50 {
                        out.errors += 1;
                        break;
                    }
                    // honor backpressure; scaled-down Retry-After keeps
                    // closed-loop tests from sleeping for whole seconds
                    let base = resp.retry_after.unwrap_or(1).min(2);
                    thread::sleep(Duration::from_millis(10 * base * attempt as u64));
                }
                _ => {
                    out.errors += 1;
                    break;
                }
            }
        }
    }
    Ok(out)
}

/// Aggregated stage timings from an explain sample: how a set of
/// representative queries spent their time, by stage and by plan.
#[derive(Debug, Clone, Default)]
pub struct ExplainSummary {
    /// Profiles collected.
    pub profiles: u64,
    /// Per stage name: (occurrences, total µs across the sample).
    pub stages: Vec<(String, u64, u64)>,
    /// Per plan variant: queries the planner sent there.
    pub plans: Vec<(String, u64)>,
}

impl ExplainSummary {
    /// Render the aggregate as an aligned table (what `rpq-load
    /// --explain-sample N` prints).
    pub fn table(&self) -> String {
        let mut out = format!("explain sample: {} profiles\n", self.profiles);
        out.push_str("  stage           count   total_us    mean_us\n");
        for (name, count, total) in &self.stages {
            out.push_str(&format!(
                "  {name:<14} {count:>6} {total:>10} {:>10.1}\n",
                *total as f64 / (*count).max(1) as f64
            ));
        }
        out.push_str("  plan                        queries\n");
        for (plan, count) in &self.plans {
            out.push_str(&format!("  {plan:<26} {count:>7}\n"));
        }
        out
    }
}

/// Send `n` seeded queries through `POST /v1/explain` on one connection
/// and aggregate the returned profiles per stage and per plan.
pub fn sample_explain(
    addr: &str,
    g: &Graph,
    n: usize,
    seed: u64,
) -> Result<ExplainSummary, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let pq_params = QueryParams {
        nodes: 3,
        edges: 3,
        preds: 2,
        bound: 3,
        colors: 2,
        redundant: false,
    };
    let queries: Vec<Query> = (0..n)
        .map(|k| {
            let s = seed.wrapping_add(k as u64);
            if k % 4 == 3 {
                Query::Pq(generate_pq(g, &pq_params, s))
            } else {
                Query::Rq(generate_rq(g, 2, 3, 2, s))
            }
        })
        .collect();
    let resp = client
        .explain(&queries, g)
        .map_err(|e| format!("explain request: {e}"))?;
    if resp.status != 200 {
        return Err(format!("explain answered {}: {}", resp.status, resp.body));
    }
    let mut summary = ExplainSummary::default();
    for line in resp.body.lines() {
        let profile = rpq_server::json::Json::parse(line)
            .map_err(|e| format!("profile line is not JSON ({e}): {line}"))?;
        summary.profiles += 1;
        let plan = profile
            .get("plan")
            .and_then(|p| p.as_str())
            .ok_or_else(|| format!("profile without a plan: {line}"))?
            .to_owned();
        match summary.plans.iter_mut().find(|(p, _)| *p == plan) {
            Some((_, c)) => *c += 1,
            None => summary.plans.push((plan, 1)),
        }
        let stages = profile
            .get("stages")
            .and_then(|s| s.as_array())
            .ok_or_else(|| format!("profile without stages: {line}"))?;
        for stage in stages {
            let name = stage
                .get("name")
                .and_then(|v| v.as_str())
                .unwrap_or("?")
                .to_owned();
            let us = stage.get("us").and_then(|v| v.as_u64()).unwrap_or(0);
            match summary.stages.iter_mut().find(|(s, _, _)| *s == name) {
                Some((_, count, total)) => {
                    *count += 1;
                    *total += us;
                }
                None => summary.stages.push((name, 1, us)),
            }
        }
    }
    if summary.profiles != n as u64 {
        return Err(format!("expected {n} profiles, got {}", summary.profiles));
    }
    Ok(summary)
}

/// The smoke job's observability contract: the default `/metrics` body
/// must round-trip a Prometheus text parser with the core families
/// present, and every `/debug/trace` line must be valid JSON.
pub fn assert_observability(addr: &str) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let text = client
        .metrics_prometheus()
        .map_err(|e| format!("/metrics scrape: {e}"))?;
    let samples = rpq_server::metrics::parse_prometheus_text(&text)
        .map_err(|e| format!("/metrics is not valid Prometheus exposition: {e}"))?;
    for family in [
        "rpq_queries_total",
        "rpq_request_latency_seconds_count",
        "rpq_uptime_seconds",
    ] {
        if !samples.iter().any(|(s, _)| s == family) {
            return Err(format!("/metrics lacks the {family} series"));
        }
    }
    let trace = client
        .debug_trace()
        .map_err(|e| format!("/debug/trace fetch: {e}"))?;
    for line in trace.lines() {
        rpq_server::json::Json::parse(line)
            .map_err(|e| format!("/debug/trace line is not JSON ({e}): {line}"))?;
    }
    Ok(())
}

pub(crate) fn parse_applied(body: &str) -> Result<u64, ()> {
    rpq_server::json::Json::parse(body)
        .ok()
        .and_then(|d| d.get("applied").and_then(|v| v.as_u64()))
        .ok_or(())
}

/// Drive `cfg.connections` closed-loop connections against `addr` and
/// aggregate the outcome. `graph` must share the server's vocabulary
/// (same generator parameters or the same file).
pub fn run_load(addr: &str, graph: &Arc<Graph>, cfg: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let (tx, rx) = mpsc::channel::<Result<ConnOutcome, std::io::Error>>();
    let mut spawned = 0usize;
    for i in 0..cfg.connections {
        let tx = tx.clone();
        let addr = addr.to_owned();
        let graph = Arc::clone(graph);
        let cfg = cfg.clone();
        // modest stacks so ≥1000 generator threads stay cheap
        let handle = thread::Builder::new()
            .name(format!("rpq-load-{i}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                let _ = tx.send(run_connection(&addr, &graph, &cfg, i));
            });
        if handle.is_ok() {
            spawned += 1;
        }
    }
    drop(tx);

    let mut latencies = Vec::new();
    let mut report = LoadReport {
        requests: 0,
        queries: 0,
        updates_applied: 0,
        rejected: 0,
        errors: 0,
        wall: Duration::ZERO,
        p50_us: 0,
        p99_us: 0,
        qps: 0.0,
    };
    report.errors += (cfg.connections - spawned) as u64;
    for outcome in rx {
        match outcome {
            Ok(o) => {
                report.requests += o.latencies_us.len() as u64;
                report.queries += o.queries;
                report.updates_applied += o.updates_applied;
                report.rejected += o.rejected;
                report.errors += o.errors;
                latencies.extend(o.latencies_us);
            }
            Err(_) => report.errors += 1,
        }
    }
    report.wall = started.elapsed();
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 0.50);
    report.p99_us = percentile(&latencies, 0.99);
    report.qps = report.queries as f64 / report.wall.as_secs_f64().max(1e-9);
    report
}
