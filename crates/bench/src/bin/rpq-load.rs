//! `rpq-load` — closed-loop load generator and smoke checker for
//! `rpq-server`.
//!
//! ```text
//! rpq-load ADDR [--gen N [--seed S]] [--connections C] [--requests R]
//!          [--batch B] [--write-pct P] [--assert-qps]
//!          [--explain-sample N] [--assert-observability] [--shutdown]
//! ```
//!
//! `--gen`/`--seed` must match the server's so both sides share the graph
//! vocabulary. With `--assert-qps` the tool scrapes `/metrics` after the
//! run and exits non-zero unless the server reports non-zero qps and zero
//! errors were observed client-side — the CI smoke contract.
//! `--explain-sample N` sends N representative queries through
//! `POST /v1/explain` after the run and prints the aggregated stage-time
//! table. `--assert-observability` additionally requires the default
//! `/metrics` body to round-trip a Prometheus text parser and every
//! `/debug/trace` line to be valid JSON. With `--shutdown` it asks the
//! server to drain afterwards.

use rpq_bench::loadgen::{assert_observability, run_load, sample_explain, LoadConfig};
use rpq_server::Client;
use std::sync::Arc;

fn fail(msg: &str) -> ! {
    eprintln!("rpq-load: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut gen_nodes = 10_000usize;
    let mut seed = 42u64;
    let mut cfg = LoadConfig::default();
    let mut assert_qps = false;
    let mut assert_obs = false;
    let mut explain_sample = 0usize;
    let mut shutdown = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--gen" => gen_nodes = value("--gen").parse().unwrap_or_else(|_| fail("--gen")),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| fail("--seed")),
            "--connections" => {
                cfg.connections = value("--connections")
                    .parse()
                    .unwrap_or_else(|_| fail("--connections"))
            }
            "--requests" => {
                cfg.requests_per_connection = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| fail("--requests"))
            }
            "--batch" => cfg.batch = value("--batch").parse().unwrap_or_else(|_| fail("--batch")),
            "--write-pct" => {
                cfg.write_pct = value("--write-pct")
                    .parse()
                    .unwrap_or_else(|_| fail("--write-pct"))
            }
            "--assert-qps" => assert_qps = true,
            "--assert-observability" => assert_obs = true,
            "--explain-sample" => {
                explain_sample = value("--explain-sample")
                    .parse()
                    .unwrap_or_else(|_| fail("--explain-sample"))
            }
            "--shutdown" => shutdown = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: rpq-load ADDR [--gen N] [--seed S] [--connections C] \
                     [--requests R] [--batch B] [--write-pct P] [--assert-qps] \
                     [--explain-sample N] [--assert-observability] [--shutdown]"
                );
                return;
            }
            other if !other.starts_with('-') => addr = Some(other.to_owned()),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    let addr = addr.unwrap_or_else(|| fail("missing server ADDR"));

    eprintln!("generating the shared {gen_nodes}-node vocabulary graph (seed {seed})…");
    let graph = Arc::new(rpq_graph::gen::youtube_like(gen_nodes, seed));

    eprintln!(
        "offered load: {} connections × {} requests (batch {}, {}% writes)",
        cfg.connections, cfg.requests_per_connection, cfg.batch, cfg.write_pct
    );
    let report = run_load(&addr, &graph, &cfg);
    println!(
        "done in {:.2?}: {} requests ({} queries, {} updates applied), \
         {} rejected (429, retried), {} errors",
        report.wall,
        report.requests,
        report.queries,
        report.updates_applied,
        report.rejected,
        report.errors
    );
    println!(
        "client-side: {:.0} q/s, p50 {} µs, p99 {} µs",
        report.qps, report.p50_us, report.p99_us
    );

    let mut failures = 0;
    match Client::connect(&addr).and_then(|mut c| c.metrics()) {
        Ok(metrics) => {
            println!("server /metrics: {metrics:?}");
            if assert_qps {
                let qps = metrics.get("qps").and_then(|v| v.as_f64()).unwrap_or(0.0);
                if qps <= 0.0 {
                    eprintln!("FAIL: server reports qps = {qps}");
                    failures += 1;
                }
                let served = metrics.get("queries").and_then(|v| v.as_u64()).unwrap_or(0);
                if served < report.queries {
                    eprintln!(
                        "FAIL: server served {served} queries, client completed {}",
                        report.queries
                    );
                    failures += 1;
                }
            }
        }
        Err(e) => {
            eprintln!("FAIL: cannot scrape /metrics: {e}");
            failures += 1;
        }
    }
    if assert_qps && report.errors > 0 {
        eprintln!("FAIL: {} client-side errors", report.errors);
        failures += 1;
    }
    if explain_sample > 0 {
        match sample_explain(&addr, &graph, explain_sample, seed) {
            Ok(summary) => print!("{}", summary.table()),
            Err(e) => {
                eprintln!("FAIL: explain sample: {e}");
                failures += 1;
            }
        }
    }
    if assert_obs {
        match assert_observability(&addr) {
            Ok(()) => eprintln!("observability check passed (/metrics + /debug/trace)"),
            Err(e) => {
                eprintln!("FAIL: observability: {e}");
                failures += 1;
            }
        }
    }

    if shutdown {
        match Client::connect(&addr).and_then(|mut c| c.shutdown_server()) {
            Ok(resp) if resp.is_ok() => eprintln!("server acknowledged shutdown"),
            Ok(resp) => {
                eprintln!("FAIL: shutdown returned {}", resp.status);
                failures += 1;
            }
            Err(e) => {
                eprintln!("FAIL: shutdown request failed: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
