//! Regenerates every figure of the paper's evaluation section (§6).
//!
//! ```text
//! experiments <fig9b|fig9c|fig10a|fig10b|fig11a|fig11b|fig11c|fig11d|
//!              fig12a|fig12b|fig12c|fig12d|fig12e|fig12f|all>
//!             [--queries N]   queries averaged per data point (default 3)
//!             [--scale F]     data-graph scale factor vs the paper (default 0.24)
//!             [--seed S]      base RNG seed (default 42)
//! ```
//!
//! Absolute times differ from the paper's 2011 testbed; the *shape* of
//! each figure (which series wins, how curves trend) is the reproduction
//! target. See EXPERIMENTS.md for the recorded comparison.

use rpq_bench::harness::{mean_ms, time, Table};
use rpq_bench::measure::{f_measure, pairs_of, MatchPairs};
use rpq_bench::querygen::{
    generate_pq_anchored, generate_pq_with_redundancy, generate_rq, QueryParams,
};
use rpq_core::baseline::{bounded_sim_match, subiso_match};
use rpq_core::{CachedReach, JoinMatch, MatrixReach, Pq, SplitMatch};
use rpq_graph::gen::{synthetic, terrorism_like, youtube_like};
use rpq_graph::{DistanceMatrix, Graph};
use std::time::Duration;

#[derive(Clone, Copy)]
struct Config {
    queries: usize,
    scale: f64,
    seed: u64,
}

impl Config {
    fn youtube_nodes(&self) -> usize {
        ((8_350.0 * self.scale) as usize).max(300)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = String::from("all");
    let mut cfg = Config {
        queries: 3,
        scale: 0.24,
        seed: 42,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--queries" => cfg.queries = it.next().expect("--queries N").parse().unwrap(),
            "--scale" => cfg.scale = it.next().expect("--scale F").parse().unwrap(),
            "--seed" => cfg.seed = it.next().expect("--seed S").parse().unwrap(),
            other => cmd = other.to_owned(),
        }
    }
    type Runner = fn(&Config);
    let all: &[(&str, Runner)] = &[
        ("fig9b", fig9b),
        ("fig9c", fig9c),
        ("fig10a", fig10a),
        ("fig10b", fig10b),
        ("fig11a", fig11a),
        ("fig11b", fig11b),
        ("fig11c", fig11c),
        ("fig11d", fig11d),
        ("fig12a", fig12a),
        ("fig12b", fig12b),
        ("fig12c", fig12c),
        ("fig12d", fig12d),
        ("fig12e", fig12e),
        ("fig12f", fig12f),
    ];
    match all.iter().find(|(name, _)| *name == cmd) {
        Some((_, f)) => f(&cfg),
        None if cmd == "all" => {
            for (name, f) in all {
                eprintln!("[experiments] running {name} …");
                f(&cfg);
            }
        }
        None => {
            eprintln!("unknown experiment {cmd:?}");
            std::process::exit(2);
        }
    }
}

/// Queries for Exp-1 (Fig. 9(b)/(c)): single color per edge to favor the
/// baselines, small hop bounds, 2-3 predicates. Like the paper's
/// "meaningful" queries, each must have a nonempty PQ answer — seeds are
/// retried until one does.
fn fig9_queries(g: &Graph, m: &DistanceMatrix, size: usize, cfg: &Config) -> Vec<Pq> {
    // effectiveness needs more averaging than the timing sweeps; queries
    // here are cheap (818-node graph), so raise the floor
    let wanted = cfg.queries.max(10);
    let mut queries = Vec::with_capacity(wanted);
    let mut attempt = 0u64;
    while queries.len() < wanted && attempt < 400 {
        let p = QueryParams {
            nodes: size,
            edges: size,
            preds: 3,
            bound: if attempt.is_multiple_of(3) { 1 } else { 2 },
            colors: 1,
            redundant: false,
        };
        let pq = generate_pq_anchored(g, m, &p, cfg.seed + size as u64 * 1000 + attempt);
        attempt += 1;
        let truth = JoinMatch::eval(&pq, g, &mut MatrixReach::new(m));
        if !truth.is_empty() {
            queries.push(pq);
        }
    }
    queries
}

fn fig9b(cfg: &Config) {
    let g = terrorism_like(cfg.seed);
    let m = DistanceMatrix::build(&g);
    let mut table = Table::new(
        "Fig 9(b) — F-measure on the terrorism network (PQ ground truth)",
        "(|Vp|,|Ep|)",
        &["JoinMatchM", "Match", "SubIso"],
        "F",
    );
    for size in 3..=7usize {
        let (mut f_pq, mut f_match, mut f_sub) = (0.0, 0.0, 0.0);
        let queries = fig9_queries(&g, &m, size, cfg);
        for pq in &queries {
            let truth_res = JoinMatch::eval(pq, &g, &mut MatrixReach::new(&m));
            let truth: MatchPairs = pairs_of(&truth_res, pq.node_count());
            f_pq += f_measure(&truth, &truth).f_measure;
            let matched = bounded_sim_match(pq, &g, &mut MatrixReach::new(&m));
            f_match += f_measure(&truth, &pairs_of(&matched, pq.node_count())).f_measure;
            let sub = subiso_match(pq, &g, 50_000_000);
            let sub_pairs: MatchPairs = sub.match_pairs.iter().copied().collect();
            f_sub += f_measure(&truth, &sub_pairs).f_measure;
        }
        let n = queries.len() as f64;
        table.row(
            format!("({size},{size})"),
            vec![f_pq / n, f_match / n, f_sub / n],
        );
    }
    table.print();
}

fn fig9c(cfg: &Config) {
    let g = terrorism_like(cfg.seed);
    let m = DistanceMatrix::build(&g);
    let mut table = Table::new(
        "Fig 9(c) — evaluation time on the terrorism network",
        "(|Vp|,|Ep|)",
        &["JoinMatchM", "SplitMatchM", "MatchM", "SubIso"],
        "ms",
    );
    for size in 3..=7usize {
        let queries = fig9_queries(&g, &m, size, cfg);
        let mut t = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for pq in &queries {
            t[0].push(time(|| JoinMatch::eval(pq, &g, &mut MatrixReach::new(&m))).1);
            t[1].push(time(|| SplitMatch::eval(pq, &g, &mut MatrixReach::new(&m))).1);
            t[2].push(time(|| bounded_sim_match(pq, &g, &mut MatrixReach::new(&m))).1);
            t[3].push(time(|| subiso_match(pq, &g, 50_000_000)).1);
        }
        table.row(
            format!("({size},{size})"),
            t.iter().map(|s| mean_ms(s)).collect(),
        );
    }
    table.print();
}

fn fig10a(cfg: &Config) {
    let g = youtube_like(cfg.youtube_nodes(), cfg.seed);
    let m = DistanceMatrix::build(&g);
    let mut table = Table::new(
        "Fig 10(a) — minimized vs normal queries (YouTube-like, JoinMatchM)",
        "(|Vp|,|Ep|)",
        &["Normal", "Minimized", "|Q|", "|Qm|"],
        "ms",
    );
    for &(nv, ne) in &[(4, 6), (6, 8), (8, 12), (10, 15), (12, 18)] {
        let mut t_norm = Vec::new();
        let mut t_min = Vec::new();
        let (mut sz, mut szm) = (0usize, 0usize);
        for i in 0..cfg.queries {
            let p = QueryParams {
                nodes: nv,
                edges: ne,
                preds: 3,
                bound: 5,
                colors: 4,
                redundant: true,
            };
            let pq = generate_pq_with_redundancy(&g, &m, &p, cfg.seed + (nv * 1000 + i) as u64);
            let slim = rpq_core::minimize(&pq);
            sz += pq.size();
            szm += slim.size();
            t_norm.push(time(|| JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m))).1);
            t_min.push(time(|| JoinMatch::eval(&slim, &g, &mut MatrixReach::new(&m))).1);
        }
        let n = cfg.queries as f64;
        table.row(
            format!("({nv},{ne})"),
            vec![
                mean_ms(&t_norm),
                mean_ms(&t_min),
                sz as f64 / n,
                szm as f64 / n,
            ],
        );
    }
    table.print();
}

fn fig10b(cfg: &Config) {
    let g = youtube_like(cfg.youtube_nodes(), cfg.seed);
    let m = DistanceMatrix::build(&g);
    // Two sweeps. The first is the paper's setting (|pred| = 3, selective
    // endpoints); note that this library's runtime strategies are
    // per-source product searches — stronger than the paper's set-level
    // re-evaluation — so they stay competitive with DM here. The second
    // sweep drops the predicates: with unselective endpoints the search
    // strategies degrade with the candidate count while DM's row scans do
    // not, which is the regime where the pre-computed index wins, as in
    // the paper's figure.
    for (title, preds) in [
        (
            "Fig 10(b) — RQ strategies vs number of colors (YouTube-like, |pred|=3)",
            3usize,
        ),
        ("Fig 10(b') — ablation: unselective endpoints (|pred|=0)", 0),
    ] {
        let mut table = Table::new(title, "#colors", &["DM", "biBFS", "BFS"], "ms");
        for k in 1..=4usize {
            let mut t = [Vec::new(), Vec::new(), Vec::new()];
            for i in 0..cfg.queries.max(5) {
                let rq = generate_rq(&g, preds, 5, k, cfg.seed + (k * 100 + i) as u64);
                let (dm_res, d0) = time(|| rq.eval_with_matrix(&g, &m));
                let (bi_res, d1) = time(|| rq.eval_bibfs(&g));
                let (bfs_res, d2) = time(|| rq.eval_bfs(&g));
                assert_eq!(dm_res, bi_res);
                assert_eq!(dm_res, bfs_res);
                t[0].push(d0);
                t[1].push(d1);
                t[2].push(d2);
            }
            table.row(k, t.iter().map(|s| mean_ms(s)).collect());
        }
        table.print();
    }
}

/// Shared driver for the Fig. 11/12 PQ-efficiency plots: one row per
/// parameter setting, the four algorithm variants as series plus the
/// matrix-construction time (`M-index`).
fn pq_efficiency(
    title: &str,
    x_label: &str,
    g: &Graph,
    settings: &[(String, QueryParams)],
    cfg: &Config,
) {
    let (m, m_build) = time(|| DistanceMatrix::build(g));
    let mut table = Table::new(
        title,
        x_label,
        &[
            "JoinMatchM",
            "JoinMatchC",
            "SplitMatchM",
            "SplitMatchC",
            "M-index",
        ],
        "ms",
    );
    for (row_idx, (label, params)) in settings.iter().enumerate() {
        let mut t: [Vec<Duration>; 4] = Default::default();
        for i in 0..cfg.queries {
            let pq = generate_pq_anchored(g, &m, params, cfg.seed + (row_idx * 1000 + i) as u64);
            let (a, d0) = time(|| JoinMatch::eval(&pq, g, &mut MatrixReach::new(&m)));
            let mut cache = CachedReach::with_default_capacity();
            let (b, d1) = time(|| JoinMatch::eval(&pq, g, &mut cache));
            let (c, d2) = time(|| SplitMatch::eval(&pq, g, &mut MatrixReach::new(&m)));
            let mut cache2 = CachedReach::with_default_capacity();
            let (d, d3) = time(|| SplitMatch::eval(&pq, g, &mut cache2));
            assert_eq!(a, b);
            assert_eq!(a, c);
            assert_eq!(a, d);
            t[0].push(d0);
            t[1].push(d1);
            t[2].push(d2);
            t[3].push(d3);
        }
        table.row(
            label,
            vec![
                mean_ms(&t[0]),
                mean_ms(&t[1]),
                mean_ms(&t[2]),
                mean_ms(&t[3]),
                m_build.as_secs_f64() * 1e3,
            ],
        );
    }
    table.print();
}

fn fig11a(cfg: &Config) {
    let g = youtube_like(cfg.youtube_nodes(), cfg.seed);
    let settings: Vec<(String, QueryParams)> = [4, 6, 8, 10, 12]
        .iter()
        .map(|&nv| {
            let mut p = QueryParams::defaults();
            p.nodes = nv;
            p.edges = nv + 2;
            (nv.to_string(), p)
        })
        .collect();
    pq_efficiency(
        "Fig 11(a) — PQ time vs |Vp| (YouTube-like)",
        "|Vp|",
        &g,
        &settings,
        cfg,
    );
}

fn fig11b(cfg: &Config) {
    let g = youtube_like(cfg.youtube_nodes(), cfg.seed);
    let settings: Vec<(String, QueryParams)> = [4, 6, 8, 10, 12]
        .iter()
        .map(|&ne| {
            let mut p = QueryParams::defaults();
            p.edges = ne;
            (ne.to_string(), p)
        })
        .collect();
    pq_efficiency(
        "Fig 11(b) — PQ time vs |Ep| (YouTube-like)",
        "|Ep|",
        &g,
        &settings,
        cfg,
    );
}

fn fig11c(cfg: &Config) {
    let g = youtube_like(cfg.youtube_nodes(), cfg.seed);
    let settings: Vec<(String, QueryParams)> = (1..=5usize)
        .map(|preds| {
            let mut p = QueryParams::defaults();
            p.preds = preds;
            (preds.to_string(), p)
        })
        .collect();
    pq_efficiency(
        "Fig 11(c) — PQ time vs |pred| (YouTube-like)",
        "|pred|",
        &g,
        &settings,
        cfg,
    );
}

fn fig11d(cfg: &Config) {
    let g = youtube_like(cfg.youtube_nodes(), cfg.seed);
    let settings: Vec<(String, QueryParams)> = [1u32, 3, 5, 7, 9]
        .iter()
        .map(|&b| {
            let mut p = QueryParams::defaults();
            p.bound = b;
            (b.to_string(), p)
        })
        .collect();
    pq_efficiency(
        "Fig 11(d) — PQ time vs bound b (YouTube-like)",
        "b",
        &g,
        &settings,
        cfg,
    );
}

fn fig12a(cfg: &Config) {
    let e = (20_000.0 * cfg.scale) as usize;
    let mut table = Table::new(
        "Fig 12(a) — PQ time vs |V| (synthetic, |E| fixed)",
        "|V|",
        &["JoinMatchM", "JoinMatchC", "SplitMatchM", "SplitMatchC"],
        "ms",
    );
    for step in 1..=8usize {
        let n = (((step * 1000) as f64 * cfg.scale) as usize).max(50);
        let g = synthetic(n, e, 3, 4, cfg.seed + step as u64);
        let m = DistanceMatrix::build(&g);
        let mut t: [Vec<Duration>; 4] = Default::default();
        for i in 0..cfg.queries {
            let pq = generate_pq_anchored(
                &g,
                &m,
                &QueryParams::defaults(),
                cfg.seed + (step * 777 + i) as u64,
            );
            t[0].push(time(|| JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m))).1);
            let mut cache = CachedReach::with_default_capacity();
            t[1].push(time(|| JoinMatch::eval(&pq, &g, &mut cache)).1);
            t[2].push(time(|| SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m))).1);
            let mut cache2 = CachedReach::with_default_capacity();
            t[3].push(time(|| SplitMatch::eval(&pq, &g, &mut cache2)).1);
        }
        table.row(n, t.iter().map(|s| mean_ms(s)).collect());
    }
    table.print();
}

fn fig12b(cfg: &Config) {
    let n = (8_000.0 * cfg.scale) as usize;
    let mut table = Table::new(
        "Fig 12(b) — PQ time vs |E| (synthetic, |V| fixed)",
        "|E|",
        &["JoinMatchM", "JoinMatchC", "SplitMatchM", "SplitMatchC"],
        "ms",
    );
    for step in 1..=10usize {
        let e = ((step * 3000) as f64 * cfg.scale) as usize;
        let g = synthetic(n, e, 3, 4, cfg.seed + step as u64);
        let m = DistanceMatrix::build(&g);
        let mut t: [Vec<Duration>; 4] = Default::default();
        for i in 0..cfg.queries {
            let pq = generate_pq_anchored(
                &g,
                &m,
                &QueryParams::defaults(),
                cfg.seed + (step * 555 + i) as u64,
            );
            t[0].push(time(|| JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m))).1);
            let mut cache = CachedReach::with_default_capacity();
            t[1].push(time(|| JoinMatch::eval(&pq, &g, &mut cache)).1);
            t[2].push(time(|| SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m))).1);
            let mut cache2 = CachedReach::with_default_capacity();
            t[3].push(time(|| SplitMatch::eval(&pq, &g, &mut cache2)).1);
        }
        table.row(e, t.iter().map(|s| mean_ms(s)).collect());
    }
    table.print();
}

fn fig12_pattern_sweep(
    cfg: &Config,
    title: &str,
    x_label: &str,
    settings: Vec<(String, QueryParams)>,
) {
    let n = ((4_000.0 * cfg.scale) as usize).max(50);
    let e = (10_000.0 * cfg.scale) as usize;
    let g = synthetic(n, e, 3, 4, cfg.seed);
    pq_efficiency(title, x_label, &g, &settings, cfg);
}

fn fig12c(cfg: &Config) {
    let settings: Vec<(String, QueryParams)> = [4usize, 8, 12, 16, 20, 24]
        .iter()
        .map(|&nv| {
            let mut p = QueryParams::defaults();
            p.nodes = nv;
            p.edges = nv + 2;
            (nv.to_string(), p)
        })
        .collect();
    fig12_pattern_sweep(
        cfg,
        "Fig 12(c) — PQ time vs |Vp| (synthetic)",
        "|Vp|",
        settings,
    );
}

fn fig12d(cfg: &Config) {
    let settings: Vec<(String, QueryParams)> = [5usize, 10, 15, 20, 25]
        .iter()
        .map(|&ne| {
            let mut p = QueryParams::defaults();
            p.nodes = 6;
            p.edges = ne;
            (ne.to_string(), p)
        })
        .collect();
    fig12_pattern_sweep(
        cfg,
        "Fig 12(d) — PQ time vs |Ep| (synthetic)",
        "|Ep|",
        settings,
    );
}

fn fig12e(cfg: &Config) {
    let settings: Vec<(String, QueryParams)> = (2..=7usize)
        .map(|preds| {
            let mut p = QueryParams::defaults();
            p.preds = preds;
            (preds.to_string(), p)
        })
        .collect();
    fig12_pattern_sweep(
        cfg,
        "Fig 12(e) — PQ time vs |pred| (synthetic)",
        "|pred|",
        settings,
    );
}

fn fig12f(cfg: &Config) {
    let mut table = Table::new(
        "Fig 12(f) — SubIso vs SplitMatchC on small graphs (time and matches)",
        "(|V|,|E|)",
        &["SubIso", "SplitMatchC", "SubIso#", "SplitC#"],
        "ms",
    );
    for step in 1..=5usize {
        let (nv, ne) = (50 * step, 100 * step);
        let g = synthetic(nv, ne, 3, 4, cfg.seed + step as u64);
        let m = DistanceMatrix::build(&g);
        let mut t_sub = Vec::new();
        let mut t_split = Vec::new();
        let (mut n_sub, mut n_split) = (0usize, 0usize);
        // the paper's (8,15) patterns with c1^5 … ck^5 constraints; like
        // Exp-1, only "meaningful" (nonempty-answer) queries are timed
        let mut collected = 0;
        let mut attempt = 0u64;
        while collected < cfg.queries && attempt < 200 {
            let pq = generate_pq_anchored(
                &g,
                &m,
                &QueryParams {
                    nodes: 8,
                    edges: 15,
                    preds: 3,
                    bound: 5,
                    colors: 4,
                    redundant: false,
                },
                cfg.seed + step as u64 * 99 + attempt,
            );
            attempt += 1;
            if JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m)).is_empty() {
                continue;
            }
            collected += 1;
            let (sub, d_sub) = time(|| subiso_match(&pq, &g, 20_000_000));
            t_sub.push(d_sub);
            n_sub += sub.match_pairs.len();
            let mut cache = CachedReach::with_default_capacity();
            let (res, d_split) = time(|| SplitMatch::eval(&pq, &g, &mut cache));
            t_split.push(d_split);
            n_split += (0..pq.node_count())
                .map(|u| res.node_matches(u).len())
                .sum::<usize>();
        }
        let q = collected.max(1) as f64;
        table.row(
            format!("({nv},{ne})"),
            vec![
                mean_ms(&t_sub),
                mean_ms(&t_split),
                n_sub as f64 / q,
                n_split as f64 / q,
            ],
        );
    }
    table.print();
}
