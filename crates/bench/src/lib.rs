//! # rpq-bench — experiment harness for Fan et al. (ICDE 2011), §6
//!
//! Everything needed to regenerate the paper's evaluation figures:
//!
//! * [`querygen`] — the paper's query generator with its five parameters
//!   `(|Vp|, |Ep|, |pred|, b, c)`,
//! * [`measure`] — F-measure (precision/recall against PQ ground truth),
//!   the Exp-1 effectiveness metric,
//! * [`harness`] — timing and table-printing helpers shared by the
//!   `experiments` binary and the Criterion benches,
//! * [`loadgen`] — the closed-loop load generator driving `rpq-server`
//!   over its wire protocol (the `rpq-load` binary and the server
//!   acceptance test are built on it).

pub mod harness;
pub mod loadgen;
pub mod measure;
pub mod querygen;
