//! # rpq-bench — experiment harness for Fan et al. (ICDE 2011), §6
//!
//! Everything needed to regenerate the paper's evaluation figures:
//!
//! * [`querygen`] — the paper's query generator with its five parameters
//!   `(|Vp|, |Ep|, |pred|, b, c)`,
//! * [`measure`] — F-measure (precision/recall against PQ ground truth),
//!   the Exp-1 effectiveness metric,
//! * [`harness`] — timing and table-printing helpers shared by the
//!   `experiments` binary and the Criterion benches.

pub mod harness;
pub mod measure;
pub mod querygen;
