//! F-measure against PQ ground truth (§6, Exp-1).
//!
//! "#matches is … the number of distinct node pairs (u, v) where u is a
//! query node and v is a graph node that matches u. #true_matches is the
//! number of meaningful results, i.e., matches satisfying constraints on
//! nodes and edges" — the PQ semantics itself defines the ground truth,
//! and each algorithm is scored by the `(query node, data node)` pairs it
//! reports.

use rpq_core::pq::PqResult;
use rpq_graph::NodeId;
use std::collections::HashSet;

/// A set of `(query node, data node)` match pairs.
pub type MatchPairs = HashSet<(usize, NodeId)>;

/// Extract the match pairs of a [`PqResult`].
pub fn pairs_of(res: &PqResult, query_nodes: usize) -> MatchPairs {
    (0..query_nodes)
        .flat_map(|u| res.node_matches(u).iter().map(move |&x| (u, x)))
        .collect()
}

/// Precision, recall and F-measure of `found` against `truth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scores {
    /// `|found ∩ truth| / |found|` (1.0 when nothing was found — matching
    /// the paper's observation that SubIso's "precision is always 1 if
    /// some matches can be identified").
    pub precision: f64,
    /// `|found ∩ truth| / |truth|`.
    pub recall: f64,
    /// Harmonic mean `2PR/(P+R)` (0 when both are 0).
    pub f_measure: f64,
}

/// Score `found` against `truth`.
pub fn f_measure(truth: &MatchPairs, found: &MatchPairs) -> Scores {
    let hit = found.intersection(truth).count() as f64;
    let precision = if found.is_empty() {
        1.0
    } else {
        hit / found.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        hit / truth.len() as f64
    };
    let f = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Scores {
        precision,
        recall,
        f_measure: f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(v: &[(usize, u32)]) -> MatchPairs {
        v.iter().map(|&(u, x)| (u, NodeId(x))).collect()
    }

    #[test]
    fn perfect_match() {
        let t = pairs(&[(0, 1), (1, 2)]);
        let s = f_measure(&t, &t);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f_measure, 1.0);
    }

    #[test]
    fn overreporting_costs_precision() {
        let t = pairs(&[(0, 1)]);
        let found = pairs(&[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = f_measure(&t, &found);
        assert_eq!(s.recall, 1.0);
        assert!((s.precision - 0.25).abs() < 1e-12);
        assert!((s.f_measure - 0.4).abs() < 1e-12);
    }

    #[test]
    fn underreporting_costs_recall() {
        let t = pairs(&[(0, 1), (0, 2), (1, 3), (1, 4)]);
        let found = pairs(&[(0, 1)]);
        let s = f_measure(&t, &found);
        assert_eq!(s.precision, 1.0);
        assert!((s.recall - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_found_has_unit_precision_zero_recall() {
        let t = pairs(&[(0, 1)]);
        let s = f_measure(&t, &pairs(&[]));
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f_measure, 0.0);
    }

    #[test]
    fn disjoint_sets_score_zero() {
        let t = pairs(&[(0, 1)]);
        let s = f_measure(&t, &pairs(&[(0, 2)]));
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f_measure, 0.0);
    }
}
