//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `len`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        assert!(!self.len.is_empty(), "empty length range");
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + (rng.next_u64() % span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` values with length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
