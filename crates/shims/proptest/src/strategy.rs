//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use. Generation is direct (no shrink trees): a strategy is just a
//! deterministic function of the per-case RNG stream.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `f` maps a strategy for smaller values to a
    /// strategy for larger ones; recursion is capped at `depth` levels.
    /// (`_desired_size` / `_expected_branch_size` are accepted for API
    /// compatibility; this shim bounds size by depth alone.)
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut cur = BoxedStrategy::new(self);
        for _ in 0..depth {
            // keep the base strategy in the mix so generated values vary in
            // depth, not only in breadth
            let next = OneOf::new(vec![(1, cur.clone()), (3, BoxedStrategy::new(f(cur)))]);
            cur = BoxedStrategy::new(next);
        }
        cur
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// A cloneable, type-erased strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> BoxedStrategy<T> {
    /// Erase `s`.
    pub fn new(s: impl Strategy<Value = T> + 'static) -> Self {
        BoxedStrategy(Rc::new(s))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice among strategies (the expansion of [`prop_oneof!`](crate::prop_oneof)).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() as u32 % self.total;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
