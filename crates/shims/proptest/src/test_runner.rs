//! Per-test configuration and the deterministic case RNG.

/// Subset of `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the no-shrink shim's CI
        // runs fast while still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG (SplitMix64 seeded from the test's module
/// path and the case index, so every failure reproduces on re-run).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
