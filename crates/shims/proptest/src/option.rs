//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<T>` (`None` with probability 1/4, matching
/// real proptest's default weighting).
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `Some(inner)` three times out of four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
