//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the proptest API its property tests use: the [`Strategy`](strategy::Strategy)
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive`, integer-range
//! and tuple strategies, [`collection::vec`], [`option::of`],
//! [`arbitrary::any`], weighted [`prop_oneof!`], and the [`proptest!`]
//! test-harness macro with `#![proptest_config(..)]` support.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated inputs'
//!   `Debug` rendering via the standard assert message instead of a
//!   minimized counterexample;
//! * **derived determinism** — each `(test, case-index)` pair seeds a
//!   SplitMix64 stream, so failures reproduce exactly on re-run;
//! * `prop_assert!` / `prop_assert_eq!` panic immediately rather than
//!   returning `Err`.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Discard the current case when `cond` is false. Real proptest re-draws;
/// this shim simply skips the remainder of the case body via early return,
/// which keeps the macro expansion shape (a plain loop body) simple.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Weighted (or unweighted) choice among strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::BoxedStrategy::new($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::BoxedStrategy::new($strat))),+
        ])
    };
}

/// The proptest test-harness macro: expands each `fn name(pat in strategy)`
/// item into a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}
