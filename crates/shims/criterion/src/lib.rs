//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical engine it
//! reports min / mean / max over `sample_size` timed samples, each sample
//! auto-scaled to run for roughly a millisecond.
//!
//! `--test` (what `cargo bench -- --test` passes) runs every benchmark
//! body exactly once and reports nothing, so CI can smoke-test benches
//! without paying measurement time. All other flags cargo forwards (e.g.
//! `--bench`, filter strings) are accepted and ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Apply command-line arguments (`--test` is the only one honored).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a single closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one(self.test_mode, name, sample_size, &mut f);
        self
    }

    /// Trailing no-op mirroring criterion's report finalization.
    pub fn final_summary(&self) {}
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark `f` under `name` within this group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(self.criterion.test_mode, &full, n, &mut f);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(self.criterion.test_mode, &full, n, &mut |b| f(b, input));
        self
    }

    /// End the group (report separator).
    pub fn finish(self) {
        if !self.criterion.test_mode {
            println!();
        }
    }
}

/// A benchmark identifier: function name plus a parameter rendering.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Parameter-only id (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured body.
pub struct Bencher {
    mode: BenchMode,
    samples: Vec<Duration>,
}

enum BenchMode {
    /// `--test`: run the body once, collect nothing.
    Once,
    /// Timed run: `sample_size` samples of `iters_per_sample` iterations.
    Timed { sample_size: usize },
}

impl Bencher {
    /// Run the benchmark body (once in `--test` mode, timed otherwise).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        match self.mode {
            BenchMode::Once => {
                std::hint::black_box(body());
            }
            BenchMode::Timed { sample_size } => {
                // calibrate: scale iterations to ~1ms per sample, capped
                let t0 = Instant::now();
                std::hint::black_box(body());
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000)
                    as usize;
                self.samples.clear();
                for _ in 0..sample_size {
                    let t = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(body());
                    }
                    self.samples.push(t.elapsed() / iters as u32);
                }
            }
        }
    }
}

fn run_one(test_mode: bool, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if test_mode {
        let mut b = Bencher {
            mode: BenchMode::Once,
            samples: Vec::new(),
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }
    let mut b = Bencher {
        mode: BenchMode::Timed { sample_size },
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let min = b.samples.iter().min().expect("nonempty");
    let max = b.samples.iter().max().expect("nonempty");
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<48} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Re-export matching criterion's (deprecated) `criterion::black_box`.
pub use std::hint::black_box;

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
