//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! the subset of the criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical engine it
//! reports min / mean / max over `sample_size` timed samples, each sample
//! auto-scaled to run for roughly a millisecond.
//!
//! `--test` (what `cargo bench -- --test` passes) runs every benchmark
//! body exactly once and reports nothing, so CI can smoke-test benches
//! without paying measurement time. All other flags cargo forwards (e.g.
//! `--bench`, filter strings) are accepted and ignored.
//!
//! ## Machine-readable results
//!
//! When the environment variable `BENCH_JSON_DIR` is set,
//! [`Criterion::final_summary`] writes `BENCH_<target>.json` into that
//! directory: one record per benchmark with its **median** sample in
//! nanoseconds, plus whatever context the bench registered through
//! [`report_context`] (graph sizes, worker counts). In `--test` mode the
//! single smoke iteration is timed and recorded, so CI gets a coarse
//! perf trajectory for free on every run; full `cargo bench` runs emit
//! real medians. The report's `"mode"` field says which regime produced
//! it (`"smoke"` vs `"timed"`), so consumers never compare the two. The file is valid JSON, hand-rolled — the workspace is
//! offline, so no serde.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Collected `(benchmark name, median ns)` records of this process.
static RECORDS: Mutex<Vec<(String, u128)>> = Mutex::new(Vec::new());
/// Whether this process ran in `--test` smoke mode (single coarse
/// iteration per benchmark) — stamped into the JSON so consumers never
/// mix smoke samples with real medians.
static SMOKE_MODE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
/// Context key/values registered by the bench (e.g. graph size).
static CONTEXT: Mutex<BTreeMap<String, String>> = Mutex::new(BTreeMap::new());

/// Attach a context key/value to this bench target's JSON report (e.g.
/// `report_context("graph_nodes", 50_000)`). No-op for the console
/// output; last write per key wins.
pub fn report_context(key: &str, value: impl Display) {
    CONTEXT
        .lock()
        .expect("context lock")
        .insert(key.to_owned(), value.to_string());
}

fn record(name: &str, median: Duration) {
    RECORDS
        .lock()
        .expect("records lock")
        .push((name.to_owned(), median.as_nanos()));
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The bench target name: executable file stem minus cargo's trailing
/// `-<hash>` disambiguator.
fn target_name() -> String {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_owned();
    match stem.rsplit_once('-') {
        Some((base, hash))
            if !base.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            base.to_owned()
        }
        _ => stem,
    }
}

fn write_json_report() {
    let Ok(dir) = std::env::var("BENCH_JSON_DIR") else {
        return;
    };
    let records = RECORDS.lock().expect("records lock");
    if records.is_empty() {
        return;
    }
    let target = target_name();
    let mode = if SMOKE_MODE.load(std::sync::atomic::Ordering::Relaxed) {
        "smoke" // one coarse un-calibrated iteration per benchmark
    } else {
        "timed" // real medians over `sample_size` samples
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"target\": \"{}\",\n", json_escape(&target)));
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"context\": {");
    let context = CONTEXT.lock().expect("context lock");
    let ctx: Vec<String> = context
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
        .collect();
    out.push_str(&ctx.join(", "));
    out.push_str("},\n");
    out.push_str("  \"benches\": [\n");
    let rows: Vec<String> = records
        .iter()
        .map(|(name, ns)| {
            format!(
                "    {{\"name\": \"{}\", \"median_ns\": {}}}",
                json_escape(name),
                ns
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = std::path::Path::new(&dir).join(format!("BENCH_{target}.json"));
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Top-level harness handle.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Apply command-line arguments (`--test` is the only one honored).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a single closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one(self.test_mode, name, sample_size, &mut f);
        self
    }

    /// Report finalization: writes the `BENCH_<target>.json` record file
    /// when `BENCH_JSON_DIR` is set (no-op otherwise, mirroring
    /// criterion).
    pub fn final_summary(&self) {
        write_json_report();
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark `f` under `name` within this group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(self.criterion.test_mode, &full, n, &mut f);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(self.criterion.test_mode, &full, n, &mut |b| f(b, input));
        self
    }

    /// End the group (report separator).
    pub fn finish(self) {
        if !self.criterion.test_mode {
            println!();
        }
    }
}

/// A benchmark identifier: function name plus a parameter rendering.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Parameter-only id (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured body.
pub struct Bencher {
    mode: BenchMode,
    samples: Vec<Duration>,
}

enum BenchMode {
    /// `--test`: run the body once, collect nothing.
    Once,
    /// Timed run: `sample_size` samples of `iters_per_sample` iterations.
    Timed { sample_size: usize },
}

impl Bencher {
    /// Run the benchmark body (once in `--test` mode, timed otherwise).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        match self.mode {
            BenchMode::Once => {
                std::hint::black_box(body());
            }
            BenchMode::Timed { sample_size } => {
                // calibrate: scale iterations to ~1ms per sample, capped
                let t0 = Instant::now();
                std::hint::black_box(body());
                let once = t0.elapsed().max(Duration::from_nanos(1));
                let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000)
                    as usize;
                self.samples.clear();
                for _ in 0..sample_size {
                    let t = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(body());
                    }
                    self.samples.push(t.elapsed() / iters as u32);
                }
            }
        }
    }
}

fn run_one(test_mode: bool, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if test_mode {
        let mut b = Bencher {
            mode: BenchMode::Once,
            samples: Vec::new(),
        };
        let t0 = Instant::now();
        f(&mut b);
        // one coarse sample so smoke runs still leave a perf trajectory
        SMOKE_MODE.store(true, std::sync::atomic::Ordering::Relaxed);
        record(name, t0.elapsed());
        println!("test {name} ... ok");
        return;
    }
    let mut b = Bencher {
        mode: BenchMode::Timed { sample_size },
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_unstable();
    record(name, sorted[sorted.len() / 2]);
    let min = b.samples.iter().min().expect("nonempty");
    let max = b.samples.iter().max().expect("nonempty");
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<48} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if ns >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Re-export matching criterion's (deprecated) `criterion::black_box`.
pub use std::hint::black_box;

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}
