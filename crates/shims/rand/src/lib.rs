//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the *small* subset of the `rand 0.8` API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), integer ranges via
//! [`Rng::gen_range`], Bernoulli draws via [`Rng::gen_bool`] and uniform
//! `f64`s via [`Rng::gen`]. Statistical quality targets "good enough for
//! synthetic datasets and randomized tests", not cryptography: the core is
//! SplitMix64, which passes BigCrush and has a full 2^64 period.
//!
//! Streams produced here do **not** match crates.io `rand` bit-for-bit;
//! nothing in this workspace depends on the exact stream, only on
//! determinism per seed.

/// Low-level entropy source: anything that can emit uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing generator methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample(self) < p
    }

    /// Draw a value of type `T` (only the types the workspace uses).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0..1000u64)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0..1000u64)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..16).map(|_| c.gen_range(0..1000u64)).collect();
        assert_ne!(va, vc, "different seeds should diverge");
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = r.gen_range(3..9i64);
            assert!((3..9).contains(&x));
            let y = r.gen_range(1..=5usize);
            assert!((1..=5).contains(&y));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 gave {heads}/10000");
    }
}
