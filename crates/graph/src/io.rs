//! Plain-text serialization of data graphs.
//!
//! A line-oriented format, stable across versions of this library, so
//! graphs can be shipped next to the binary and loaded by the CLI:
//!
//! ```text
//! # rpq graph v1
//! color fa
//! color fn
//! node B1 job="doctor" dsp="cloning" age=41
//! node C3 job="biologist"
//! edge C3 B1 fn
//! ```
//!
//! * `color NAME` declares an edge color (order defines the alphabet),
//! * `node LABEL [attr=value]…` declares a node; integer values are bare,
//!   string values are double-quoted (with `\"` and `\\` escapes),
//! * `edge FROM TO COLOR` declares an edge by node labels,
//! * `#` starts a comment; blank lines are ignored.
//!
//! Node labels must be unique and contain no whitespace.

use crate::attr::AttrValue;
use crate::builder::GraphBuilder;
use crate::graph::Graph;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Why a graph file failed to parse.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem at the given 1-based line.
    Parse(usize, String),
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Parse(l, m) => write!(f, "line {l}: {m}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Write `g` in the text format.
pub fn write_graph(g: &Graph, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "# rpq graph v1")?;
    for c in g.alphabet().colors() {
        writeln!(w, "color {}", g.alphabet().name(c))?;
    }
    for v in g.nodes() {
        write!(w, "node {}", g.label(v))?;
        for (id, val) in g.attrs(v).iter() {
            match val {
                AttrValue::Int(i) => write!(w, " {}={i}", g.schema().name(id))?,
                AttrValue::Str(s) => write!(w, " {}={}", g.schema().name(id), quote(s))?,
            }
        }
        writeln!(w)?;
    }
    for (x, y, c) in g.edges() {
        writeln!(
            w,
            "edge {} {} {}",
            g.label(x),
            g.label(y),
            g.alphabet().name(c)
        )?;
    }
    Ok(())
}

/// Serialize to a `String` (convenience over [`write_graph`]).
pub fn graph_to_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_graph(g, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII/UTF-8")
}

/// Tokenize one node line's attribute section, honoring quoted values.
fn split_attrs(rest: &str, line: usize) -> Result<Vec<(String, String)>, GraphIoError> {
    let mut pairs = Vec::new();
    let mut chars = rest.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        let mut saw_eq = false;
        for c in chars.by_ref() {
            if c == '=' {
                saw_eq = true;
                break;
            }
            if c.is_whitespace() {
                break;
            }
            key.push(c);
        }
        if !saw_eq {
            return Err(GraphIoError::Parse(
                line,
                format!("attribute {key:?} missing '='"),
            ));
        }
        if key.is_empty() {
            return Err(GraphIoError::Parse(line, "empty attribute name".into()));
        }
        let mut value = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            value.push('"');
            let mut escaped = false;
            loop {
                match chars.next() {
                    None => return Err(GraphIoError::Parse(line, "unterminated string".into())),
                    Some('\\') if !escaped => escaped = true,
                    Some(c) => {
                        if c == '"' && !escaped {
                            value.push('"');
                            break;
                        }
                        value.push(c);
                        escaped = false;
                    }
                }
            }
        } else {
            while matches!(chars.peek(), Some(c) if !c.is_whitespace()) {
                value.push(chars.next().expect("peeked"));
            }
        }
        pairs.push((key, value));
    }
    Ok(pairs)
}

/// Read a graph in the text format.
pub fn read_graph(r: &mut impl BufRead) -> Result<Graph, GraphIoError> {
    let mut b = GraphBuilder::new();
    let mut node_ids: HashMap<String, crate::graph::NodeId> = HashMap::new();

    for (lineno, line) in r.lines().enumerate() {
        let line_no = lineno + 1;
        let line = line?;
        let stmt = line.split('#').next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(name) = stmt.strip_prefix("color ") {
            b.color(name.trim());
        } else if let Some(rest) = stmt.strip_prefix("node ") {
            let rest = rest.trim();
            let (label, attrs_src) = match rest.split_once(char::is_whitespace) {
                Some((l, a)) => (l, a),
                None => (rest, ""),
            };
            if node_ids.contains_key(label) {
                return Err(GraphIoError::Parse(
                    line_no,
                    format!("duplicate node {label:?}"),
                ));
            }
            let mut pairs = Vec::new();
            for (key, raw) in split_attrs(attrs_src, line_no)? {
                let attr = b.attr(&key);
                let value = if let Some(stripped) = raw.strip_prefix('"') {
                    let inner = stripped.strip_suffix('"').ok_or_else(|| {
                        GraphIoError::Parse(line_no, format!("bad string value {raw:?}"))
                    })?;
                    AttrValue::Str(inner.to_owned())
                } else {
                    raw.parse::<i64>().map(AttrValue::Int).map_err(|_| {
                        GraphIoError::Parse(line_no, format!("bad integer value {raw:?}"))
                    })?
                };
                pairs.push((attr, value));
            }
            let id = b.add_node(label, pairs);
            node_ids.insert(label.to_owned(), id);
        } else if let Some(rest) = stmt.strip_prefix("edge ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(GraphIoError::Parse(
                    line_no,
                    format!("edge needs 'FROM TO COLOR', got {rest:?}"),
                ));
            }
            let &from = node_ids.get(parts[0]).ok_or_else(|| {
                GraphIoError::Parse(line_no, format!("unknown node {:?}", parts[0]))
            })?;
            let &to = node_ids.get(parts[1]).ok_or_else(|| {
                GraphIoError::Parse(line_no, format!("unknown node {:?}", parts[1]))
            })?;
            b.add_edge_named(from, to, parts[2]);
        } else {
            return Err(GraphIoError::Parse(
                line_no,
                format!("unrecognized line {stmt:?}"),
            ));
        }
    }
    Ok(b.build())
}

/// Parse from a string (convenience over [`read_graph`]).
pub fn graph_from_str(s: &str) -> Result<Graph, GraphIoError> {
    read_graph(&mut s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{essembly, synthetic};

    fn assert_same_graph(a: &Graph, b: &Graph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.nodes() {
            let w = b.node_by_label(a.label(v)).expect("label preserved");
            let attrs_a: Vec<_> = a
                .attrs(v)
                .iter()
                .map(|(id, val)| (a.schema().name(id).to_owned(), val.clone()))
                .collect();
            let attrs_b: Vec<_> = b
                .attrs(w)
                .iter()
                .map(|(id, val)| (b.schema().name(id).to_owned(), val.clone()))
                .collect();
            assert_eq!(attrs_a, attrs_b, "attrs of {}", a.label(v));
        }
        let mut ea: Vec<_> = a
            .edges()
            .map(|(x, y, c)| {
                (
                    a.label(x).to_owned(),
                    a.label(y).to_owned(),
                    a.alphabet().name(c).to_owned(),
                )
            })
            .collect();
        let mut eb: Vec<_> = b
            .edges()
            .map(|(x, y, c)| {
                (
                    b.label(x).to_owned(),
                    b.label(y).to_owned(),
                    b.alphabet().name(c).to_owned(),
                )
            })
            .collect();
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb);
    }

    #[test]
    fn roundtrip_essembly() {
        let g = essembly();
        let text = graph_to_string(&g);
        let back = graph_from_str(&text).unwrap();
        assert_same_graph(&g, &back);
    }

    #[test]
    fn roundtrip_synthetic() {
        let g = synthetic(60, 200, 3, 4, 9);
        let back = graph_from_str(&graph_to_string(&g)).unwrap();
        assert_same_graph(&g, &back);
    }

    #[test]
    fn quoted_strings_with_escapes() {
        let text = r#"
            color c
            node a name="he said \"hi\" \\ bye" n=3
            node b
            edge a b c
        "#;
        let g = graph_from_str(text).unwrap();
        let name = g.schema().get("name").unwrap();
        let a = g.node_by_label("a").unwrap();
        assert_eq!(
            g.attrs(a).get(name),
            Some(&AttrValue::Str("he said \"hi\" \\ bye".into()))
        );
        // and it round-trips
        let back = graph_from_str(&graph_to_string(&g)).unwrap();
        assert_same_graph(&g, &back);
    }

    #[test]
    fn parse_errors() {
        let err = |t: &str| graph_from_str(t).unwrap_err().to_string();
        assert!(err("bogus line").contains("line 1"));
        assert!(err("node a\nnode a").contains("duplicate"));
        assert!(err("node a\nedge a z c").contains("unknown node"));
        assert!(err("edge a").contains("FROM TO COLOR"));
        assert!(err("node a x=\"unterminated").contains("unterminated"));
        assert!(err("node a x=notanint").contains("bad integer"));
        assert!(err("node a x").contains("missing '='"));
    }

    #[test]
    fn comments_and_blanks() {
        let g = graph_from_str("# header\n\ncolor c # trailing\nnode a\n").unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.alphabet().len(), 1);
    }
}
