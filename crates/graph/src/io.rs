//! Plain-text serialization of data graphs.
//!
//! A line-oriented format, stable across versions of this library, so
//! graphs can be shipped next to the binary and loaded by the CLI:
//!
//! ```text
//! # rpq graph v1
//! color fa
//! color fn
//! node B1 job="doctor" dsp="cloning" age=41
//! node C3 job="biologist"
//! edge C3 B1 fn
//! ```
//!
//! * `color NAME` declares an edge color (order defines the alphabet),
//! * `node LABEL [attr=value]…` declares a node; integer values are bare,
//!   string values are double-quoted (with `\"` and `\\` escapes),
//! * `edge FROM TO COLOR` declares an edge by node labels,
//! * `#` starts a comment; blank lines are ignored.
//!
//! Node labels must be unique and contain no whitespace.

use crate::attr::AttrValue;
use crate::builder::GraphBuilder;
use crate::graph::Graph;
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Why a graph file failed to parse.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem at the given 1-based line.
    Parse(usize, String),
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Parse(l, m) => write!(f, "line {l}: {m}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Write `g` in the text format.
pub fn write_graph(g: &Graph, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "# rpq graph v1")?;
    for c in g.alphabet().colors() {
        writeln!(w, "color {}", g.alphabet().name(c))?;
    }
    for v in g.nodes() {
        write!(w, "node {}", g.label(v))?;
        for (id, val) in g.attrs(v).iter() {
            match val {
                AttrValue::Int(i) => write!(w, " {}={i}", g.schema().name(id))?,
                AttrValue::Str(s) => write!(w, " {}={}", g.schema().name(id), quote(s))?,
            }
        }
        writeln!(w)?;
    }
    for (x, y, c) in g.edges() {
        writeln!(
            w,
            "edge {} {} {}",
            g.label(x),
            g.label(y),
            g.alphabet().name(c)
        )?;
    }
    Ok(())
}

/// Serialize to a `String` (convenience over [`write_graph`]).
pub fn graph_to_string(g: &Graph) -> String {
    let mut buf = Vec::new();
    write_graph(g, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII/UTF-8")
}

/// Tokenize one node line's attribute section, honoring quoted values.
fn split_attrs(rest: &str, line: usize) -> Result<Vec<(String, String)>, GraphIoError> {
    let mut pairs = Vec::new();
    let mut chars = rest.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let mut key = String::new();
        let mut saw_eq = false;
        for c in chars.by_ref() {
            if c == '=' {
                saw_eq = true;
                break;
            }
            if c.is_whitespace() {
                break;
            }
            key.push(c);
        }
        if !saw_eq {
            return Err(GraphIoError::Parse(
                line,
                format!("attribute {key:?} missing '='"),
            ));
        }
        if key.is_empty() {
            return Err(GraphIoError::Parse(line, "empty attribute name".into()));
        }
        let mut value = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            value.push('"');
            let mut escaped = false;
            loop {
                match chars.next() {
                    None => return Err(GraphIoError::Parse(line, "unterminated string".into())),
                    Some('\\') if !escaped => escaped = true,
                    Some(c) => {
                        if c == '"' && !escaped {
                            value.push('"');
                            break;
                        }
                        value.push(c);
                        escaped = false;
                    }
                }
            }
        } else {
            while matches!(chars.peek(), Some(c) if !c.is_whitespace()) {
                value.push(chars.next().expect("peeked"));
            }
        }
        pairs.push((key, value));
    }
    Ok(pairs)
}

/// Read a graph in the text format.
pub fn read_graph(r: &mut impl BufRead) -> Result<Graph, GraphIoError> {
    let mut b = GraphBuilder::new();
    let mut node_ids: HashMap<String, crate::graph::NodeId> = HashMap::new();

    for (lineno, line) in r.lines().enumerate() {
        let line_no = lineno + 1;
        let line = line?;
        let stmt = line.split('#').next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(name) = stmt.strip_prefix("color ") {
            b.color(name.trim());
        } else if let Some(rest) = stmt.strip_prefix("node ") {
            let rest = rest.trim();
            let (label, attrs_src) = match rest.split_once(char::is_whitespace) {
                Some((l, a)) => (l, a),
                None => (rest, ""),
            };
            if node_ids.contains_key(label) {
                return Err(GraphIoError::Parse(
                    line_no,
                    format!("duplicate node {label:?}"),
                ));
            }
            let mut pairs = Vec::new();
            for (key, raw) in split_attrs(attrs_src, line_no)? {
                let attr = b.attr(&key);
                let value = if let Some(stripped) = raw.strip_prefix('"') {
                    let inner = stripped.strip_suffix('"').ok_or_else(|| {
                        GraphIoError::Parse(line_no, format!("bad string value {raw:?}"))
                    })?;
                    AttrValue::Str(inner.to_owned())
                } else {
                    raw.parse::<i64>().map(AttrValue::Int).map_err(|_| {
                        GraphIoError::Parse(line_no, format!("bad integer value {raw:?}"))
                    })?
                };
                pairs.push((attr, value));
            }
            let id = b.add_node(label, pairs);
            node_ids.insert(label.to_owned(), id);
        } else if let Some(rest) = stmt.strip_prefix("edge ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(GraphIoError::Parse(
                    line_no,
                    format!("edge needs 'FROM TO COLOR', got {rest:?}"),
                ));
            }
            let &from = node_ids.get(parts[0]).ok_or_else(|| {
                GraphIoError::Parse(line_no, format!("unknown node {:?}", parts[0]))
            })?;
            let &to = node_ids.get(parts[1]).ok_or_else(|| {
                GraphIoError::Parse(line_no, format!("unknown node {:?}", parts[1]))
            })?;
            b.add_edge_named(from, to, parts[2]);
        } else {
            return Err(GraphIoError::Parse(
                line_no,
                format!("unrecognized line {stmt:?}"),
            ));
        }
    }
    Ok(b.build())
}

/// Parse from a string (convenience over [`read_graph`]).
pub fn graph_from_str(s: &str) -> Result<Graph, GraphIoError> {
    read_graph(&mut s.as_bytes())
}

/// Edge color assumed by [`read_edge_list`] for two-token lines.
pub const DEFAULT_EDGE_COLOR: &str = "e";

/// Read a plain-text **edge list** (the format SNAP and most public graph
/// datasets ship): one `FROM TO [COLOR]` line per edge, whitespace
/// separated. Nodes are created on first appearance, keeping the token as
/// their label (attribute tuples are empty); a missing third token uses
/// color [`DEFAULT_EDGE_COLOR`]. Self-loops are kept; exact duplicate
/// edges are deduplicated by the builder.
///
/// Files found in the wild are tolerated as-is: lines starting with `#`
/// or `%` and blank lines are ignored, CRLF (and stray `\r`) line endings
/// are accepted, and a UTF-8 byte-order mark on the first line is
/// stripped. Anything else malformed — a one-token line, trailing tokens,
/// a color-alphabet overflow — is reported as a parse error carrying the
/// **1-based line number**, never a panic or a generic failure.
///
/// Note the format carries no isolated nodes and no attributes — use the
/// richer [`read_graph`] format when either matters.
pub fn read_edge_list(r: &mut impl BufRead) -> Result<Graph, GraphIoError> {
    let mut b = GraphBuilder::new();
    let mut node_ids: HashMap<String, crate::graph::NodeId> = HashMap::new();
    let mut colors: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (lineno, line) in r.lines().enumerate() {
        let line_no = lineno + 1;
        let line = line?;
        // `BufRead::lines` strips `\n` and `\r\n`; a lone trailing `\r`
        // (mixed line endings) and the BOM a Windows editor may prepend
        // still reach us
        let line = if line_no == 1 {
            line.trim_start_matches('\u{feff}')
        } else {
            line.as_str()
        };
        let stmt = line.trim();
        if stmt.is_empty() || stmt.starts_with('#') || stmt.starts_with('%') {
            continue;
        }
        let mut parts = stmt.split_whitespace();
        let (from, to) = match (parts.next(), parts.next()) {
            (Some(f), Some(t)) => (f, t),
            _ => {
                return Err(GraphIoError::Parse(
                    line_no,
                    format!("edge needs 'FROM TO [COLOR]', got {stmt:?}"),
                ))
            }
        };
        let color = parts.next().unwrap_or(DEFAULT_EDGE_COLOR);
        if parts.next().is_some() {
            return Err(GraphIoError::Parse(
                line_no,
                format!("trailing tokens after 'FROM TO COLOR' in {stmt:?}"),
            ));
        }
        // the alphabet stores colors as one byte with 255 reserved for the
        // wildcard; reject oversized inputs as a parse error instead of
        // letting the interner's assert abort the process
        if !colors.contains(color) {
            if colors.len() >= usize::from(crate::color::WILDCARD.0) {
                return Err(GraphIoError::Parse(
                    line_no,
                    format!(
                        "too many distinct colors (max {}), starting with {color:?}",
                        crate::color::WILDCARD.0
                    ),
                ));
            }
            colors.insert(color.to_owned());
        }
        let mut node = |label: &str, b: &mut GraphBuilder| {
            *node_ids
                .entry(label.to_owned())
                .or_insert_with(|| b.add_node(label, []))
        };
        let f = node(from, &mut b);
        let t = node(to, &mut b);
        b.add_edge_named(f, t, color);
    }
    Ok(b.build())
}

/// Write `g` as an edge list (`FROM TO COLOR` per line, node labels as
/// tokens). The inverse of [`read_edge_list`] up to isolated nodes and
/// attributes, which the format cannot carry.
pub fn write_edge_list(g: &Graph, w: &mut impl Write) -> io::Result<()> {
    for (x, y, c) in g.edges() {
        writeln!(w, "{} {} {}", g.label(x), g.label(y), g.alphabet().name(c))?;
    }
    Ok(())
}

impl Graph {
    /// Parse a SNAP-style edge list from a string — see [`read_edge_list`].
    ///
    /// ```
    /// use rpq_graph::Graph;
    /// let g = Graph::from_edge_list("# a tiny triangle\n1 2 knows\n2 3 knows\n3 1\n").unwrap();
    /// assert_eq!(g.node_count(), 3);
    /// assert_eq!(g.edge_count(), 3);
    /// assert_eq!(g.alphabet().len(), 2); // "knows" and the default "e"
    /// ```
    pub fn from_edge_list(s: &str) -> Result<Graph, GraphIoError> {
        read_edge_list(&mut s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{essembly, synthetic};

    fn assert_same_graph(a: &Graph, b: &Graph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.nodes() {
            let w = b.node_by_label(a.label(v)).expect("label preserved");
            let attrs_a: Vec<_> = a
                .attrs(v)
                .iter()
                .map(|(id, val)| (a.schema().name(id).to_owned(), val.clone()))
                .collect();
            let attrs_b: Vec<_> = b
                .attrs(w)
                .iter()
                .map(|(id, val)| (b.schema().name(id).to_owned(), val.clone()))
                .collect();
            assert_eq!(attrs_a, attrs_b, "attrs of {}", a.label(v));
        }
        let mut ea: Vec<_> = a
            .edges()
            .map(|(x, y, c)| {
                (
                    a.label(x).to_owned(),
                    a.label(y).to_owned(),
                    a.alphabet().name(c).to_owned(),
                )
            })
            .collect();
        let mut eb: Vec<_> = b
            .edges()
            .map(|(x, y, c)| {
                (
                    b.label(x).to_owned(),
                    b.label(y).to_owned(),
                    b.alphabet().name(c).to_owned(),
                )
            })
            .collect();
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb);
    }

    #[test]
    fn roundtrip_essembly() {
        let g = essembly();
        let text = graph_to_string(&g);
        let back = graph_from_str(&text).unwrap();
        assert_same_graph(&g, &back);
    }

    #[test]
    fn roundtrip_synthetic() {
        let g = synthetic(60, 200, 3, 4, 9);
        let back = graph_from_str(&graph_to_string(&g)).unwrap();
        assert_same_graph(&g, &back);
    }

    #[test]
    fn quoted_strings_with_escapes() {
        let text = r#"
            color c
            node a name="he said \"hi\" \\ bye" n=3
            node b
            edge a b c
        "#;
        let g = graph_from_str(text).unwrap();
        let name = g.schema().get("name").unwrap();
        let a = g.node_by_label("a").unwrap();
        assert_eq!(
            g.attrs(a).get(name),
            Some(&AttrValue::Str("he said \"hi\" \\ bye".into()))
        );
        // and it round-trips
        let back = graph_from_str(&graph_to_string(&g)).unwrap();
        assert_same_graph(&g, &back);
    }

    #[test]
    fn parse_errors() {
        let err = |t: &str| graph_from_str(t).unwrap_err().to_string();
        assert!(err("bogus line").contains("line 1"));
        assert!(err("node a\nnode a").contains("duplicate"));
        assert!(err("node a\nedge a z c").contains("unknown node"));
        assert!(err("edge a").contains("FROM TO COLOR"));
        assert!(err("node a x=\"unterminated").contains("unterminated"));
        assert!(err("node a x=notanint").contains("bad integer"));
        assert!(err("node a x").contains("missing '='"));
    }

    #[test]
    fn comments_and_blanks() {
        let g = graph_from_str("# header\n\ncolor c # trailing\nnode a\n").unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.alphabet().len(), 1);
    }

    #[test]
    fn edge_list_basics() {
        let g = Graph::from_edge_list(
            "# SNAP-ish header\n% another comment style\n0 1 a\n1 2 b\n2 0\n2 2 a\n2 0\n",
        )
        .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4, "exact duplicate dropped, self-loop kept");
        let n0 = g.node_by_label("0").unwrap();
        let n2 = g.node_by_label("2").unwrap();
        let a = g.alphabet().get("a").unwrap();
        let e = g.alphabet().get(DEFAULT_EDGE_COLOR).unwrap();
        assert!(g.has_edge(n2, n0, e));
        assert!(g.has_edge(n2, n2, a));
    }

    #[test]
    fn edge_list_tolerates_comments_blanks_crlf_and_bom() {
        // CRLF endings, a BOM, '#' and '%' comments, blank and
        // whitespace-only lines, and a lone '\r' on a mixed-endings line
        let text = "\u{feff}# exported from a Windows tool\r\n\
                    \r\n\
                    % second comment style\r\n\
                    a b knows\r\n\
                    b c\r\
                    \n   \t  \r\n\
                    c a knows\r\n";
        let g = Graph::from_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let a = g.node_by_label("a").expect("BOM stripped from first label");
        let b = g.node_by_label("b").unwrap();
        let knows = g.alphabet().get("knows").unwrap();
        assert!(g.has_edge(a, b, knows));
        // the bare edge got the default color, not a '\r'-polluted one
        assert!(g.alphabet().get(DEFAULT_EDGE_COLOR).is_some());
        assert_eq!(g.alphabet().len(), 2);
    }

    #[test]
    fn edge_list_errors_carry_line_numbers() {
        // the malformed line is pinpointed even after comments and blanks
        let err = Graph::from_edge_list("# header\n\n1 2 c\nonly\n3 4 c\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("FROM TO"), "{msg}");
        let err = Graph::from_edge_list("1 2 c\r\n1 2 c d e\r\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("trailing"), "{msg}");
    }

    #[test]
    fn edge_list_errors() {
        let err = |t: &str| Graph::from_edge_list(t).unwrap_err().to_string();
        assert!(err("onlyone").contains("FROM TO"));
        assert!(err("a b c d").contains("trailing"));
        // color-alphabet overflow is a parse error, not a process abort
        let mut big = String::new();
        for i in 0..300 {
            big.push_str(&format!("a b c{i}\n"));
        }
        assert!(err(&big).contains("too many distinct colors"));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = synthetic(50, 220, 2, 4, 17);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = Graph::from_edge_list(&text).unwrap();
        // the format drops attributes and isolated nodes: compare the edge
        // multiset by (label, label, color name) and the connected node set
        let key = |g: &Graph| {
            let mut e: Vec<_> = g
                .edges()
                .map(|(x, y, c)| {
                    (
                        g.label(x).to_owned(),
                        g.label(y).to_owned(),
                        g.alphabet().name(c).to_owned(),
                    )
                })
                .collect();
            e.sort();
            e
        };
        assert_eq!(key(&g), key(&back));
        // and a second trip is lossless entirely
        let mut buf2 = Vec::new();
        write_edge_list(&back, &mut buf2).unwrap();
        let third = Graph::from_edge_list(std::str::from_utf8(&buf2).unwrap()).unwrap();
        assert_eq!(back.node_count(), third.node_count());
        assert_eq!(key(&back), key(&third));
    }
}
