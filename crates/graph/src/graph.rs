//! The data graph `G = (V, E, f_A, f_C)` in CSR form.
//!
//! Nodes are dense `u32` ids. Both forward (out-edge) and reverse (in-edge)
//! adjacency are stored as offset/target arrays so that BFS in either
//! direction — the bi-directional search of §4 needs both — is a linear scan.

use crate::attr::{Attrs, Schema};
use crate::color::{Alphabet, Color};

/// Identifier of a node in a [`Graph`]: a dense index in `0..graph.node_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One (neighbor, color) adjacency entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// The other endpoint (target for out-edges, source for in-edges).
    pub node: NodeId,
    /// The edge color `f_C(e)`.
    pub color: Color,
}

/// An immutable attributed, edge-colored directed graph.
///
/// Construct one with [`crate::GraphBuilder`]. Parallel edges with different
/// colors are allowed (and required: the paper's data graphs relate the same
/// pair of people through several relationship types); exact duplicate edges
/// are deduplicated at build time.
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) schema: Schema,
    pub(crate) alphabet: Alphabet,
    pub(crate) labels: Vec<String>,
    pub(crate) attrs: Vec<Attrs>,
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_adj: Vec<EdgeRef>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_adj: Vec<EdgeRef>,
}

impl Graph {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of edges `|E|` (counting parallel edges of distinct colors).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Out-edges of `v` as `(target, color)` entries.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[EdgeRef] {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        &self.out_adj[lo..hi]
    }

    /// In-edges of `v` as `(source, color)` entries.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[EdgeRef] {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        &self.in_adj[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_edges(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_edges(v).len()
    }

    /// The attribute tuple `f_A(v)`.
    #[inline]
    pub fn attrs(&self, v: NodeId) -> &Attrs {
        &self.attrs[v.index()]
    }

    /// Human-readable node label (may be empty). Labels carry no semantics;
    /// they exist for examples, tests and debug output.
    pub fn label(&self, v: NodeId) -> &str {
        &self.labels[v.index()]
    }

    /// Find the (first) node with the given label. Linear scan — intended
    /// for tests and examples only.
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| NodeId(i as u32))
    }

    /// The attribute-name schema shared with queries.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The color alphabet Σ.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Iterate over every edge as `(source, target, color)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Color)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_edges(u).iter().map(move |e| (u, e.node, e.color)))
    }

    /// True if there is an edge `u → v` of exactly color `c`.
    ///
    /// O(log deg(u)): the builder emits each node's out-adjacency sorted by
    /// `(target, color)`, so the probe is a binary search instead of a
    /// degree-linear scan (hub nodes in skewed graphs make the difference).
    pub fn has_edge(&self, u: NodeId, v: NodeId, c: Color) -> bool {
        self.out_edges(u)
            .binary_search_by_key(&(v, c), |e| (e.node, e.color))
            .is_ok()
    }

    /// True if there is an edge `u → v` whose color is admitted by the
    /// (possibly wildcard) query color `c`.
    pub fn has_edge_admitting(&self, u: NodeId, v: NodeId, c: Color) -> bool {
        self.out_edges(u)
            .iter()
            .any(|e| e.node == v && c.admits(e.color))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::color::WILDCARD;

    #[test]
    fn csr_roundtrip() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", []);
        let c = b.add_node("c", []);
        let d = b.add_node("d", []);
        let red = b.color("red");
        let blue = b.color("blue");
        b.add_edge(a, c, red);
        b.add_edge(a, d, blue);
        b.add_edge(c, d, red);
        let g = b.build();

        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert!(g.has_edge(a, c, red));
        assert!(!g.has_edge(c, a, red));
        assert!(g.has_edge_admitting(a, d, WILDCARD));
        assert!(!g.has_edge_admitting(d, a, WILDCARD));
        assert_eq!(g.edges().count(), 3);
        assert_eq!(g.node_by_label("c"), Some(c));
        assert_eq!(g.node_by_label("zzz"), None);
    }

    #[test]
    fn parallel_edges_kept_duplicates_dropped() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        let r = b.color("r");
        let s = b.color("s");
        b.add_edge(x, y, r);
        b.add_edge(x, y, s); // parallel, different color: kept
        b.add_edge(x, y, r); // exact duplicate: dropped
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(x, y, r));
        assert!(g.has_edge(x, y, s));
    }
}
