//! Edge-cut graph partitioning and the sharded storage view.
//!
//! Every index in this workspace — the dense
//! [`DistanceMatrix`](crate::DistanceMatrix), the pruned 2-hop labels of
//! `rpq-index` — is
//! built against **one** resident [`Graph`], so the whole system is capped
//! by the memory of a single index build. This module is the storage half
//! of the way past that cap:
//!
//! * [`Partition`] — an assignment of nodes to `k` shards with dense
//!   *local* ids per shard and both directions of the local↔global id map.
//!   [`Partition::edge_cut`] computes one with a seeded multi-source BFS
//!   ("bubble growing": `k` spread-out seeds grow balanced regions in
//!   round-robin) followed by a bounded label-propagation refinement that
//!   moves nodes to their neighbor-majority shard while balance allows —
//!   cheap, deterministic, and effective on graphs with community
//!   structure (the graphs one shards in practice). Any other assignment
//!   can be injected through [`Partition::from_shard_of`].
//! * [`ShardedGraph`] — the partitioned image of a graph: `k` per-shard
//!   [`Graph`]s over local ids (each carrying only intra-shard edges, with
//!   labels, attributes and the shared vocabulary preserved), the list of
//!   **cut edges** (edges crossing shards, in global ids), and the
//!   **boundary nodes** (endpoints of cut edges) that any cross-shard path
//!   must thread through. The boundary is what `rpq-index` builds its
//!   overlay distance labels over.
//!
//! The exactness contract the index layer relies on: a path either stays
//! inside one shard (then it lives in that shard's local graph verbatim)
//! or it uses at least one cut edge — in which case it decomposes into an
//! intra-shard prefix to the first cut edge's source, an alternation of
//! cut edges and intra-shard boundary-to-boundary segments, and an
//! intra-shard suffix from the last cut edge's target. Both endpoints of
//! every cut edge are boundary nodes, so the decomposition is entirely
//! visible to per-shard indices plus a boundary overlay.

use crate::builder::GraphBuilder;
use crate::color::Color;
use crate::graph::{Graph, NodeId};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// BFS order of `comm`'s members over the subgraph they induce, started
/// from the lowest-id member; members unreached within the community
/// (it need not be connected) restart the BFS in ascending order. Uses
/// `scratch` (all-[`UNASSIGNED`] on entry) as a visited mark, restoring
/// it before returning.
fn bfs_order_within(g: &Graph, comm: &[u32], scratch: &mut [u32]) -> Vec<u32> {
    const IN_COMM: u32 = u32::MAX - 1;
    for &v in comm {
        scratch[v as usize] = IN_COMM;
    }
    let mut order = Vec::with_capacity(comm.len());
    let mut queue = VecDeque::new();
    for &start in comm {
        if scratch[start as usize] != IN_COMM {
            continue;
        }
        scratch[start as usize] = UNASSIGNED;
        order.push(start);
        queue.push_back(NodeId(start));
        while let Some(u) = queue.pop_front() {
            for e in g.out_edges(u).iter().chain(g.in_edges(u)) {
                if scratch[e.node.index()] == IN_COMM {
                    scratch[e.node.index()] = UNASSIGNED;
                    order.push(e.node.0);
                    queue.push_back(e.node);
                }
            }
        }
    }
    order
}

const UNASSIGNED: u32 = u32::MAX;

/// Boundary refinement over an existing node→shard assignment, two
/// mechanisms per pass:
///
/// 1. *capped moves* — a node with a strict neighbor majority in
///    another shard moves there while the target has headroom and
///    the source keeps one node;
/// 2. *balanced swaps* — when both shards sit at the cap (the
///    common end state of the packing), moves alone cannot fix a
///    misplaced blob, but for every shard pair the nodes wanting
///    to cross in opposite directions can be exchanged
///    gain-ordered, improving the cut at exactly zero balance
///    cost. This is what repairs a capped community that
///    straddled two clusters during propagation.
///
/// Runs up to four passes or until a pass changes nothing, stopping
/// early once `max_changes` assignment changes have been made (a swap
/// counts as two). Mutates `shard_of`/`sizes` in place and returns the
/// number of changes. This is both the final polish of
/// [`Partition::edge_cut`] and the whole of [`Partition::rebalance`] —
/// incremental rebalancing is refinement re-run on the drifted graph.
fn refine_assignment(
    g: &Graph,
    shard_of: &mut [u32],
    sizes: &mut [usize],
    cap: usize,
    max_changes: usize,
) -> usize {
    let n = shard_of.len();
    let k = sizes.len();
    let mut changed = 0usize;
    let mut votes = vec![0u32; k];
    for _pass in 0..4 {
        let mut moved = 0usize;
        for v in 0..n {
            if changed >= max_changes {
                return changed;
            }
            let id = NodeId(v as u32);
            votes.iter_mut().for_each(|t| *t = 0);
            for e in g.out_edges(id).iter().chain(g.in_edges(id)) {
                if e.node != id {
                    votes[shard_of[e.node.index()] as usize] += 1;
                }
            }
            let cur = shard_of[v] as usize;
            let best = (0..k)
                .max_by_key(|&s| (votes[s], usize::from(s == cur), usize::MAX - s))
                .expect("k >= 1");
            if best != cur && votes[best] > votes[cur] && sizes[best] < cap && sizes[cur] > 1 {
                shard_of[v] = best as u32;
                sizes[cur] -= 1;
                sizes[best] += 1;
                moved += 1;
                changed += 1;
            }
        }
        // swap phase: collect would-be movers per (from, to) pair
        // against a frozen snapshot of the assignment, then exchange
        // the top-gain prefixes of opposite directions
        let mut movers: HashMap<(u32, u32), Vec<(u32, u32)>> = HashMap::new();
        for v in 0..n {
            let id = NodeId(v as u32);
            votes.iter_mut().for_each(|t| *t = 0);
            for e in g.out_edges(id).iter().chain(g.in_edges(id)) {
                if e.node != id {
                    votes[shard_of[e.node.index()] as usize] += 1;
                }
            }
            let cur = shard_of[v] as usize;
            let best = (0..k)
                .max_by_key(|&s| (votes[s], usize::from(s == cur), usize::MAX - s))
                .expect("k >= 1");
            if best != cur && votes[best] > votes[cur] {
                movers
                    .entry((cur as u32, best as u32))
                    .or_default()
                    .push((votes[best] - votes[cur], v as u32));
            }
        }
        for a in 0..k as u32 {
            for b in (a + 1)..k as u32 {
                let (Some(fwd), Some(bwd)) = (movers.get(&(a, b)), movers.get(&(b, a))) else {
                    continue;
                };
                let mut fwd = fwd.clone();
                let mut bwd = bwd.clone();
                fwd.sort_unstable_by_key(|&(gain, v)| (std::cmp::Reverse(gain), v));
                bwd.sort_unstable_by_key(|&(gain, v)| (std::cmp::Reverse(gain), v));
                let m = fwd.len().min(bwd.len());
                for i in 0..m {
                    if changed + 2 > max_changes {
                        return changed;
                    }
                    shard_of[fwd[i].1 as usize] = b;
                    shard_of[bwd[i].1 as usize] = a;
                    moved += 2;
                    changed += 2;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
    changed
}

/// An assignment of graph nodes to `k` shards, with per-shard dense local
/// ids and the maps between local and global id spaces.
#[derive(Debug, Clone)]
pub struct Partition {
    /// global node index → shard.
    shard_of: Vec<u32>,
    /// global node index → dense local id within its shard.
    local_of: Vec<u32>,
    /// shard → local id → global node.
    globals: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Partition `g` into `k` balanced shards: **label propagation**
    /// finds the graph's communities, a greedy packing bins them into
    /// `k` shards under the balance cap `⌈|V|/k⌉` (oversized communities
    /// are split along their internal BFS order, so even the split parts
    /// stay contiguous), and a bounded boundary-refinement sweep moves
    /// nodes to their neighbor-majority shard while balance allows. `k`
    /// is clamped to `1..=|V|` (every shard gets at least one node when
    /// the graph has that many). Deterministic for a given graph.
    ///
    /// On graphs with community structure the cut converges to the
    /// fraction of genuinely cross-community edges; on structureless
    /// random graphs (one giant community) the split degenerates to
    /// BFS-ordered chunks — no partitioner does better there, and the
    /// sharded index stays exact either way, only less economical.
    pub fn edge_cut(g: &Graph, k: usize) -> Partition {
        let n = g.node_count();
        let k = k.clamp(1, n.max(1));
        if n == 0 {
            return Partition::from_shard_of(Vec::new(), k);
        }
        let cap = n.div_ceil(k);

        // --- community detection: **size-constrained** in-place label
        // propagation. Each node adopts the most frequent label among its
        // (undirected) neighbors, ties to the smallest label — except
        // that a label whose community already holds `cap` nodes cannot
        // recruit. Unconstrained LPA suffers label epidemics on exactly
        // the graphs sharding is for (one early-coalesced community
        // leaks through the few cross-cluster bridges and swallows the
        // graph); capping community size at the shard size blocks the
        // epidemic and emits communities that already fit a shard.
        // In-place sweeping in node order is deterministic; the round
        // budget is sized for the slow tail of cap-constrained
        // migrations (measured ~22 rounds to full convergence on a
        // 100k-node 4-cluster graph — each round is one O(|E|) sweep,
        // and the early-exit fires as soon as a sweep changes nothing).
        let cap_lpa = cap;
        let mut label: Vec<u32> = (0..n as u32).collect();
        let mut comm_size: Vec<u32> = vec![1; n];
        let mut tally: HashMap<u32, u32> = HashMap::new();
        for _round in 0..40 {
            let mut changed = 0usize;
            for v in 0..n {
                let id = NodeId(v as u32);
                tally.clear();
                for e in g.out_edges(id).iter().chain(g.in_edges(id)) {
                    if e.node != id {
                        *tally.entry(label[e.node.index()]).or_insert(0) += 1;
                    }
                }
                let cur = label[v];
                let Some(best) = tally
                    .iter()
                    .filter(|&(&l, _)| l == cur || (comm_size[l as usize] as usize) < cap_lpa)
                    .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                    .max()
                    .map(|(_, std::cmp::Reverse(l))| l)
                else {
                    continue; // isolated node (or every neighbor full)
                };
                if best != cur {
                    label[v] = best;
                    comm_size[cur as usize] -= 1;
                    comm_size[best as usize] += 1;
                    changed += 1;
                }
            }
            if changed == 0 {
                break;
            }
        }

        // --- communities, then an agglomerative merge: LPA under a size
        // cap can leave one real cluster split across several labels
        // (two part-grown labels deadlock at the cap boundary); merging
        // the community pair with the heaviest inter-edge weight while
        // the union still fits a shard reassembles them. Pure bookkeeping
        // on the community graph — O(C²) pairs with C in the tens.
        let mut members: HashMap<u32, Vec<u32>> = HashMap::new();
        for (v, &l) in label.iter().enumerate() {
            members.entry(l).or_default().push(v as u32);
        }
        let mut communities: Vec<Vec<u32>> = members.into_values().collect();
        communities.sort_by_key(|c| (std::cmp::Reverse(c.len()), c[0]));
        {
            let mut comm_of = vec![0u32; n];
            for (ci, c) in communities.iter().enumerate() {
                for &v in c {
                    comm_of[v as usize] = ci as u32;
                }
            }
            let mut weight: HashMap<(u32, u32), u64> = HashMap::new();
            for (u, v, _) in g.edges() {
                let (a, b) = (comm_of[u.index()], comm_of[v.index()]);
                if a != b {
                    *weight.entry((a.min(b), a.max(b))).or_insert(0) += 1;
                }
            }
            while let Some((&(a, b), _)) = weight
                .iter()
                .filter(|(&(a, b), &w)| {
                    w > 0 && communities[a as usize].len() + communities[b as usize].len() <= cap
                })
                .max_by_key(|(&(a, b), &w)| (w, std::cmp::Reverse((a, b))))
            {
                // merge b into a; redirect b's community-graph edges
                let moved = std::mem::take(&mut communities[b as usize]);
                communities[a as usize].extend(moved);
                let b_edges: Vec<((u32, u32), u64)> = weight
                    .iter()
                    .filter(|(&(x, y), _)| x == b || y == b)
                    .map(|(&k, &w)| (k, w))
                    .collect();
                for (key, w) in b_edges {
                    weight.remove(&key);
                    let other = if key.0 == b { key.1 } else { key.0 };
                    if other != a {
                        *weight.entry((a.min(other), a.max(other))).or_insert(0) += w;
                    }
                }
            }
            communities.retain(|c| !c.is_empty());
            communities.sort_by_key(|c| (std::cmp::Reverse(c.len()), c[0]));
        }

        // --- greedy affinity packing under the cap (streaming-partition
        // style): each community goes to the shard it shares the most
        // edges with, damped by that shard's fill — LPA fragments big
        // communities into many pieces, and raw least-loaded packing
        // would scatter one cluster's pieces across shards; edge
        // affinity glues them back together. Whatever exceeds the chosen
        // shard's headroom spills to the next pick, chunked along the
        // community's internal BFS order so split parts stay contiguous
        // subgraphs.
        let mut shard_of = vec![UNASSIGNED; n];
        let mut sizes = vec![0usize; k];
        let mut affinity = vec![0u64; k];
        for comm in &communities {
            let ordered = bfs_order_within(g, comm, &mut shard_of);
            affinity.iter_mut().for_each(|a| *a = 0);
            for &v in &ordered {
                let id = NodeId(v);
                for e in g.out_edges(id).iter().chain(g.in_edges(id)) {
                    let s = shard_of[e.node.index()];
                    if s != UNASSIGNED {
                        affinity[s as usize] += 1;
                    }
                }
            }
            let mut rest: &[u32] = &ordered;
            while !rest.is_empty() {
                // LDG score: affinity damped by fill; a full shard is out
                let s = (0..k)
                    .filter(|&s| sizes[s] < cap)
                    .max_by_key(|&s| {
                        let headroom = (cap - sizes[s]) as u64;
                        // affinity * headroom/cap, in integer arithmetic;
                        // least-loaded breaks ties (and the zero-affinity
                        // case of the first communities)
                        (
                            affinity[s] * headroom / cap as u64,
                            headroom,
                            usize::MAX - s,
                        )
                    })
                    .expect("cap * k >= n leaves room somewhere");
                let room = cap - sizes[s];
                let take = rest.len().min(room);
                for &v in &rest[..take] {
                    shard_of[v as usize] = s as u32;
                }
                sizes[s] += take;
                rest = &rest[take..];
            }
        }

        // --- boundary refinement (shared with [`Partition::rebalance`])
        refine_assignment(g, &mut shard_of, &mut sizes, cap, usize::MAX);

        // --- no shard stays empty: since k ≤ |V|, every empty shard can
        // take one node from the currently largest shard (the packing
        // leaves shards empty when fewer than k communities existed and
        // none needed to spill — e.g. a 5-node path at k = 4)
        for s in 0..k {
            if sizes[s] > 0 {
                continue;
            }
            let donor = (0..k)
                .max_by_key(|&d| (sizes[d], usize::MAX - d))
                .expect("k >= 1");
            debug_assert!(sizes[donor] > 1, "k <= |V| guarantees a spare node");
            let v = shard_of
                .iter()
                .position(|&x| x == donor as u32)
                .expect("donor is nonempty");
            shard_of[v] = s as u32;
            sizes[donor] -= 1;
            sizes[s] += 1;
        }

        Partition::from_shard_of(shard_of, k)
    }

    /// Build a partition from an explicit node→shard assignment (every
    /// entry must be `< k`). Local ids are dense per shard, in ascending
    /// global order. This is the injection point for external partitioners
    /// — and for the degenerate cases the test suite pins (e.g. a
    /// partition cutting every edge).
    pub fn from_shard_of(shard_of: Vec<u32>, k: usize) -> Partition {
        let k = k.max(1);
        let mut globals: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut local_of = vec![0u32; shard_of.len()];
        for (v, &s) in shard_of.iter().enumerate() {
            assert!((s as usize) < k, "node {v} assigned to shard {s} >= k={k}");
            local_of[v] = globals[s as usize].len() as u32;
            globals[s as usize].push(NodeId(v as u32));
        }
        Partition {
            shard_of,
            local_of,
            globals,
        }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.globals.len()
    }

    /// Number of nodes partitioned.
    pub fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard holding global node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.shard_of[v.index()] as usize
    }

    /// The local id of global node `v` within its shard.
    #[inline]
    pub fn local_of(&self, v: NodeId) -> NodeId {
        NodeId(self.local_of[v.index()])
    }

    /// Both halves of the global→local map at once.
    #[inline]
    pub fn to_local(&self, v: NodeId) -> (usize, NodeId) {
        (self.shard_of(v), self.local_of(v))
    }

    /// The global node behind local id `local` of shard `s`.
    #[inline]
    pub fn to_global(&self, s: usize, local: NodeId) -> NodeId {
        self.globals[s][local.index()]
    }

    /// All global nodes of shard `s`, in local-id order.
    pub fn shard_nodes(&self, s: usize) -> &[NodeId] {
        &self.globals[s]
    }

    /// Number of nodes in shard `s`.
    pub fn shard_size(&self, s: usize) -> usize {
        self.globals[s].len()
    }

    /// Propose an **incremental rebalancing** of this partition against
    /// `g` (typically the same graph after a stream of edge updates has
    /// degraded the cut): re-runs the bounded capped-move/swap refinement
    /// of [`Partition::edge_cut`] on the current assignment and returns
    /// the resulting move-set as `(node, new shard)` pairs — only nodes
    /// whose final shard differs from their current one appear.
    ///
    /// `max_moves` caps the refinement work (each single move or half of
    /// a swap counts as one change), so a drifted partition is repaired
    /// in bounded slices instead of one unbounded sweep; the returned
    /// set can be applied without re-sharding through
    /// [`ShardedGraph::apply_moves`]. An empty result means refinement
    /// found nothing to improve — the partition is at a local optimum
    /// and only a full repartition could do better.
    pub fn rebalance(&self, g: &Graph, max_moves: usize) -> Vec<(NodeId, u32)> {
        assert_eq!(
            g.node_count(),
            self.node_count(),
            "rebalance needs the graph this partition covers"
        );
        let n = self.node_count();
        let k = self.k();
        if n == 0 || max_moves == 0 {
            return Vec::new();
        }
        let cap = n.div_ceil(k);
        let mut shard_of = self.shard_of.clone();
        let mut sizes: Vec<usize> = (0..k).map(|s| self.shard_size(s)).collect();
        refine_assignment(g, &mut shard_of, &mut sizes, cap, max_moves);
        shard_of
            .iter()
            .enumerate()
            .filter(|&(v, &s)| s != self.shard_of[v])
            .map(|(v, &s)| (NodeId(v as u32), s))
            .collect()
    }
}

/// Sliding-window detector for **partition drift**: the slow decay of a
/// once-good edge-cut as updates keep landing on a fixed assignment.
///
/// Feed it the [`ShardStats`] of each published sharded snapshot via
/// [`DriftMonitor::record`]; [`DriftMonitor::drifting`] reports true once
/// a *full* window of samples averages worse than the recorded baseline
/// by the slack factor — on either the cut ratio or the balance. The
/// full-window warm-up keeps one noisy batch from triggering a
/// rebalance, and [`DriftMonitor::rebaseline`] resets both the baseline
/// and the window after a rebalance (or full repartition) has been
/// applied, so the monitor tracks degradation *since the last repair*
/// rather than since the beginning of time.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    window: usize,
    slack: f64,
    baseline_cut: f64,
    baseline_balance: f64,
    samples: VecDeque<(f64, f64)>,
}

impl DriftMonitor {
    /// Default window: 8 recorded snapshots.
    pub const DEFAULT_WINDOW: usize = 8;
    /// Default slack: 1.25× the baseline before drift is declared.
    pub const DEFAULT_SLACK: f64 = 1.25;

    /// Monitor with the default window and slack, baselined at `stats`.
    pub fn new(baseline: &ShardStats) -> DriftMonitor {
        Self::with_params(baseline, Self::DEFAULT_WINDOW, Self::DEFAULT_SLACK)
    }

    /// Monitor with an explicit window length (≥ 1) and slack factor
    /// (> 1), baselined at `stats`.
    pub fn with_params(baseline: &ShardStats, window: usize, slack: f64) -> DriftMonitor {
        assert!(window >= 1, "window must hold at least one sample");
        assert!(slack > 1.0, "slack must leave room above the baseline");
        DriftMonitor {
            window,
            slack,
            baseline_cut: baseline.edge_cut_ratio(),
            baseline_balance: baseline.balance(),
            samples: VecDeque::with_capacity(window),
        }
    }

    /// Record the stats of a freshly published sharded snapshot.
    pub fn record(&mut self, stats: &ShardStats) {
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples
            .push_back((stats.edge_cut_ratio(), stats.balance()));
    }

    /// True when a full window of samples averages worse than the
    /// baseline by the slack factor, on cut ratio or balance. The cut
    /// threshold carries a small absolute floor so a zero-cut baseline
    /// (e.g. disconnected clusters split perfectly) does not declare
    /// drift on the first cross-shard edge.
    pub fn drifting(&self) -> bool {
        if self.samples.len() < self.window {
            return false;
        }
        let inv = 1.0 / self.samples.len() as f64;
        let avg_cut: f64 = self.samples.iter().map(|&(c, _)| c).sum::<f64>() * inv;
        let avg_bal: f64 = self.samples.iter().map(|&(_, b)| b).sum::<f64>() * inv;
        avg_cut > self.baseline_cut * self.slack + 0.01
            || avg_bal > self.baseline_balance * self.slack
    }

    /// Reset the baseline to `stats` and clear the window — call after
    /// applying a rebalance so the monitor measures new degradation.
    pub fn rebaseline(&mut self, stats: &ShardStats) {
        self.baseline_cut = stats.edge_cut_ratio();
        self.baseline_balance = stats.balance();
        self.samples.clear();
    }
}

/// Aggregate shape of a [`ShardedGraph`], for logs, benches and planning.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Total edges (intra-shard + cut).
    pub edges: usize,
    /// Edges crossing shards.
    pub cut_edges: usize,
    /// Nodes incident to at least one cut edge.
    pub boundary_nodes: usize,
    /// Largest shard, in nodes.
    pub max_shard_nodes: usize,
    /// Smallest shard, in nodes.
    pub min_shard_nodes: usize,
}

impl ShardStats {
    /// Fraction of edges cut by the partition (0 when the graph is empty).
    pub fn edge_cut_ratio(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.edges as f64
        }
    }

    /// Largest shard relative to the ideal `|V|/k` (1.0 = perfectly
    /// balanced).
    pub fn balance(&self) -> f64 {
        if self.nodes == 0 {
            1.0
        } else {
            self.max_shard_nodes as f64 / (self.nodes as f64 / self.shards as f64)
        }
    }
}

impl std::fmt::Display for ShardStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shards over {} nodes / {} edges: {} cut ({:.1}%), {} boundary nodes, balance {:.2}",
            self.shards,
            self.nodes,
            self.edges,
            self.cut_edges,
            100.0 * self.edge_cut_ratio(),
            self.boundary_nodes,
            self.balance()
        )
    }
}

/// Shard `s` of `graph` under `partition` as a standalone local graph:
/// the shard's nodes (labels and attributes preserved, dense local ids
/// in `shard_nodes` order) plus exactly its intra-shard edges.
fn build_shard_graph(graph: &Graph, partition: &Partition, s: usize) -> Graph {
    let mut b = GraphBuilder::with_vocabulary(graph.schema().clone(), graph.alphabet().clone());
    for &v in partition.shard_nodes(s) {
        let pairs: Vec<_> = graph
            .attrs(v)
            .iter()
            .map(|(id, val)| (id, val.clone()))
            .collect();
        b.add_node(graph.label(v), pairs);
    }
    for &v in partition.shard_nodes(s) {
        let lu = partition.local_of(v);
        for e in graph.out_edges(v) {
            let (sv, lv) = partition.to_local(e.node);
            if sv == s {
                b.add_edge(lu, lv, e.color);
            }
        }
    }
    b.build()
}

/// Derive the boundary-node directory from a cut-edge list: per-shard
/// boundary locals (ascending), the global boundary list whose index
/// order **is** the overlay id space, and the global→overlay map.
/// Deterministic in the cut-edge *set* (order-insensitive), so a patched
/// cut list yields the same directory as a from-scratch scan.
#[allow(clippy::type_complexity)]
fn boundary_directory(
    n: usize,
    partition: &Partition,
    cut_edges: &[(NodeId, NodeId, Color)],
) -> (Vec<Vec<NodeId>>, Vec<NodeId>, Vec<u32>) {
    let mut is_boundary = vec![false; n];
    for &(u, v, _) in cut_edges {
        is_boundary[u.index()] = true;
        is_boundary[v.index()] = true;
    }
    let mut boundary_globals = Vec::new();
    let mut overlay_of = vec![UNASSIGNED; n];
    let mut boundary_locals: Vec<Vec<NodeId>> = vec![Vec::new(); partition.k()];
    for v in 0..n {
        if is_boundary[v] {
            overlay_of[v] = boundary_globals.len() as u32;
            let id = NodeId(v as u32);
            boundary_globals.push(id);
            boundary_locals[partition.shard_of(id)].push(partition.local_of(id));
        }
    }
    (boundary_locals, boundary_globals, overlay_of)
}

/// A graph stored as `k` per-shard local graphs plus the cross-shard
/// residue: cut edges and the boundary-node directory. The shards share
/// the original vocabulary (schema and alphabet), so queries authored
/// against the global graph parse and evaluate against any shard.
#[derive(Debug)]
pub struct ShardedGraph {
    graph: Arc<Graph>,
    partition: Partition,
    /// Per-shard local graphs, `Arc`'d so the incremental constructors
    /// ([`ShardedGraph::apply_updates`], [`ShardedGraph::apply_moves`])
    /// can carry untouched shards into the successor for free.
    shards: Vec<Arc<Graph>>,
    /// per shard: boundary nodes as **local** ids, ascending.
    boundary_locals: Vec<Vec<NodeId>>,
    /// all boundary nodes as **global** ids, ascending — this order is the
    /// overlay id space of `rpq-index`.
    boundary_globals: Vec<NodeId>,
    /// global node index → overlay id ([`UNASSIGNED`] when interior).
    overlay_of: Vec<u32>,
    /// cross-shard edges, global ids.
    cut_edges: Vec<(NodeId, NodeId, Color)>,
}

impl ShardedGraph {
    /// Shard `g` into `k` pieces with the built-in edge-cut partitioner.
    pub fn new(graph: Arc<Graph>, k: usize) -> ShardedGraph {
        let partition = Partition::edge_cut(&graph, k);
        Self::with_partition(graph, partition)
    }

    /// Shard `g` along an explicit partition (which must cover exactly
    /// `g`'s nodes).
    pub fn with_partition(graph: Arc<Graph>, partition: Partition) -> ShardedGraph {
        assert_eq!(
            partition.node_count(),
            graph.node_count(),
            "partition must cover the graph"
        );
        let n = graph.node_count();
        let k = partition.k();
        let cut_edges: Vec<(NodeId, NodeId, Color)> = graph
            .edges()
            .filter(|&(u, v, _)| partition.shard_of(u) != partition.shard_of(v))
            .collect();
        let shards: Vec<Arc<Graph>> = (0..k)
            .map(|s| Arc::new(build_shard_graph(&graph, &partition, s)))
            .collect();
        let (boundary_locals, boundary_globals, overlay_of) =
            boundary_directory(n, &partition, &cut_edges);
        ShardedGraph {
            graph,
            partition,
            shards,
            boundary_locals,
            boundary_globals,
            overlay_of,
            cut_edges,
        }
    }

    /// Re-image this sharded view onto `new_graph` **without re-sharding**:
    /// the partition is kept verbatim, only shards containing an endpoint
    /// pair of an *intra-shard* change get their local graph rebuilt
    /// (everything else is carried by `Arc`), cross-shard changes patch
    /// the cut-edge list in place, and the boundary directory is
    /// re-derived from the patched cut. For a batch touching a handful of
    /// shards this is O(touched shard size + |changes| + |cut| + |V|)
    /// instead of the O(|V| + |E|) full reconstruction of
    /// [`ShardedGraph::with_partition`].
    ///
    /// Preconditions: `new_graph` has the same node set (count, labels,
    /// attrs) as the current graph — updates here are edge-only — and
    /// `changes` lists the edge deltas: an entry present in `new_graph`
    /// is an insert, an absent one a delete. Ineffective entries (inserts
    /// of pre-existing edges, deletes of never-present ones) are ignored.
    ///
    /// The result is observationally identical to
    /// `with_partition(new_graph, partition.clone())` — same shard
    /// graphs, boundary directory and cut-edge *set* (the patched list
    /// may order cut edges differently, which nothing downstream depends
    /// on).
    pub fn apply_updates(
        &self,
        new_graph: Arc<Graph>,
        changes: &[(NodeId, NodeId, Color)],
    ) -> ShardedGraph {
        assert_eq!(
            new_graph.node_count(),
            self.graph.node_count(),
            "apply_updates is edge-only: the node set must not change"
        );
        let n = new_graph.node_count();
        let k = self.k();
        let partition = self.partition.clone();
        let mut touched = vec![false; k];
        let mut cross_deletes: std::collections::HashSet<(NodeId, NodeId, Color)> =
            std::collections::HashSet::new();
        let mut cross_inserts: Vec<(NodeId, NodeId, Color)> = Vec::new();
        for &(u, v, c) in changes {
            if partition.shard_of(u) == partition.shard_of(v) {
                touched[partition.shard_of(u)] = true;
            } else if new_graph.has_edge(u, v, c) {
                if !self.graph.has_edge(u, v, c) && !cross_inserts.contains(&(u, v, c)) {
                    cross_inserts.push((u, v, c));
                }
            } else if self.graph.has_edge(u, v, c) {
                cross_deletes.insert((u, v, c));
            }
        }
        let mut cut_edges: Vec<(NodeId, NodeId, Color)> = if cross_deletes.is_empty() {
            self.cut_edges.clone()
        } else {
            self.cut_edges
                .iter()
                .filter(|e| !cross_deletes.contains(e))
                .copied()
                .collect()
        };
        cut_edges.extend(cross_inserts);
        let shards: Vec<Arc<Graph>> = (0..k)
            .map(|s| {
                if touched[s] {
                    Arc::new(build_shard_graph(&new_graph, &partition, s))
                } else {
                    Arc::clone(&self.shards[s])
                }
            })
            .collect();
        let (boundary_locals, boundary_globals, overlay_of) =
            boundary_directory(n, &partition, &cut_edges);
        ShardedGraph {
            graph: new_graph,
            partition,
            shards,
            boundary_locals,
            boundary_globals,
            overlay_of,
            cut_edges,
        }
    }

    /// Apply a rebalancing move-set (from [`Partition::rebalance`])
    /// **without re-sharding**: the assignment is patched, only shards a
    /// node moved out of or into get their local graph rebuilt (the rest
    /// are carried by `Arc`), and the cut is re-scanned in one O(|E|)
    /// pass — membership changes can flip the cut status of any edge
    /// incident to a moved node, so the scan is the cheapest sound
    /// re-derivation. No-op moves (a node "moved" to its current shard)
    /// are ignored.
    ///
    /// The result is identical to
    /// `with_partition(graph, Partition::from_shard_of(patched, k))`:
    /// untouched shards keep their exact local graphs (dense local ids
    /// are assigned in ascending global order, so unchanged membership
    /// means unchanged ids), which the index layer exploits to carry
    /// per-shard labels across a rebalance.
    pub fn apply_moves(&self, moves: &[(NodeId, u32)]) -> ShardedGraph {
        let n = self.graph.node_count();
        let k = self.k();
        let mut shard_of = self.partition.shard_of.clone();
        let mut touched = vec![false; k];
        for &(v, s) in moves {
            assert!((s as usize) < k, "move target {s} >= k={k}");
            let old = shard_of[v.index()];
            if old != s {
                touched[old as usize] = true;
                touched[s as usize] = true;
                shard_of[v.index()] = s;
            }
        }
        let partition = Partition::from_shard_of(shard_of, k);
        let cut_edges: Vec<(NodeId, NodeId, Color)> = self
            .graph
            .edges()
            .filter(|&(u, v, _)| partition.shard_of(u) != partition.shard_of(v))
            .collect();
        let shards: Vec<Arc<Graph>> = (0..k)
            .map(|s| {
                if touched[s] {
                    Arc::new(build_shard_graph(&self.graph, &partition, s))
                } else {
                    Arc::clone(&self.shards[s])
                }
            })
            .collect();
        let (boundary_locals, boundary_globals, overlay_of) =
            boundary_directory(n, &partition, &cut_edges);
        ShardedGraph {
            graph: Arc::clone(&self.graph),
            partition,
            shards,
            boundary_locals,
            boundary_globals,
            overlay_of,
            cut_edges,
        }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.shards.len()
    }

    /// The original (global) graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The node→shard assignment and id maps.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Shard `s` as a standalone local graph.
    pub fn shard(&self, s: usize) -> &Graph {
        &self.shards[s]
    }

    /// All per-shard graphs (`Arc`'d — incremental successors share
    /// untouched shards with their predecessor).
    pub fn shards(&self) -> &[Arc<Graph>] {
        &self.shards
    }

    /// Boundary nodes of shard `s` as local ids, ascending.
    pub fn boundary_locals(&self, s: usize) -> &[NodeId] {
        &self.boundary_locals[s]
    }

    /// Every boundary node (global ids, ascending) — index into this slice
    /// is the node's *overlay id*.
    pub fn boundary_globals(&self) -> &[NodeId] {
        &self.boundary_globals
    }

    /// The overlay id of global node `v`, if it is a boundary node.
    #[inline]
    pub fn overlay_index(&self, v: NodeId) -> Option<u32> {
        let o = self.overlay_of[v.index()];
        (o != UNASSIGNED).then_some(o)
    }

    /// The cross-shard edges, in global ids.
    pub fn cut_edges(&self) -> &[(NodeId, NodeId, Color)] {
        &self.cut_edges
    }

    /// Shape summary.
    pub fn stats(&self) -> ShardStats {
        let sizes = (0..self.k()).map(|s| self.partition.shard_size(s));
        ShardStats {
            shards: self.k(),
            nodes: self.graph.node_count(),
            edges: self.graph.edge_count(),
            cut_edges: self.cut_edges.len(),
            boundary_nodes: self.boundary_globals.len(),
            max_shard_nodes: sizes.clone().max().unwrap_or(0),
            min_shard_nodes: sizes.min().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{clustered, essembly, synthetic};

    fn check_invariants(sg: &ShardedGraph) {
        let g = sg.graph();
        let p = sg.partition();
        // id maps round-trip
        for v in g.nodes() {
            let (s, l) = p.to_local(v);
            assert_eq!(p.to_global(s, l), v);
            let local = sg.shard(s);
            assert_eq!(local.label(l), g.label(v), "labels preserved");
            assert_eq!(local.attrs(l), g.attrs(v), "attrs preserved");
        }
        // every edge is either local (with translated endpoints) or cut
        let intra: usize = (0..sg.k()).map(|s| sg.shard(s).edge_count()).sum();
        assert_eq!(intra + sg.cut_edges().len(), g.edge_count());
        for &(u, v, c) in sg.cut_edges() {
            assert_ne!(p.shard_of(u), p.shard_of(v));
            assert!(g.has_edge(u, v, c));
            assert!(sg.overlay_index(u).is_some(), "cut source is boundary");
            assert!(sg.overlay_index(v).is_some(), "cut target is boundary");
        }
        for (u, v, c) in g.edges() {
            let (su, lu) = p.to_local(u);
            let (sv, lv) = p.to_local(v);
            if su == sv {
                assert!(sg.shard(su).has_edge(lu, lv, c));
            }
        }
        // overlay ids are dense over the ascending boundary list
        for (i, &b) in sg.boundary_globals().iter().enumerate() {
            assert_eq!(sg.overlay_index(b), Some(i as u32));
        }
        let boundary_total: usize = (0..sg.k()).map(|s| sg.boundary_locals(s).len()).sum();
        assert_eq!(boundary_total, sg.boundary_globals().len());
    }

    #[test]
    fn partition_is_balanced_and_total() {
        for k in [1usize, 2, 3, 4] {
            let g = synthetic(50, 180, 2, 3, 7);
            let p = Partition::edge_cut(&g, k);
            assert_eq!(p.k(), k);
            let total: usize = (0..k).map(|s| p.shard_size(s)).sum();
            assert_eq!(total, 50);
            let cap = 50usize.div_ceil(k);
            for s in 0..k {
                assert!(p.shard_size(s) <= cap, "shard {s} over cap");
                assert!(p.shard_size(s) >= 1, "shard {s} empty");
            }
        }
    }

    #[test]
    fn no_shard_left_empty() {
        // a 5-node path at k = 4: the packer alone would fill three
        // shards (cap = 2) and leave the fourth empty
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..5).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let c = b.color("c");
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], c);
        }
        let g = b.build();
        for k in 1..=5usize {
            let p = Partition::edge_cut(&g, k);
            assert_eq!(p.k(), k);
            for s in 0..k {
                assert!(p.shard_size(s) >= 1, "k={k}: shard {s} empty");
            }
            assert_eq!((0..k).map(|s| p.shard_size(s)).sum::<usize>(), 5);
        }
    }

    #[test]
    fn sharded_graph_invariants() {
        for k in [1usize, 2, 3, 4] {
            let g = Arc::new(synthetic(60, 240, 2, 3, 11));
            check_invariants(&ShardedGraph::new(Arc::clone(&g), k));
        }
        check_invariants(&ShardedGraph::new(Arc::new(essembly()), 3));
    }

    #[test]
    fn clustered_graphs_cut_few_edges() {
        let g = Arc::new(clustered(400, 1600, 4, 2, 3, 30, 5));
        let sg = ShardedGraph::new(Arc::clone(&g), 4);
        let stats = sg.stats();
        assert!(
            stats.edge_cut_ratio() < 0.25,
            "partitioner should recover most of the community structure, got {:.1}% cut",
            100.0 * stats.edge_cut_ratio()
        );
        assert!(stats.balance() <= 1.01 + 1e-9);
        let line = stats.to_string();
        assert!(line.contains("4 shards"), "{line}");
    }

    #[test]
    fn explicit_partition_and_degenerate_cut() {
        // even/odd split of a path graph cuts every edge
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..8).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let c = b.color("c");
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], c);
        }
        let g = Arc::new(b.build());
        let shard_of: Vec<u32> = (0..8).map(|v| (v % 2) as u32).collect();
        let sg =
            ShardedGraph::with_partition(Arc::clone(&g), Partition::from_shard_of(shard_of, 2));
        assert_eq!(sg.cut_edges().len(), g.edge_count());
        assert_eq!(sg.boundary_globals().len(), 8);
        assert_eq!(sg.shard(0).edge_count() + sg.shard(1).edge_count(), 0);
        check_invariants(&sg);
    }

    #[test]
    fn handles_k_larger_than_n_and_empty() {
        let g = Arc::new(synthetic(3, 2, 1, 1, 1));
        let sg = ShardedGraph::new(Arc::clone(&g), 10);
        assert_eq!(sg.k(), 3, "k clamps to |V|");
        check_invariants(&sg);
        let empty = Arc::new(GraphBuilder::new().build());
        let se = ShardedGraph::new(Arc::clone(&empty), 4);
        assert_eq!(se.graph().node_count(), 0);
        assert_eq!(se.stats().edge_cut_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = ">= k")]
    fn from_shard_of_validates() {
        Partition::from_shard_of(vec![0, 5], 2);
    }

    fn lcg(s: &mut u64) -> u64 {
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *s >> 33
    }

    /// Apply `count` pseudo-random edge flips to `g`, returning the new
    /// graph and the effective change list (`apply_updates`'s contract).
    fn random_mutation_round(
        g: &Graph,
        count: usize,
        seed: u64,
    ) -> (Graph, Vec<(NodeId, NodeId, Color)>) {
        let n = g.node_count() as u64;
        let m = g.alphabet().len() as u64;
        let mut b = GraphBuilder::from_graph(g);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut eff = Vec::new();
        for _ in 0..count {
            let u = NodeId((lcg(&mut s) % n) as u32);
            let v = NodeId((lcg(&mut s) % n) as u32);
            let c = Color((lcg(&mut s) % m) as u8);
            let applied = match lcg(&mut s) % 2 {
                0 => b.insert_edge(u, v, c) || b.remove_edge(u, v, c),
                _ => b.remove_edge(u, v, c) || b.insert_edge(u, v, c),
            };
            if applied {
                eff.push((u, v, c));
            }
        }
        (b.build(), eff)
    }

    /// The two sharded views expose the same storage: partitions,
    /// per-shard graphs, boundary directories, and cut-edge sets.
    fn assert_same_view(a: &ShardedGraph, b: &ShardedGraph) {
        assert_eq!(a.k(), b.k());
        assert_eq!(a.graph().node_count(), b.graph().node_count());
        assert_eq!(a.boundary_globals(), b.boundary_globals());
        for v in a.graph().nodes() {
            assert_eq!(a.overlay_index(v), b.overlay_index(v));
            assert_eq!(a.partition().to_local(v), b.partition().to_local(v));
        }
        for s in 0..a.k() {
            assert_eq!(a.boundary_locals(s), b.boundary_locals(s), "shard {s}");
            assert_eq!(a.partition().shard_nodes(s), b.partition().shard_nodes(s));
            let (ga, gb) = (a.shard(s), b.shard(s));
            assert_eq!(ga.node_count(), gb.node_count(), "shard {s}");
            let ea: Vec<_> = ga.edges().collect();
            let eb: Vec<_> = gb.edges().collect();
            assert_eq!(ea, eb, "shard {s} edges");
        }
        let mut ca = a.cut_edges().to_vec();
        let mut cb = b.cut_edges().to_vec();
        ca.sort_unstable();
        cb.sort_unstable();
        assert_eq!(ca, cb, "cut-edge sets");
    }

    #[test]
    fn apply_updates_matches_full_resharding() {
        let mut g = Arc::new(synthetic(80, 320, 2, 3, 19));
        let mut sg = ShardedGraph::new(Arc::clone(&g), 3);
        for round in 0..4u64 {
            let (next, changes) = random_mutation_round(&g, 12, 1000 + round);
            let next = Arc::new(next);
            let inc = sg.apply_updates(Arc::clone(&next), &changes);
            let full = ShardedGraph::with_partition(Arc::clone(&next), sg.partition().clone());
            assert_same_view(&inc, &full);
            check_invariants(&inc);
            g = next;
            sg = inc;
        }
    }

    #[test]
    fn apply_updates_carries_untouched_shards_by_pointer() {
        let g = Arc::new(synthetic(60, 240, 2, 3, 23));
        let sg = ShardedGraph::new(Arc::clone(&g), 4);
        // one intra-shard insert in shard 0's first two nodes
        let p = sg.partition();
        let (a, b) = (p.to_global(0, NodeId(0)), p.to_global(0, NodeId(1)));
        let mut builder = GraphBuilder::from_graph(&g);
        let c = Color(0);
        let applied = builder.insert_edge(a, b, c) || builder.remove_edge(a, b, c);
        assert!(applied);
        let next = Arc::new(builder.build());
        let inc = sg.apply_updates(Arc::clone(&next), &[(a, b, c)]);
        for s in 1..sg.k() {
            assert!(
                Arc::ptr_eq(&sg.shards()[s], &inc.shards()[s]),
                "untouched shard {s} should be carried by Arc"
            );
        }
        assert!(!Arc::ptr_eq(&sg.shards()[0], &inc.shards()[0]));
        // a purely cross-shard change carries every shard
        let u = p.to_global(1, NodeId(0));
        let mut builder = GraphBuilder::from_graph(&next);
        let applied = builder.insert_edge(a, u, c) || builder.remove_edge(a, u, c);
        assert!(applied);
        let after = Arc::new(builder.build());
        let inc2 = inc.apply_updates(Arc::clone(&after), &[(a, u, c)]);
        for s in 0..inc.k() {
            assert!(Arc::ptr_eq(&inc.shards()[s], &inc2.shards()[s]));
        }
        assert_same_view(
            &inc2,
            &ShardedGraph::with_partition(after, inc.partition().clone()),
        );
    }

    #[test]
    fn apply_moves_matches_full_resharding() {
        let g = Arc::new(synthetic(70, 280, 2, 3, 29));
        let sg = ShardedGraph::new(Arc::clone(&g), 4);
        // move the first two nodes of shard 0 into shard 1
        let p = sg.partition();
        let moves = vec![
            (p.to_global(0, NodeId(0)), 1u32),
            (p.to_global(0, NodeId(1)), 1u32),
            // and a no-op move that must not dirty its shard
            (p.to_global(2, NodeId(0)), 2u32),
        ];
        let inc = sg.apply_moves(&moves);
        let mut shard_of: Vec<u32> = (0..g.node_count())
            .map(|v| p.shard_of(NodeId(v as u32)) as u32)
            .collect();
        for &(v, s) in &moves {
            shard_of[v.index()] = s;
        }
        let full =
            ShardedGraph::with_partition(Arc::clone(&g), Partition::from_shard_of(shard_of, 4));
        assert_same_view(&inc, &full);
        check_invariants(&inc);
        // shards 2 and 3 saw no membership change: carried by Arc
        for s in [2usize, 3] {
            assert!(Arc::ptr_eq(&sg.shards()[s], &inc.shards()[s]));
        }
        for s in [0usize, 1] {
            assert!(!Arc::ptr_eq(&sg.shards()[s], &inc.shards()[s]));
        }
    }

    /// Count the edges of `g` crossing shards under `shard_of`.
    fn cut_count(g: &Graph, shard_of: &[u32]) -> usize {
        g.edges()
            .filter(|&(u, v, _)| shard_of[u.index()] != shard_of[v.index()])
            .count()
    }

    #[test]
    fn rebalance_repairs_a_scrambled_partition() {
        let g = Arc::new(clustered(200, 800, 4, 2, 3, 20, 5));
        let p = Partition::edge_cut(&g, 4);
        // scramble: swap node pairs between shards 0 and 1 (balance-
        // preserving, cut-destroying)
        let mut shard_of: Vec<u32> = (0..g.node_count())
            .map(|v| p.shard_of(NodeId(v as u32)) as u32)
            .collect();
        let zeros: Vec<usize> = (0..shard_of.len()).filter(|&v| shard_of[v] == 0).collect();
        let ones: Vec<usize> = (0..shard_of.len()).filter(|&v| shard_of[v] == 1).collect();
        for i in 0..6.min(zeros.len()).min(ones.len()) {
            shard_of[zeros[i]] = 1;
            shard_of[ones[i]] = 0;
        }
        let scrambled = Partition::from_shard_of(shard_of.clone(), 4);
        let before = cut_count(&g, &shard_of);
        let moves = scrambled.rebalance(&g, 1000);
        assert!(
            !moves.is_empty(),
            "refinement should find the misplaced nodes"
        );
        let mut repaired = shard_of.clone();
        for &(v, s) in &moves {
            repaired[v.index()] = s;
        }
        let after = cut_count(&g, &repaired);
        assert!(
            after < before,
            "rebalance should improve the cut: {before} -> {after}"
        );
        // the cap is a hard bound on refinement work
        assert!(scrambled.rebalance(&g, 2).len() <= 2);
        assert!(scrambled.rebalance(&g, 0).is_empty());
    }

    #[test]
    fn drift_monitor_needs_a_full_degraded_window() {
        let base = ShardStats {
            shards: 4,
            nodes: 1000,
            edges: 4000,
            cut_edges: 400,
            boundary_nodes: 300,
            max_shard_nodes: 260,
            min_shard_nodes: 240,
        };
        let mut mon = DriftMonitor::with_params(&base, 3, 1.25);
        // healthy samples never trigger
        for _ in 0..5 {
            mon.record(&base);
        }
        assert!(!mon.drifting());
        // degradation: cut ratio 0.10 -> 0.15, above the 0.135 threshold
        // only once it fills the whole window
        let bad = ShardStats {
            cut_edges: 600,
            ..base.clone()
        };
        mon.record(&bad);
        mon.record(&bad);
        assert!(!mon.drifting(), "window still averages below threshold");
        mon.record(&bad);
        assert!(mon.drifting(), "full window of degraded cut must trigger");
        // rebaselining at the degraded level clears the alarm
        mon.rebaseline(&bad);
        assert!(!mon.drifting(), "window cleared");
        for _ in 0..3 {
            mon.record(&bad);
        }
        assert!(!mon.drifting(), "degraded level is the new baseline");
        // balance degradation triggers independently of the cut
        let skewed = ShardStats {
            max_shard_nodes: 600,
            ..base.clone()
        };
        let mut mon = DriftMonitor::with_params(&base, 2, 1.25);
        mon.record(&skewed);
        mon.record(&skewed);
        assert!(mon.drifting(), "balance 2.4 vs baseline 1.04");
    }
}
