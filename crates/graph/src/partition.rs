//! Edge-cut graph partitioning and the sharded storage view.
//!
//! Every index in this workspace — the dense
//! [`DistanceMatrix`](crate::DistanceMatrix), the pruned 2-hop labels of
//! `rpq-index` — is
//! built against **one** resident [`Graph`], so the whole system is capped
//! by the memory of a single index build. This module is the storage half
//! of the way past that cap:
//!
//! * [`Partition`] — an assignment of nodes to `k` shards with dense
//!   *local* ids per shard and both directions of the local↔global id map.
//!   [`Partition::edge_cut`] computes one with a seeded multi-source BFS
//!   ("bubble growing": `k` spread-out seeds grow balanced regions in
//!   round-robin) followed by a bounded label-propagation refinement that
//!   moves nodes to their neighbor-majority shard while balance allows —
//!   cheap, deterministic, and effective on graphs with community
//!   structure (the graphs one shards in practice). Any other assignment
//!   can be injected through [`Partition::from_shard_of`].
//! * [`ShardedGraph`] — the partitioned image of a graph: `k` per-shard
//!   [`Graph`]s over local ids (each carrying only intra-shard edges, with
//!   labels, attributes and the shared vocabulary preserved), the list of
//!   **cut edges** (edges crossing shards, in global ids), and the
//!   **boundary nodes** (endpoints of cut edges) that any cross-shard path
//!   must thread through. The boundary is what `rpq-index` builds its
//!   overlay distance labels over.
//!
//! The exactness contract the index layer relies on: a path either stays
//! inside one shard (then it lives in that shard's local graph verbatim)
//! or it uses at least one cut edge — in which case it decomposes into an
//! intra-shard prefix to the first cut edge's source, an alternation of
//! cut edges and intra-shard boundary-to-boundary segments, and an
//! intra-shard suffix from the last cut edge's target. Both endpoints of
//! every cut edge are boundary nodes, so the decomposition is entirely
//! visible to per-shard indices plus a boundary overlay.

use crate::builder::GraphBuilder;
use crate::color::Color;
use crate::graph::{Graph, NodeId};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// BFS order of `comm`'s members over the subgraph they induce, started
/// from the lowest-id member; members unreached within the community
/// (it need not be connected) restart the BFS in ascending order. Uses
/// `scratch` (all-[`UNASSIGNED`] on entry) as a visited mark, restoring
/// it before returning.
fn bfs_order_within(g: &Graph, comm: &[u32], scratch: &mut [u32]) -> Vec<u32> {
    const IN_COMM: u32 = u32::MAX - 1;
    for &v in comm {
        scratch[v as usize] = IN_COMM;
    }
    let mut order = Vec::with_capacity(comm.len());
    let mut queue = VecDeque::new();
    for &start in comm {
        if scratch[start as usize] != IN_COMM {
            continue;
        }
        scratch[start as usize] = UNASSIGNED;
        order.push(start);
        queue.push_back(NodeId(start));
        while let Some(u) = queue.pop_front() {
            for e in g.out_edges(u).iter().chain(g.in_edges(u)) {
                if scratch[e.node.index()] == IN_COMM {
                    scratch[e.node.index()] = UNASSIGNED;
                    order.push(e.node.0);
                    queue.push_back(e.node);
                }
            }
        }
    }
    order
}

const UNASSIGNED: u32 = u32::MAX;

/// An assignment of graph nodes to `k` shards, with per-shard dense local
/// ids and the maps between local and global id spaces.
#[derive(Debug, Clone)]
pub struct Partition {
    /// global node index → shard.
    shard_of: Vec<u32>,
    /// global node index → dense local id within its shard.
    local_of: Vec<u32>,
    /// shard → local id → global node.
    globals: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Partition `g` into `k` balanced shards: **label propagation**
    /// finds the graph's communities, a greedy packing bins them into
    /// `k` shards under the balance cap `⌈|V|/k⌉` (oversized communities
    /// are split along their internal BFS order, so even the split parts
    /// stay contiguous), and a bounded boundary-refinement sweep moves
    /// nodes to their neighbor-majority shard while balance allows. `k`
    /// is clamped to `1..=|V|` (every shard gets at least one node when
    /// the graph has that many). Deterministic for a given graph.
    ///
    /// On graphs with community structure the cut converges to the
    /// fraction of genuinely cross-community edges; on structureless
    /// random graphs (one giant community) the split degenerates to
    /// BFS-ordered chunks — no partitioner does better there, and the
    /// sharded index stays exact either way, only less economical.
    pub fn edge_cut(g: &Graph, k: usize) -> Partition {
        let n = g.node_count();
        let k = k.clamp(1, n.max(1));
        if n == 0 {
            return Partition::from_shard_of(Vec::new(), k);
        }
        let cap = n.div_ceil(k);

        // --- community detection: **size-constrained** in-place label
        // propagation. Each node adopts the most frequent label among its
        // (undirected) neighbors, ties to the smallest label — except
        // that a label whose community already holds `cap` nodes cannot
        // recruit. Unconstrained LPA suffers label epidemics on exactly
        // the graphs sharding is for (one early-coalesced community
        // leaks through the few cross-cluster bridges and swallows the
        // graph); capping community size at the shard size blocks the
        // epidemic and emits communities that already fit a shard.
        // In-place sweeping in node order is deterministic; the round
        // budget is sized for the slow tail of cap-constrained
        // migrations (measured ~22 rounds to full convergence on a
        // 100k-node 4-cluster graph — each round is one O(|E|) sweep,
        // and the early-exit fires as soon as a sweep changes nothing).
        let cap_lpa = cap;
        let mut label: Vec<u32> = (0..n as u32).collect();
        let mut comm_size: Vec<u32> = vec![1; n];
        let mut tally: HashMap<u32, u32> = HashMap::new();
        for _round in 0..40 {
            let mut changed = 0usize;
            for v in 0..n {
                let id = NodeId(v as u32);
                tally.clear();
                for e in g.out_edges(id).iter().chain(g.in_edges(id)) {
                    if e.node != id {
                        *tally.entry(label[e.node.index()]).or_insert(0) += 1;
                    }
                }
                let cur = label[v];
                let Some(best) = tally
                    .iter()
                    .filter(|&(&l, _)| l == cur || (comm_size[l as usize] as usize) < cap_lpa)
                    .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                    .max()
                    .map(|(_, std::cmp::Reverse(l))| l)
                else {
                    continue; // isolated node (or every neighbor full)
                };
                if best != cur {
                    label[v] = best;
                    comm_size[cur as usize] -= 1;
                    comm_size[best as usize] += 1;
                    changed += 1;
                }
            }
            if changed == 0 {
                break;
            }
        }

        // --- communities, then an agglomerative merge: LPA under a size
        // cap can leave one real cluster split across several labels
        // (two part-grown labels deadlock at the cap boundary); merging
        // the community pair with the heaviest inter-edge weight while
        // the union still fits a shard reassembles them. Pure bookkeeping
        // on the community graph — O(C²) pairs with C in the tens.
        let mut members: HashMap<u32, Vec<u32>> = HashMap::new();
        for (v, &l) in label.iter().enumerate() {
            members.entry(l).or_default().push(v as u32);
        }
        let mut communities: Vec<Vec<u32>> = members.into_values().collect();
        communities.sort_by_key(|c| (std::cmp::Reverse(c.len()), c[0]));
        {
            let mut comm_of = vec![0u32; n];
            for (ci, c) in communities.iter().enumerate() {
                for &v in c {
                    comm_of[v as usize] = ci as u32;
                }
            }
            let mut weight: HashMap<(u32, u32), u64> = HashMap::new();
            for (u, v, _) in g.edges() {
                let (a, b) = (comm_of[u.index()], comm_of[v.index()]);
                if a != b {
                    *weight.entry((a.min(b), a.max(b))).or_insert(0) += 1;
                }
            }
            while let Some((&(a, b), _)) = weight
                .iter()
                .filter(|(&(a, b), &w)| {
                    w > 0 && communities[a as usize].len() + communities[b as usize].len() <= cap
                })
                .max_by_key(|(&(a, b), &w)| (w, std::cmp::Reverse((a, b))))
            {
                // merge b into a; redirect b's community-graph edges
                let moved = std::mem::take(&mut communities[b as usize]);
                communities[a as usize].extend(moved);
                let b_edges: Vec<((u32, u32), u64)> = weight
                    .iter()
                    .filter(|(&(x, y), _)| x == b || y == b)
                    .map(|(&k, &w)| (k, w))
                    .collect();
                for (key, w) in b_edges {
                    weight.remove(&key);
                    let other = if key.0 == b { key.1 } else { key.0 };
                    if other != a {
                        *weight.entry((a.min(other), a.max(other))).or_insert(0) += w;
                    }
                }
            }
            communities.retain(|c| !c.is_empty());
            communities.sort_by_key(|c| (std::cmp::Reverse(c.len()), c[0]));
        }

        // --- greedy affinity packing under the cap (streaming-partition
        // style): each community goes to the shard it shares the most
        // edges with, damped by that shard's fill — LPA fragments big
        // communities into many pieces, and raw least-loaded packing
        // would scatter one cluster's pieces across shards; edge
        // affinity glues them back together. Whatever exceeds the chosen
        // shard's headroom spills to the next pick, chunked along the
        // community's internal BFS order so split parts stay contiguous
        // subgraphs.
        let mut shard_of = vec![UNASSIGNED; n];
        let mut sizes = vec![0usize; k];
        let mut affinity = vec![0u64; k];
        for comm in &communities {
            let ordered = bfs_order_within(g, comm, &mut shard_of);
            affinity.iter_mut().for_each(|a| *a = 0);
            for &v in &ordered {
                let id = NodeId(v);
                for e in g.out_edges(id).iter().chain(g.in_edges(id)) {
                    let s = shard_of[e.node.index()];
                    if s != UNASSIGNED {
                        affinity[s as usize] += 1;
                    }
                }
            }
            let mut rest: &[u32] = &ordered;
            while !rest.is_empty() {
                // LDG score: affinity damped by fill; a full shard is out
                let s = (0..k)
                    .filter(|&s| sizes[s] < cap)
                    .max_by_key(|&s| {
                        let headroom = (cap - sizes[s]) as u64;
                        // affinity * headroom/cap, in integer arithmetic;
                        // least-loaded breaks ties (and the zero-affinity
                        // case of the first communities)
                        (
                            affinity[s] * headroom / cap as u64,
                            headroom,
                            usize::MAX - s,
                        )
                    })
                    .expect("cap * k >= n leaves room somewhere");
                let room = cap - sizes[s];
                let take = rest.len().min(room);
                for &v in &rest[..take] {
                    shard_of[v as usize] = s as u32;
                }
                sizes[s] += take;
                rest = &rest[take..];
            }
        }

        // --- boundary refinement, two mechanisms per pass:
        //
        // 1. *capped moves* — a node with a strict neighbor majority in
        //    another shard moves there while the target has headroom and
        //    the source keeps one node;
        // 2. *balanced swaps* — when both shards sit at the cap (the
        //    common end state of the packing), moves alone cannot fix a
        //    misplaced blob, but for every shard pair the nodes wanting
        //    to cross in opposite directions can be exchanged
        //    gain-ordered, improving the cut at exactly zero balance
        //    cost. This is what repairs a capped community that
        //    straddled two clusters during propagation.
        let mut votes = vec![0u32; k];
        for _pass in 0..4 {
            let mut moved = 0usize;
            for v in 0..n {
                let id = NodeId(v as u32);
                votes.iter_mut().for_each(|t| *t = 0);
                for e in g.out_edges(id).iter().chain(g.in_edges(id)) {
                    if e.node != id {
                        votes[shard_of[e.node.index()] as usize] += 1;
                    }
                }
                let cur = shard_of[v] as usize;
                let best = (0..k)
                    .max_by_key(|&s| (votes[s], usize::from(s == cur), usize::MAX - s))
                    .expect("k >= 1");
                if best != cur && votes[best] > votes[cur] && sizes[best] < cap && sizes[cur] > 1 {
                    shard_of[v] = best as u32;
                    sizes[cur] -= 1;
                    sizes[best] += 1;
                    moved += 1;
                }
            }
            // swap phase: collect would-be movers per (from, to) pair
            // against a frozen snapshot of the assignment, then exchange
            // the top-gain prefixes of opposite directions
            let mut movers: HashMap<(u32, u32), Vec<(u32, u32)>> = HashMap::new();
            for v in 0..n {
                let id = NodeId(v as u32);
                votes.iter_mut().for_each(|t| *t = 0);
                for e in g.out_edges(id).iter().chain(g.in_edges(id)) {
                    if e.node != id {
                        votes[shard_of[e.node.index()] as usize] += 1;
                    }
                }
                let cur = shard_of[v] as usize;
                let best = (0..k)
                    .max_by_key(|&s| (votes[s], usize::from(s == cur), usize::MAX - s))
                    .expect("k >= 1");
                if best != cur && votes[best] > votes[cur] {
                    movers
                        .entry((cur as u32, best as u32))
                        .or_default()
                        .push((votes[best] - votes[cur], v as u32));
                }
            }
            for a in 0..k as u32 {
                for b in (a + 1)..k as u32 {
                    let (Some(fwd), Some(bwd)) = (movers.get(&(a, b)), movers.get(&(b, a))) else {
                        continue;
                    };
                    let mut fwd = fwd.clone();
                    let mut bwd = bwd.clone();
                    fwd.sort_unstable_by_key(|&(gain, v)| (std::cmp::Reverse(gain), v));
                    bwd.sort_unstable_by_key(|&(gain, v)| (std::cmp::Reverse(gain), v));
                    let m = fwd.len().min(bwd.len());
                    for i in 0..m {
                        shard_of[fwd[i].1 as usize] = b;
                        shard_of[bwd[i].1 as usize] = a;
                        moved += 2;
                    }
                }
            }
            if moved == 0 {
                break;
            }
        }

        // --- no shard stays empty: since k ≤ |V|, every empty shard can
        // take one node from the currently largest shard (the packing
        // leaves shards empty when fewer than k communities existed and
        // none needed to spill — e.g. a 5-node path at k = 4)
        for s in 0..k {
            if sizes[s] > 0 {
                continue;
            }
            let donor = (0..k)
                .max_by_key(|&d| (sizes[d], usize::MAX - d))
                .expect("k >= 1");
            debug_assert!(sizes[donor] > 1, "k <= |V| guarantees a spare node");
            let v = shard_of
                .iter()
                .position(|&x| x == donor as u32)
                .expect("donor is nonempty");
            shard_of[v] = s as u32;
            sizes[donor] -= 1;
            sizes[s] += 1;
        }

        Partition::from_shard_of(shard_of, k)
    }

    /// Build a partition from an explicit node→shard assignment (every
    /// entry must be `< k`). Local ids are dense per shard, in ascending
    /// global order. This is the injection point for external partitioners
    /// — and for the degenerate cases the test suite pins (e.g. a
    /// partition cutting every edge).
    pub fn from_shard_of(shard_of: Vec<u32>, k: usize) -> Partition {
        let k = k.max(1);
        let mut globals: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut local_of = vec![0u32; shard_of.len()];
        for (v, &s) in shard_of.iter().enumerate() {
            assert!((s as usize) < k, "node {v} assigned to shard {s} >= k={k}");
            local_of[v] = globals[s as usize].len() as u32;
            globals[s as usize].push(NodeId(v as u32));
        }
        Partition {
            shard_of,
            local_of,
            globals,
        }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.globals.len()
    }

    /// Number of nodes partitioned.
    pub fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard holding global node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.shard_of[v.index()] as usize
    }

    /// The local id of global node `v` within its shard.
    #[inline]
    pub fn local_of(&self, v: NodeId) -> NodeId {
        NodeId(self.local_of[v.index()])
    }

    /// Both halves of the global→local map at once.
    #[inline]
    pub fn to_local(&self, v: NodeId) -> (usize, NodeId) {
        (self.shard_of(v), self.local_of(v))
    }

    /// The global node behind local id `local` of shard `s`.
    #[inline]
    pub fn to_global(&self, s: usize, local: NodeId) -> NodeId {
        self.globals[s][local.index()]
    }

    /// All global nodes of shard `s`, in local-id order.
    pub fn shard_nodes(&self, s: usize) -> &[NodeId] {
        &self.globals[s]
    }

    /// Number of nodes in shard `s`.
    pub fn shard_size(&self, s: usize) -> usize {
        self.globals[s].len()
    }
}

/// Aggregate shape of a [`ShardedGraph`], for logs, benches and planning.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Number of shards.
    pub shards: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Total edges (intra-shard + cut).
    pub edges: usize,
    /// Edges crossing shards.
    pub cut_edges: usize,
    /// Nodes incident to at least one cut edge.
    pub boundary_nodes: usize,
    /// Largest shard, in nodes.
    pub max_shard_nodes: usize,
    /// Smallest shard, in nodes.
    pub min_shard_nodes: usize,
}

impl ShardStats {
    /// Fraction of edges cut by the partition (0 when the graph is empty).
    pub fn edge_cut_ratio(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.edges as f64
        }
    }

    /// Largest shard relative to the ideal `|V|/k` (1.0 = perfectly
    /// balanced).
    pub fn balance(&self) -> f64 {
        if self.nodes == 0 {
            1.0
        } else {
            self.max_shard_nodes as f64 / (self.nodes as f64 / self.shards as f64)
        }
    }
}

impl std::fmt::Display for ShardStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shards over {} nodes / {} edges: {} cut ({:.1}%), {} boundary nodes, balance {:.2}",
            self.shards,
            self.nodes,
            self.edges,
            self.cut_edges,
            100.0 * self.edge_cut_ratio(),
            self.boundary_nodes,
            self.balance()
        )
    }
}

/// A graph stored as `k` per-shard local graphs plus the cross-shard
/// residue: cut edges and the boundary-node directory. The shards share
/// the original vocabulary (schema and alphabet), so queries authored
/// against the global graph parse and evaluate against any shard.
#[derive(Debug)]
pub struct ShardedGraph {
    graph: Arc<Graph>,
    partition: Partition,
    shards: Vec<Graph>,
    /// per shard: boundary nodes as **local** ids, ascending.
    boundary_locals: Vec<Vec<NodeId>>,
    /// all boundary nodes as **global** ids, ascending — this order is the
    /// overlay id space of `rpq-index`.
    boundary_globals: Vec<NodeId>,
    /// global node index → overlay id ([`UNASSIGNED`] when interior).
    overlay_of: Vec<u32>,
    /// cross-shard edges, global ids.
    cut_edges: Vec<(NodeId, NodeId, Color)>,
}

impl ShardedGraph {
    /// Shard `g` into `k` pieces with the built-in edge-cut partitioner.
    pub fn new(graph: Arc<Graph>, k: usize) -> ShardedGraph {
        let partition = Partition::edge_cut(&graph, k);
        Self::with_partition(graph, partition)
    }

    /// Shard `g` along an explicit partition (which must cover exactly
    /// `g`'s nodes).
    pub fn with_partition(graph: Arc<Graph>, partition: Partition) -> ShardedGraph {
        assert_eq!(
            partition.node_count(),
            graph.node_count(),
            "partition must cover the graph"
        );
        let n = graph.node_count();
        let k = partition.k();
        let mut builders: Vec<GraphBuilder> = (0..k)
            .map(|_| {
                GraphBuilder::with_vocabulary(graph.schema().clone(), graph.alphabet().clone())
            })
            .collect();
        for (s, builder) in builders.iter_mut().enumerate() {
            for &v in partition.shard_nodes(s) {
                let pairs: Vec<_> = graph
                    .attrs(v)
                    .iter()
                    .map(|(id, val)| (id, val.clone()))
                    .collect();
                builder.add_node(graph.label(v), pairs);
            }
        }
        let mut cut_edges = Vec::new();
        let mut is_boundary = vec![false; n];
        for (u, v, c) in graph.edges() {
            let (su, lu) = partition.to_local(u);
            let (sv, lv) = partition.to_local(v);
            if su == sv {
                builders[su].add_edge(lu, lv, c);
            } else {
                cut_edges.push((u, v, c));
                is_boundary[u.index()] = true;
                is_boundary[v.index()] = true;
            }
        }
        let shards: Vec<Graph> = builders.into_iter().map(GraphBuilder::build).collect();

        let mut boundary_globals = Vec::new();
        let mut overlay_of = vec![UNASSIGNED; n];
        let mut boundary_locals: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for v in 0..n {
            if is_boundary[v] {
                overlay_of[v] = boundary_globals.len() as u32;
                let id = NodeId(v as u32);
                boundary_globals.push(id);
                boundary_locals[partition.shard_of(id)].push(partition.local_of(id));
            }
        }
        ShardedGraph {
            graph,
            partition,
            shards,
            boundary_locals,
            boundary_globals,
            overlay_of,
            cut_edges,
        }
    }

    /// Number of shards.
    pub fn k(&self) -> usize {
        self.shards.len()
    }

    /// The original (global) graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The node→shard assignment and id maps.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Shard `s` as a standalone local graph.
    pub fn shard(&self, s: usize) -> &Graph {
        &self.shards[s]
    }

    /// All per-shard graphs.
    pub fn shards(&self) -> &[Graph] {
        &self.shards
    }

    /// Boundary nodes of shard `s` as local ids, ascending.
    pub fn boundary_locals(&self, s: usize) -> &[NodeId] {
        &self.boundary_locals[s]
    }

    /// Every boundary node (global ids, ascending) — index into this slice
    /// is the node's *overlay id*.
    pub fn boundary_globals(&self) -> &[NodeId] {
        &self.boundary_globals
    }

    /// The overlay id of global node `v`, if it is a boundary node.
    #[inline]
    pub fn overlay_index(&self, v: NodeId) -> Option<u32> {
        let o = self.overlay_of[v.index()];
        (o != UNASSIGNED).then_some(o)
    }

    /// The cross-shard edges, in global ids.
    pub fn cut_edges(&self) -> &[(NodeId, NodeId, Color)] {
        &self.cut_edges
    }

    /// Shape summary.
    pub fn stats(&self) -> ShardStats {
        let sizes = (0..self.k()).map(|s| self.partition.shard_size(s));
        ShardStats {
            shards: self.k(),
            nodes: self.graph.node_count(),
            edges: self.graph.edge_count(),
            cut_edges: self.cut_edges.len(),
            boundary_nodes: self.boundary_globals.len(),
            max_shard_nodes: sizes.clone().max().unwrap_or(0),
            min_shard_nodes: sizes.min().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{clustered, essembly, synthetic};

    fn check_invariants(sg: &ShardedGraph) {
        let g = sg.graph();
        let p = sg.partition();
        // id maps round-trip
        for v in g.nodes() {
            let (s, l) = p.to_local(v);
            assert_eq!(p.to_global(s, l), v);
            let local = sg.shard(s);
            assert_eq!(local.label(l), g.label(v), "labels preserved");
            assert_eq!(local.attrs(l), g.attrs(v), "attrs preserved");
        }
        // every edge is either local (with translated endpoints) or cut
        let intra: usize = (0..sg.k()).map(|s| sg.shard(s).edge_count()).sum();
        assert_eq!(intra + sg.cut_edges().len(), g.edge_count());
        for &(u, v, c) in sg.cut_edges() {
            assert_ne!(p.shard_of(u), p.shard_of(v));
            assert!(g.has_edge(u, v, c));
            assert!(sg.overlay_index(u).is_some(), "cut source is boundary");
            assert!(sg.overlay_index(v).is_some(), "cut target is boundary");
        }
        for (u, v, c) in g.edges() {
            let (su, lu) = p.to_local(u);
            let (sv, lv) = p.to_local(v);
            if su == sv {
                assert!(sg.shard(su).has_edge(lu, lv, c));
            }
        }
        // overlay ids are dense over the ascending boundary list
        for (i, &b) in sg.boundary_globals().iter().enumerate() {
            assert_eq!(sg.overlay_index(b), Some(i as u32));
        }
        let boundary_total: usize = (0..sg.k()).map(|s| sg.boundary_locals(s).len()).sum();
        assert_eq!(boundary_total, sg.boundary_globals().len());
    }

    #[test]
    fn partition_is_balanced_and_total() {
        for k in [1usize, 2, 3, 4] {
            let g = synthetic(50, 180, 2, 3, 7);
            let p = Partition::edge_cut(&g, k);
            assert_eq!(p.k(), k);
            let total: usize = (0..k).map(|s| p.shard_size(s)).sum();
            assert_eq!(total, 50);
            let cap = 50usize.div_ceil(k);
            for s in 0..k {
                assert!(p.shard_size(s) <= cap, "shard {s} over cap");
                assert!(p.shard_size(s) >= 1, "shard {s} empty");
            }
        }
    }

    #[test]
    fn no_shard_left_empty() {
        // a 5-node path at k = 4: the packer alone would fill three
        // shards (cap = 2) and leave the fourth empty
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..5).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let c = b.color("c");
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], c);
        }
        let g = b.build();
        for k in 1..=5usize {
            let p = Partition::edge_cut(&g, k);
            assert_eq!(p.k(), k);
            for s in 0..k {
                assert!(p.shard_size(s) >= 1, "k={k}: shard {s} empty");
            }
            assert_eq!((0..k).map(|s| p.shard_size(s)).sum::<usize>(), 5);
        }
    }

    #[test]
    fn sharded_graph_invariants() {
        for k in [1usize, 2, 3, 4] {
            let g = Arc::new(synthetic(60, 240, 2, 3, 11));
            check_invariants(&ShardedGraph::new(Arc::clone(&g), k));
        }
        check_invariants(&ShardedGraph::new(Arc::new(essembly()), 3));
    }

    #[test]
    fn clustered_graphs_cut_few_edges() {
        let g = Arc::new(clustered(400, 1600, 4, 2, 3, 30, 5));
        let sg = ShardedGraph::new(Arc::clone(&g), 4);
        let stats = sg.stats();
        assert!(
            stats.edge_cut_ratio() < 0.25,
            "partitioner should recover most of the community structure, got {:.1}% cut",
            100.0 * stats.edge_cut_ratio()
        );
        assert!(stats.balance() <= 1.01 + 1e-9);
        let line = stats.to_string();
        assert!(line.contains("4 shards"), "{line}");
    }

    #[test]
    fn explicit_partition_and_degenerate_cut() {
        // even/odd split of a path graph cuts every edge
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..8).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let c = b.color("c");
        for w in nodes.windows(2) {
            b.add_edge(w[0], w[1], c);
        }
        let g = Arc::new(b.build());
        let shard_of: Vec<u32> = (0..8).map(|v| (v % 2) as u32).collect();
        let sg =
            ShardedGraph::with_partition(Arc::clone(&g), Partition::from_shard_of(shard_of, 2));
        assert_eq!(sg.cut_edges().len(), g.edge_count());
        assert_eq!(sg.boundary_globals().len(), 8);
        assert_eq!(sg.shard(0).edge_count() + sg.shard(1).edge_count(), 0);
        check_invariants(&sg);
    }

    #[test]
    fn handles_k_larger_than_n_and_empty() {
        let g = Arc::new(synthetic(3, 2, 1, 1, 1));
        let sg = ShardedGraph::new(Arc::clone(&g), 10);
        assert_eq!(sg.k(), 3, "k clamps to |V|");
        check_invariants(&sg);
        let empty = Arc::new(GraphBuilder::new().build());
        let se = ShardedGraph::new(Arc::clone(&empty), 4);
        assert_eq!(se.graph().node_count(), 0);
        assert_eq!(se.stats().edge_cut_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = ">= k")]
    fn from_shard_of_validates() {
        Partition::from_shard_of(vec![0, 5], 2);
    }
}
