//! Dataset generators.
//!
//! The paper evaluates on two real-life datasets (a YouTube crawl and a
//! network derived from the Global Terrorism Database) plus parameterized
//! synthetic graphs. The real datasets are not redistributable, so this
//! module generates seeded random graphs with the *same schema, size,
//! color alphabet and density*; every algorithm in `rpq-core` is driven
//! only by attributes, colors and connectivity, so these stand-ins exercise
//! identical code paths (see DESIGN.md, "Substitutions").
//!
//! [`essembly`] is different: it is a verbatim reconstruction of the Fig. 1
//! example graph, built so that the worked Examples 2.2 and 2.3 of the paper
//! hold exactly (unit-tested in `rpq-core`).

use crate::attr::AttrValue;
use crate::builder::GraphBuilder;
use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Essembly social network fragment of Fig. 1.
///
/// Nodes: doctors `B1, B2` (against cloning), biologists `C1..C3`
/// (supporting cloning), `D1` = Alice001, and a physician `H1`. Edge colors:
/// `fa` (friends-allies), `fn` (friends-nemeses), `sa` (strangers-allies),
/// `sn` (strangers-nemeses).
///
/// The paper's query results on this graph:
/// * Q1 (RQ, `C --fa^2 fn--> B`) = {(C1,B1), (C1,B2), (C2,B1), (C2,B2)}
/// * Q2 (PQ) = the table of Example 2.3.
pub fn essembly() -> Graph {
    let mut b = GraphBuilder::new();
    let job = b.attr("job");
    let sp = b.attr("sp");
    let dsp = b.attr("dsp");
    let uid = b.attr("uid");

    let doctor = |b: &mut GraphBuilder, name: &str| {
        b.add_node(name, [(job, "doctor".into()), (dsp, "cloning".into())])
    };
    let biologist = |b: &mut GraphBuilder, name: &str| {
        b.add_node(name, [(job, "biologist".into()), (sp, "cloning".into())])
    };

    let b1 = doctor(&mut b, "B1");
    let b2 = doctor(&mut b, "B2");
    let c1 = biologist(&mut b, "C1");
    let c2 = biologist(&mut b, "C2");
    let c3 = biologist(&mut b, "C3");
    let d1 = b.add_node("D1", [(uid, "Alice001".into()), (sp, "cloning".into())]);
    let h1 = b.add_node("H1", [(job, "physician".into())]);

    let fa = b.color("fa");
    let fn_ = b.color("fn");
    let sa = b.color("sa");
    let sn = b.color("sn");

    // the biologists' friends-allies cycle
    b.add_edge(c1, c2, fa);
    b.add_edge(c2, c1, fa);
    b.add_edge(c2, c3, fa);
    b.add_edge(c3, c1, fa);
    // C3 is the biologist at odds with the doctors
    b.add_edge(c3, b1, fn_);
    b.add_edge(c3, b2, fn_);
    // and the doctors reciprocate
    b.add_edge(b1, c3, fn_);
    b.add_edge(b2, c3, fn_);
    // Alice's connections
    b.add_edge(c1, d1, sa);
    b.add_edge(b1, d1, fn_);
    b.add_edge(b2, d1, fn_);
    b.add_edge(d1, h1, sn);
    // the physician
    b.add_edge(h1, b1, fa);
    b.add_edge(h1, c1, sa);

    b.build()
}

/// Parameterized synthetic data graph `G(|V|, |E|)` (§6, "Synthetic data"):
/// `n` nodes, about `e` distinct edges with uniformly random endpoints and
/// colors, `n_attrs` integer attributes per node (`a0..`), values uniform in
/// `0..attr_domain`, and `n_colors` edge colors (`c0..`).
///
/// Deterministic in `seed`.
pub fn synthetic(n: usize, e: usize, n_attrs: usize, n_colors: usize, seed: u64) -> Graph {
    assert!(n > 1, "need at least two nodes");
    assert!(n_colors >= 1, "need at least one color");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let attr_domain = 10i64;

    let attr_ids: Vec<_> = (0..n_attrs).map(|i| b.attr(&format!("a{i}"))).collect();
    let colors: Vec<_> = (0..n_colors).map(|i| b.color(&format!("c{i}"))).collect();

    for i in 0..n {
        let pairs: Vec<_> = attr_ids
            .iter()
            .map(|&id| (id, AttrValue::Int(rng.gen_range(0..attr_domain))))
            .collect();
        b.add_node(&format!("v{i}"), pairs);
    }
    let nodes: Vec<_> = (0..n as u32).map(crate::graph::NodeId).collect();
    let mut seen = std::collections::HashSet::with_capacity(e * 2);
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < e && attempts < e * 20 {
        attempts += 1;
        let u = nodes[rng.gen_range(0..n)];
        let v = nodes[rng.gen_range(0..n)];
        if u == v {
            continue;
        }
        let c = colors[rng.gen_range(0..n_colors)];
        if seen.insert((u, v, c)) {
            b.add_edge(u, v, c);
            added += 1;
        }
    }
    b.build()
}

/// Synthetic graph with **community structure**: `n` nodes in `clusters`
/// equal contiguous blocks, about `e` edges of which roughly
/// `inter_permille`/1000 cross clusters and the rest stay inside one —
/// the regime real graphs are sharded in (social networks, web graphs and
/// road networks all partition with small edge cuts). Schema mirrors
/// [`synthetic`]: `n_attrs` integer attributes `a0..` uniform in `0..10`,
/// `n_colors` colors `c0..`.
///
/// This is the workload generator for the partitioned backend: an
/// edge-cut partitioner should recover the blocks and leave an edge-cut
/// ratio close to `inter_permille`/1000. Deterministic in `seed`.
pub fn clustered(
    n: usize,
    e: usize,
    clusters: usize,
    n_attrs: usize,
    n_colors: usize,
    inter_permille: u32,
    seed: u64,
) -> Graph {
    assert!(n > 1, "need at least two nodes");
    assert!(n_colors >= 1, "need at least one color");
    assert!((1..=n).contains(&clusters), "need 1..=n clusters");
    assert!(inter_permille <= 1000);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let attr_domain = 10i64;

    let attr_ids: Vec<_> = (0..n_attrs).map(|i| b.attr(&format!("a{i}"))).collect();
    let colors: Vec<_> = (0..n_colors).map(|i| b.color(&format!("c{i}"))).collect();
    for i in 0..n {
        let pairs: Vec<_> = attr_ids
            .iter()
            .map(|&id| (id, AttrValue::Int(rng.gen_range(0..attr_domain))))
            .collect();
        b.add_node(&format!("v{i}"), pairs);
    }
    // contiguous blocks of (almost) equal size
    let block = n.div_ceil(clusters);
    let bounds = |c: usize| (c * block, ((c + 1) * block).min(n));
    let mut seen = std::collections::HashSet::with_capacity(e * 2);
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < e && attempts < e * 30 {
        attempts += 1;
        let (u, v) = if rng.gen_range(0..1000u32) < inter_permille {
            // cross-cluster edge: endpoints from two distinct clusters
            let cu = rng.gen_range(0..clusters);
            let cv = (cu + rng.gen_range(1..clusters.max(2))) % clusters;
            let (ul, uh) = bounds(cu);
            let (vl, vh) = bounds(cv);
            if cu == cv || ul >= uh || vl >= vh {
                continue;
            }
            (rng.gen_range(ul..uh), rng.gen_range(vl..vh))
        } else {
            let c = rng.gen_range(0..clusters);
            let (lo, hi) = bounds(c);
            if hi - lo < 2 {
                continue;
            }
            (rng.gen_range(lo..hi), rng.gen_range(lo..hi))
        };
        if u == v {
            continue;
        }
        let c = colors[rng.gen_range(0..n_colors)];
        let (un, vn) = (
            crate::graph::NodeId(u as u32),
            crate::graph::NodeId(v as u32),
        );
        if seen.insert((un, vn, c)) {
            b.add_edge(un, vn, c);
            added += 1;
        }
    }
    b.build()
}

const YT_CATEGORIES: [&str; 12] = [
    "Music",
    "Film & Animation",
    "Comedy",
    "Sports",
    "News & Politics",
    "Gaming",
    "Howto & Style",
    "Education",
    "Science & Technology",
    "Entertainment",
    "Pets & Animals",
    "Travel & Events",
];

/// YouTube-like video network (§6, "Real-life data (a)").
///
/// Schema matches the paper's description: each node is a video with
/// `uid` (uploader), `cat` (category), `len` (minutes), `com` (comment
/// count), `age` (days since upload) and `view` (view count); edge colors
/// are `fc`/`fr` (friends recommendation/reference) and `sc`/`sr`
/// (strangers recommendation/reference). At `n = 8350` the density matches
/// the paper's 30 391 edges (≈ 3.64·n). Out-degrees are skewed (a few
/// popular videos attract many references), like real recommendation data.
///
/// Deterministic in `seed`.
pub fn youtube_like(n: usize, seed: u64) -> Graph {
    assert!(n > 10);
    let e = n * 30_391 / 8_350;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();

    let uid = b.attr("uid");
    let cat = b.attr("cat");
    let len = b.attr("len");
    let com = b.attr("com");
    let age = b.attr("age");
    let view = b.attr("view");
    let colors = [b.color("fc"), b.color("fr"), b.color("sc"), b.color("sr")];

    let n_uploaders = (n / 8).max(1) as i64;
    for i in 0..n {
        let popular = rng.gen_bool(0.1);
        let views: i64 = if popular {
            rng.gen_range(100_000..2_000_000)
        } else {
            rng.gen_range(10..100_000)
        };
        b.add_node(
            &format!("video{i}"),
            [
                (uid, AttrValue::Int(rng.gen_range(0..n_uploaders))),
                (
                    cat,
                    AttrValue::Str(YT_CATEGORIES[rng.gen_range(0..YT_CATEGORIES.len())].into()),
                ),
                (len, AttrValue::Int(rng.gen_range(0..240))),
                (
                    com,
                    AttrValue::Int((views / rng.gen_range(50..500i64)).max(0)),
                ),
                (age, AttrValue::Int(rng.gen_range(0..2_000))),
                (view, AttrValue::Int(views)),
            ],
        );
    }
    let mut seen = std::collections::HashSet::with_capacity(e * 2);
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < e && attempts < e * 20 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        // quadratic skew: low-index videos act as "popular" hubs
        let t: f64 = rng.gen::<f64>();
        let v = ((t * t) * n as f64) as usize;
        if u == v || v >= n {
            continue;
        }
        let c = colors[rng.gen_range(0..4usize)];
        let (un, vn) = (
            crate::graph::NodeId(u as u32),
            crate::graph::NodeId(v as u32),
        );
        if seen.insert((un, vn, c)) {
            b.add_edge(un, vn, c);
            added += 1;
        }
    }
    b.build()
}

const COUNTRIES: usize = 40;
const TARGET_TYPES: [&str; 10] = [
    "Business",
    "Military",
    "Police",
    "Government",
    "Private Citizens & Property",
    "Transportation",
    "Utilities",
    "Religious Figures/Institutions",
    "Educational Institution",
    "Media",
];
const ATTACK_TYPES: [&str; 7] = [
    "Bombing",
    "Armed Assault",
    "Assassination",
    "Hostage Taking",
    "Facility Attack",
    "Hijacking",
    "Unarmed Assault",
];

/// Terrorist-organization collaboration network (§6, "Real-life data (b)"),
/// standing in for the network the paper derives from the Global Terrorism
/// Database: 818 organizations, 1 600 collaboration edges with colors `ic`
/// (international) and `dc` (domestic), attributes `gn` (group name),
/// `country`, `tt` (target type) and `at` (attack type).
///
/// A handful of well-known group names from the paper's Fig. 9(a) are
/// planted so the example query has named anchors. Deterministic in `seed`.
pub fn terrorism_like(seed: u64) -> Graph {
    let n = 818;
    let e = 1_600;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();

    let gn = b.attr("gn");
    let country = b.attr("country");
    let tt = b.attr("tt");
    let at = b.attr("at");
    let ic = b.color("ic");
    let dc = b.color("dc");

    let planted = [
        "Hamas",
        "Tanzim",
        "MEND",
        "Carlos the Jackal",
        "SSP",
        "Lashkar-e-Jhangvi",
    ];
    let mut countries: Vec<i64> = Vec::with_capacity(n);
    let mut by_country: Vec<Vec<usize>> = vec![Vec::new(); COUNTRIES];
    for i in 0..n {
        let name = if i < planted.len() {
            planted[i].to_owned()
        } else {
            format!("TO-{i}")
        };
        let cty = rng.gen_range(0..COUNTRIES as i64);
        countries.push(cty);
        by_country[cty as usize].push(i);
        b.add_node(
            &format!("org{i}"),
            [
                (gn, AttrValue::Str(name)),
                (country, AttrValue::Int(cty)),
                (
                    tt,
                    AttrValue::Str(TARGET_TYPES[rng.gen_range(0..TARGET_TYPES.len())].into()),
                ),
                (
                    at,
                    AttrValue::Str(ATTACK_TYPES[rng.gen_range(0..ATTACK_TYPES.len())].into()),
                ),
            ],
        );
    }
    // Edge colors carry the GTD semantics: `dc` (domestic collaboration)
    // connects organizations of the same country, `ic` (international)
    // crosses countries. This structure is what makes color-blind matching
    // (the `Match` baseline) over-report, as in the paper's Fig. 9(b).
    let mut seen = std::collections::HashSet::with_capacity(e * 2);
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < e && attempts < e * 30 {
        attempts += 1;
        // collaborations cluster: half the edges touch the first 80 groups
        let pick = |rng: &mut StdRng| -> usize {
            if rng.gen_bool(0.5) {
                rng.gen_range(0..80usize.min(n))
            } else {
                rng.gen_range(0..n)
            }
        };
        let u = pick(&mut rng);
        let (v, c) = if rng.gen_bool(0.55) {
            // domestic: same-country partner
            let peers = &by_country[countries[u] as usize];
            if peers.len() < 2 {
                continue;
            }
            (peers[rng.gen_range(0..peers.len())], dc)
        } else {
            (pick(&mut rng), ic)
        };
        if u == v || (c == ic && countries[u] == countries[v]) {
            continue;
        }
        let (un, vn) = (
            crate::graph::NodeId(u as u32),
            crate::graph::NodeId(v as u32),
        );
        if seen.insert((un, vn, c)) {
            b.add_edge(un, vn, c);
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn essembly_shape() {
        let g = essembly();
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 14);
        assert_eq!(g.alphabet().len(), 4);
        let c3 = g.node_by_label("C3").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        assert!(g.has_edge(c3, b1, fnc));
        let job = g.schema().get("job").unwrap();
        assert_eq!(g.attrs(b1).get(job), Some(&AttrValue::Str("doctor".into())));
    }

    #[test]
    fn synthetic_sizes_and_determinism() {
        let g1 = synthetic(100, 300, 3, 4, 42);
        let g2 = synthetic(100, 300, 3, 4, 42);
        assert_eq!(g1.node_count(), 100);
        assert_eq!(g1.edge_count(), 300);
        assert_eq!(g1.alphabet().len(), 4);
        assert_eq!(g1.schema().len(), 3);
        // determinism
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
        // different seed, different graph
        let g3 = synthetic(100, 300, 3, 4, 43);
        let e3: Vec<_> = g3.edges().collect();
        assert_ne!(e1, e3);
    }

    #[test]
    fn clustered_shape_and_determinism() {
        let g1 = clustered(200, 800, 4, 2, 3, 50, 9);
        let g2 = clustered(200, 800, 4, 2, 3, 50, 9);
        assert_eq!(g1.node_count(), 200);
        assert!(
            g1.edge_count() >= 700,
            "density too low: {}",
            g1.edge_count()
        );
        assert_eq!(g1.alphabet().len(), 3);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2, "deterministic in seed");
        // most edges stay within a 50-node block
        let block = 50usize;
        let inter = g1
            .edges()
            .filter(|&(u, v, _)| u.index() / block != v.index() / block)
            .count();
        assert!(
            (inter as f64) < 0.15 * g1.edge_count() as f64,
            "expected ~5% cross-cluster edges, got {inter}/{}",
            g1.edge_count()
        );
    }

    #[test]
    fn youtube_like_schema() {
        let g = youtube_like(500, 7);
        assert_eq!(g.node_count(), 500);
        assert!(g.edge_count() > 1500, "density too low: {}", g.edge_count());
        for name in ["uid", "cat", "len", "com", "age", "view"] {
            assert!(g.schema().get(name).is_some(), "missing attr {name}");
        }
        for color in ["fc", "fr", "sc", "sr"] {
            assert!(g.alphabet().get(color).is_some(), "missing color {color}");
        }
    }

    #[test]
    fn terrorism_like_schema() {
        let g = terrorism_like(3);
        assert_eq!(g.node_count(), 818);
        assert!(g.edge_count() >= 1500);
        assert_eq!(g.alphabet().len(), 2);
        let gn = g.schema().get("gn").unwrap();
        let hamas = g
            .nodes()
            .find(|&v| g.attrs(v).get(gn) == Some(&AttrValue::Str("Hamas".into())));
        assert!(hamas.is_some());
    }
}
