//! The per-color shortest-distance matrix of §4.
//!
//! `M[v1][v2][c]` records the length of the shortest path from `v1` to `v2`
//! using only edges of color `c`; the extra wildcard layer records shortest
//! distances over edges of arbitrary colors. With the matrix, the atom tests
//! of the regex class F — "is there a path of color `c` and length ≤ k?" —
//! take constant time.
//!
//! As the paper notes, the O((m+1)·|V|²) space is the price of the fastest
//! evaluation strategy; for graphs where it is unaffordable, the runtime
//! bi-directional search backed by [`crate::cache::LruCache`] is used
//! instead.

use crate::algo::{bfs_distances_into, Direction};
use crate::color::{Color, WILDCARD};
use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// "Unreachable" marker in the distance matrix.
pub const INFINITY: u16 = u16::MAX;

/// Dense `(m+1) × |V| × |V|` matrix of shortest distances, one layer per
/// concrete color plus one wildcard layer.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    colors: usize, // concrete colors; the wildcard layer is index `colors`
    data: Vec<u16>,
}

impl DistanceMatrix {
    /// Build the matrix by running one BFS per (node, color) pair plus one
    /// wildcard BFS per node: O((m+1)·|V|·(|V|+|E|)) work, as in §4,
    /// parallelized across source nodes on one scoped thread per available
    /// core (the per-(node, color) BFSs are independent and each writes
    /// exactly one matrix row, so workers take disjoint contiguous row
    /// stripes and write in place — no post-merge, no per-BFS allocation).
    pub fn build(g: &Graph) -> Self {
        Self::build_with_workers(g, 0)
    }

    /// [`build`](DistanceMatrix::build) with an explicit worker count
    /// (`0` = one per available core).
    pub fn build_with_workers(g: &Graph, workers: usize) -> Self {
        let n = g.node_count();
        let m = g.alphabet().len();
        let mut data = vec![INFINITY; (m + 1) * n * n];
        let total_rows = (m + 1) * n;
        if total_rows == 0 {
            return DistanceMatrix { n, colors: m, data };
        }
        let hw = std::thread::available_parallelism().map_or(1, |c| c.get());
        let workers = (if workers == 0 { hw } else { workers }).clamp(1, total_rows);
        let rows_per = total_rows.div_ceil(workers);

        std::thread::scope(|s| {
            let mut rest: &mut [u16] = &mut data;
            let mut start = 0usize;
            while start < total_rows {
                let take = rows_per.min(total_rows - start);
                let (stripe, tail) = rest.split_at_mut(take * n);
                rest = tail;
                let lo = start;
                s.spawn(move || {
                    let mut queue = VecDeque::new();
                    for (i, row) in stripe.chunks_mut(n).enumerate() {
                        let idx = lo + i;
                        let (layer, src) = (idx / n, idx % n);
                        let color = if layer == m {
                            WILDCARD
                        } else {
                            Color(layer as u8)
                        };
                        bfs_distances_into(
                            g,
                            NodeId(src as u32),
                            color,
                            Direction::Forward,
                            row,
                            &mut queue,
                        );
                    }
                });
                start += take;
            }
        });
        DistanceMatrix { n, colors: m, data }
    }

    /// Estimated memory footprint in bytes (`(m+1)·|V|²·2`), so callers can
    /// decide between the matrix and the runtime cache, as §6 discusses.
    pub fn bytes_for(g: &Graph) -> usize {
        let n = g.node_count();
        (g.alphabet().len() + 1) * n * n * 2
    }

    #[inline]
    fn layer(&self, color: Color) -> usize {
        if color.is_wildcard() {
            self.colors
        } else {
            debug_assert!((color.0 as usize) < self.colors, "color outside alphabet");
            color.0 as usize
        }
    }

    /// Shortest distance from `from` to `to` along edges admitted by
    /// `color` ([`WILDCARD`] for any). `INFINITY` if unreachable;
    /// 0 if `from == to`.
    #[inline]
    pub fn dist(&self, from: NodeId, to: NodeId, color: Color) -> u16 {
        self.data[self.layer(color) * self.n * self.n + from.index() * self.n + to.index()]
    }

    /// Constant-time atom test: is there a **nonempty** path `from → to`
    /// whose edges all have color `color`, of length at most `max_len`
    /// (`None` = unbounded, the regex `c+`)?
    ///
    /// A self-loop-free node does not reach itself via an empty path: the
    /// paper's semantics requires |path| ≥ 1, which is why `from == to`
    /// needs the one-step detour check below.
    #[inline]
    pub fn reaches_within(
        &self,
        g: &Graph,
        from: NodeId,
        to: NodeId,
        color: Color,
        max_len: Option<u32>,
    ) -> bool {
        if from == to {
            // need a nonempty cycle: step one admitted edge, then come back
            return self.has_cycle_within(g, from, color, max_len);
        }
        let d = self.dist(from, to, color);
        if d == INFINITY || d == 0 {
            return false;
        }
        match max_len {
            None => true,
            Some(k) => (d as u32) <= k,
        }
    }

    /// Number of nodes this matrix was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The contiguous distance row from `from` along `color`: entry `z` is
    /// `dist(from, z, color)`. Row scans are sequential in memory, which
    /// is what makes matrix-based evaluation fast in practice (random
    /// per-pair probes into an 85 MB matrix are cache misses; a row is a
    /// few KB of streaming reads).
    #[inline]
    pub fn row(&self, from: NodeId, color: Color) -> &[u16] {
        let base = self.layer(color) * self.n * self.n + from.index() * self.n;
        &self.data[base..base + self.n]
    }

    /// Nonempty-cycle test at `from` (color-constrained): one admitted edge
    /// out of `from`, then back, within `max_len` total hops. This is the
    /// diagonal case row scans cannot read off the matrix (the diagonal
    /// stores 0, but the semantics needs paths of length ≥ 1).
    pub fn has_cycle_within(
        &self,
        g: &Graph,
        from: NodeId,
        color: Color,
        max_len: Option<u32>,
    ) -> bool {
        let budget = max_len.unwrap_or(u32::MAX);
        if budget == 0 {
            return false;
        }
        g.out_edges(from).iter().any(|e| {
            if !color.admits(e.color) {
                return false;
            }
            if e.node == from {
                return true;
            }
            let back = self.dist(e.node, from, color);
            back != INFINITY && (back as u32 + 1) <= budget
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        // a -r-> b -r-> d,  a -s-> c -s-> d, d -r-> a
        let mut b = GraphBuilder::new();
        let a = b.add_node("a", []);
        let bb = b.add_node("b", []);
        let c = b.add_node("c", []);
        let d = b.add_node("d", []);
        let r = b.color("r");
        let s = b.color("s");
        b.add_edge(a, bb, r);
        b.add_edge(bb, d, r);
        b.add_edge(a, c, s);
        b.add_edge(c, d, s);
        b.add_edge(d, a, r);
        b.build()
    }

    #[test]
    fn per_color_distances() {
        let g = diamond();
        let m = DistanceMatrix::build(&g);
        let a = g.node_by_label("a").unwrap();
        let d = g.node_by_label("d").unwrap();
        let r = g.alphabet().get("r").unwrap();
        let s = g.alphabet().get("s").unwrap();
        assert_eq!(m.dist(a, d, r), 2);
        assert_eq!(m.dist(a, d, s), 2);
        assert_eq!(m.dist(a, d, WILDCARD), 2);
        assert_eq!(m.dist(d, a, r), 1);
        assert_eq!(m.dist(d, a, s), INFINITY);
    }

    #[test]
    fn reaches_within_bounds() {
        let g = diamond();
        let m = DistanceMatrix::build(&g);
        let a = g.node_by_label("a").unwrap();
        let d = g.node_by_label("d").unwrap();
        let r = g.alphabet().get("r").unwrap();
        assert!(m.reaches_within(&g, a, d, r, Some(2)));
        assert!(!m.reaches_within(&g, a, d, r, Some(1)));
        assert!(m.reaches_within(&g, a, d, r, None));
        // nonempty-path semantics at the same node: a -r-> b -r-> d -r-> a
        assert!(m.reaches_within(&g, a, a, r, Some(3)));
        assert!(!m.reaches_within(&g, a, a, r, Some(2)));
        assert!(m.reaches_within(&g, a, a, r, None));
        let s = g.alphabet().get("s").unwrap();
        assert!(!m.reaches_within(&g, a, a, s, None));
    }

    #[test]
    fn self_loop_counts_as_cycle() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let r = b.color("r");
        b.add_edge(x, x, r);
        let g = b.build();
        let m = DistanceMatrix::build(&g);
        assert!(m.reaches_within(&g, x, x, r, Some(1)));
        assert!(!m.reaches_within(&g, x, x, r, Some(0)));
    }

    #[test]
    fn memory_estimate() {
        let g = diamond();
        assert_eq!(DistanceMatrix::bytes_for(&g), 3 * 4 * 4 * 2);
    }

    #[test]
    fn parallel_build_matches_serial() {
        let g = crate::gen::synthetic(97, 400, 2, 3, 13);
        let serial = DistanceMatrix::build_with_workers(&g, 1);
        for workers in [2, 3, 8, 1000] {
            let par = DistanceMatrix::build_with_workers(&g, workers);
            assert_eq!(par.data, serial.data, "workers = {workers}");
        }
        assert_eq!(DistanceMatrix::build(&g).data, serial.data);
    }
}
