//! A hand-rolled LRU cache.
//!
//! §4 of the paper proposes keeping "a distance cache using hashmap as
//! indices, which records the most frequently asked items", evicting with
//! the least-recently-used (LRU) strategy, for graphs too large for the
//! distance matrix. No LRU crate is in this project's allowed dependency
//! set, so this module implements the classic hashmap + intrusive
//! doubly-linked-list design (all operations O(1) expected). The slab is
//! kept dense: removal swap-removes, so memory never exceeds
//! `capacity` entries.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU map from `K` to `V`.
///
/// ```
/// use rpq_graph::cache::LruCache;
/// let mut c = LruCache::new(2);
/// c.insert("a", 1);
/// c.insert("b", 2);
/// c.get(&"a");          // refresh "a"
/// c.insert("c", 3);      // evicts "b", the least recently used
/// assert_eq!(c.get(&"b"), None);
/// assert_eq!(c.get(&"a"), Some(&1));
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    head: usize, // most recently used
    tail: usize, // least recently used
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// If `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruCache capacity must be positive");
        LruCache {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `(hits, misses)` counters for `get`, for instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// After the entry at `last` has been swapped into slot `idx`, repoint
    /// its map slot and its list neighbors (and head/tail) at `idx`.
    fn fix_after_swap(&mut self, idx: usize, last: usize) {
        let moved_key = self.slab[idx].key.clone();
        *self
            .map
            .get_mut(&moved_key)
            .expect("moved key must be mapped") = idx;
        let (p, nx) = (self.slab[idx].prev, self.slab[idx].next);
        if p != NIL {
            self.slab[p].next = idx;
        } else {
            self.head = idx;
        }
        if nx != NIL {
            self.slab[nx].prev = idx;
        } else {
            self.tail = idx;
        }
        debug_assert!(self.head != last && self.tail != last);
    }

    /// Look up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                if self.head != idx {
                    self.detach(idx);
                    self.push_front(idx);
                }
                Some(&self.slab[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Look up without touching recency or counters (for tests/debugging).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slab[idx].value)
    }

    /// Insert `key → value`, evicting the least-recently-used entry when
    /// at capacity. Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if self.head != idx {
                self.detach(idx);
                self.push_front(idx);
            }
            return None;
        }
        if self.slab.len() == self.capacity {
            // reuse the LRU slot in place
            let lru = self.tail;
            self.detach(lru);
            let old = std::mem::replace(
                &mut self.slab[lru],
                Entry {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                },
            );
            self.map.remove(&old.key);
            self.map.insert(key, lru);
            self.push_front(lru);
            return Some((old.key, old.value));
        }
        self.slab.push(Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        let idx = self.slab.len() - 1;
        self.map.insert(key, idx);
        self.push_front(idx);
        None
    }

    /// Remove `key` from the cache, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        let last = self.slab.len() - 1;
        if idx != last {
            self.slab.swap(idx, last);
            self.fix_after_swap(idx, last);
        }
        self.slab.pop().map(|e| e.value)
    }

    /// Drop all entries (capacity retained; counters reset).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.head = NIL;
        self.tail = NIL;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut c = LruCache::new(3);
        assert!(c.is_empty());
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some(&"one"));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.len(), 2);
        assert_eq!(c.capacity(), 3);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn eviction_order_is_lru() {
        let mut c = LruCache::new(2);
        c.insert(1, 1);
        c.insert(2, 2);
        c.get(&1); // 2 is now LRU
        let evicted = c.insert(3, 3);
        assert_eq!(evicted, Some((2, 2)));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&1));
        assert_eq!(c.get(&3), Some(&3));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh 1
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn remove_and_reuse() {
        let mut c = LruCache::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3);
        assert_eq!(c.remove(&2), Some(2));
        assert_eq!(c.remove(&2), None);
        assert_eq!(c.len(), 2);
        c.insert(4, 4);
        c.insert(5, 5); // evicts LRU = 1
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&3), Some(&3));
        assert_eq!(c.get(&4), Some(&4));
        assert_eq!(c.get(&5), Some(&5));
    }

    #[test]
    fn remove_head_and_tail() {
        let mut c = LruCache::new(3);
        c.insert(1, 1);
        c.insert(2, 2);
        c.insert(3, 3); // recency order: 3,2,1
        assert_eq!(c.remove(&3), Some(3)); // remove head
        assert_eq!(c.remove(&1), Some(1)); // remove tail
        assert_eq!(c.get(&2), Some(&2));
        c.insert(6, 6);
        c.insert(7, 7);
        c.insert(8, 8); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        c.insert('a', 1);
        assert_eq!(c.insert('b', 2), Some(('a', 1)));
        assert_eq!(c.peek(&'b'), Some(&2));
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(2);
        c.insert(1, 1);
        c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 0));
        c.insert(2, 2);
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    fn heavy_churn_consistency() {
        // cross-check against a naive model
        let mut c = LruCache::new(16);
        let mut model: Vec<(u32, u32)> = Vec::new(); // front = MRU
        let mut op = 0u32;
        for i in 0..20_000u32 {
            op = op.wrapping_mul(1664525).wrapping_add(1013904223 + i);
            let key = op % 48;
            match op % 5 {
                0 | 1 => {
                    // insert
                    if let Some(pos) = model.iter().position(|&(k, _)| k == key) {
                        model.remove(pos);
                    } else if model.len() == 16 {
                        model.pop();
                    }
                    model.insert(0, (key, i));
                    c.insert(key, i);
                }
                2 | 3 => {
                    let got = c.get(&key).copied();
                    let want = model.iter().position(|&(k, _)| k == key).map(|pos| {
                        let e = model.remove(pos);
                        model.insert(0, e);
                        e.1
                    });
                    assert_eq!(got, want, "get({key}) at step {i}");
                }
                _ => {
                    let got = c.remove(&key);
                    let want = model
                        .iter()
                        .position(|&(k, _)| k == key)
                        .map(|pos| model.remove(pos).1);
                    assert_eq!(got, want, "remove({key}) at step {i}");
                }
            }
            assert_eq!(c.len(), model.len());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u32, u32>::new(0);
    }
}
