//! Mutable construction of [`Graph`]s.

use crate::attr::{AttrValue, Attrs, Schema};
use crate::color::{Alphabet, Color};
use crate::graph::{EdgeRef, Graph, NodeId};

/// Accumulates nodes and edges, then freezes them into the CSR [`Graph`].
///
/// ```
/// use rpq_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let job = b.attr("job");
/// let alice = b.add_node("Alice", [(job, "doctor".into())]);
/// let bob = b.add_node("Bob", [(job, "biologist".into())]);
/// let fa = b.color("fa");
/// b.add_edge(alice, bob, fa);
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    schema: Schema,
    alphabet: Alphabet,
    labels: Vec<String>,
    attrs: Vec<Attrs>,
    edges: Vec<(NodeId, NodeId, Color)>,
}

impl GraphBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder whose alphabet and schema are pre-seeded (useful when queries
    /// are authored against a fixed vocabulary before data exists).
    pub fn with_vocabulary(schema: Schema, alphabet: Alphabet) -> Self {
        GraphBuilder {
            schema,
            alphabet,
            ..Default::default()
        }
    }

    /// Intern an attribute name.
    pub fn attr(&mut self, name: &str) -> crate::attr::AttrId {
        self.schema.intern(name)
    }

    /// Intern an edge color.
    pub fn color(&mut self, name: &str) -> Color {
        self.alphabet.intern(name)
    }

    /// Add a node with a label and attribute pairs; returns its id.
    pub fn add_node(
        &mut self,
        label: &str,
        attrs: impl IntoIterator<Item = (crate::attr::AttrId, AttrValue)>,
    ) -> NodeId {
        let id = NodeId(u32::try_from(self.labels.len()).expect("more than u32::MAX nodes"));
        self.labels.push(label.to_owned());
        self.attrs.push(Attrs::from_pairs(attrs));
        id
    }

    /// Convenience: add a node whose attributes are given by name.
    pub fn add_node_named(
        &mut self,
        label: &str,
        attrs: impl IntoIterator<Item = (&'static str, AttrValue)>,
    ) -> NodeId {
        let pairs: Vec<_> = attrs
            .into_iter()
            .map(|(name, v)| (self.schema.intern(name), v))
            .collect();
        self.add_node(label, pairs)
    }

    /// Add a directed edge `u → v` of color `c`.
    ///
    /// # Panics
    /// If `u` or `v` was not returned by `add_node`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, c: Color) {
        assert!(u.index() < self.labels.len(), "unknown source node");
        assert!(v.index() < self.labels.len(), "unknown target node");
        assert!(!c.is_wildcard(), "data edges must carry a concrete color");
        self.edges.push((u, v, c));
    }

    /// Convenience: add an edge by color name (interning it if new).
    pub fn add_edge_named(&mut self, u: NodeId, v: NodeId, color: &str) {
        let c = self.alphabet.intern(color);
        self.add_edge(u, v, c);
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edge insertions so far (before deduplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freeze into an immutable CSR [`Graph`]. Exact duplicate edges
    /// (same source, target and color) are dropped.
    pub fn build(mut self) -> Graph {
        let n = self.labels.len();
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &self.edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_adj = vec![
            EdgeRef {
                node: NodeId(0),
                color: Color(0)
            };
            self.edges.len()
        ];
        {
            let mut cursor = out_offsets.clone();
            for &(u, v, c) in &self.edges {
                let slot = cursor[u.index()] as usize;
                out_adj[slot] = EdgeRef { node: v, color: c };
                cursor[u.index()] += 1;
            }
        }

        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v, _) in &self.edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_adj = vec![
            EdgeRef {
                node: NodeId(0),
                color: Color(0)
            };
            self.edges.len()
        ];
        {
            let mut cursor = in_offsets.clone();
            for &(u, v, c) in &self.edges {
                let slot = cursor[v.index()] as usize;
                in_adj[slot] = EdgeRef { node: u, color: c };
                cursor[v.index()] += 1;
            }
        }

        Graph {
            schema: self.schema,
            alphabet: self.alphabet,
            labels: self.labels,
            attrs: self.attrs,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn in_and_out_adjacency_agree() {
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..6).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let c = b.color("c");
        let d = b.color("d");
        let edge_list = [
            (0, 1, c),
            (0, 2, d),
            (1, 3, c),
            (2, 3, d),
            (3, 0, c),
            (4, 5, d),
            (5, 4, c),
        ];
        for &(u, v, col) in &edge_list {
            b.add_edge(nodes[u], nodes[v], col);
        }
        let g = b.build();
        // every out edge appears as an in edge at its target and vice versa
        for (u, v, col) in g.edges() {
            assert!(g.in_edges(v).iter().any(|e| e.node == u && e.color == col));
        }
        let total_in: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        assert_eq!(total_in, g.edge_count());
    }

    #[test]
    #[should_panic(expected = "concrete color")]
    fn wildcard_data_edge_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        b.add_edge(x, y, crate::color::WILDCARD);
    }

    #[test]
    fn named_helpers() {
        let mut b = GraphBuilder::new();
        let x = b.add_node_named("x", [("age", 3.into())]);
        let y = b.add_node_named("y", [("age", 4.into())]);
        b.add_edge_named(x, y, "likes");
        let g = b.build();
        let age = g.schema().get("age").unwrap();
        assert_eq!(g.attrs(x).get(age), Some(&crate::attr::AttrValue::Int(3)));
        assert!(g.alphabet().get("likes").is_some());
    }
}
