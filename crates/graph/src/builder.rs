//! Mutable construction of [`Graph`]s.

use crate::attr::{AttrValue, Attrs, Schema};
use crate::color::{Alphabet, Color};
use crate::graph::{EdgeRef, Graph, NodeId};
use std::collections::HashSet;

/// Accumulates nodes and edges, then freezes them into the CSR [`Graph`].
///
/// Edges are kept in a hash set, so membership tests, insertions and
/// removals are O(1) — [`GraphBuilder::from_graph`] plus a handful of
/// [`insert_edge`](GraphBuilder::insert_edge) /
/// [`remove_edge`](GraphBuilder::remove_edge) calls is the cheap way to
/// derive an updated graph from an existing one (the rebuild itself stays
/// O(|V| + |E|)).
///
/// ```
/// use rpq_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// let job = b.attr("job");
/// let alice = b.add_node("Alice", [(job, "doctor".into())]);
/// let bob = b.add_node("Bob", [(job, "biologist".into())]);
/// let fa = b.color("fa");
/// b.add_edge(alice, bob, fa);
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    schema: Schema,
    alphabet: Alphabet,
    labels: Vec<String>,
    attrs: Vec<Attrs>,
    edges: HashSet<(NodeId, NodeId, Color)>,
}

impl GraphBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder whose alphabet and schema are pre-seeded (useful when queries
    /// are authored against a fixed vocabulary before data exists).
    pub fn with_vocabulary(schema: Schema, alphabet: Alphabet) -> Self {
        GraphBuilder {
            schema,
            alphabet,
            ..Default::default()
        }
    }

    /// Builder pre-loaded with `g`'s nodes (labels, attributes), vocabulary
    /// and edges — the starting point for *derived* graphs. Applying a
    /// small set of edge insertions/deletions and calling
    /// [`build`](GraphBuilder::build) costs O(|V| + |E| + updates) total,
    /// instead of re-adding every node and scanning the edge list per
    /// update.
    pub fn from_graph(g: &Graph) -> Self {
        GraphBuilder {
            schema: g.schema.clone(),
            alphabet: g.alphabet.clone(),
            labels: g.labels.clone(),
            attrs: g.attrs.clone(),
            edges: g.edges().collect(),
        }
    }

    /// Intern an attribute name.
    pub fn attr(&mut self, name: &str) -> crate::attr::AttrId {
        self.schema.intern(name)
    }

    /// Intern an edge color.
    pub fn color(&mut self, name: &str) -> Color {
        self.alphabet.intern(name)
    }

    /// Add a node with a label and attribute pairs; returns its id.
    pub fn add_node(
        &mut self,
        label: &str,
        attrs: impl IntoIterator<Item = (crate::attr::AttrId, AttrValue)>,
    ) -> NodeId {
        let id = NodeId(u32::try_from(self.labels.len()).expect("more than u32::MAX nodes"));
        self.labels.push(label.to_owned());
        self.attrs.push(Attrs::from_pairs(attrs));
        id
    }

    /// Convenience: add a node whose attributes are given by name.
    pub fn add_node_named(
        &mut self,
        label: &str,
        attrs: impl IntoIterator<Item = (&'static str, AttrValue)>,
    ) -> NodeId {
        let pairs: Vec<_> = attrs
            .into_iter()
            .map(|(name, v)| (self.schema.intern(name), v))
            .collect();
        self.add_node(label, pairs)
    }

    /// Add a directed edge `u → v` of color `c` (duplicates are dropped).
    ///
    /// # Panics
    /// If `u` or `v` was not returned by `add_node`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, c: Color) {
        self.insert_edge(u, v, c);
    }

    /// Add a directed edge `u → v` of color `c`; returns `true` iff the
    /// edge was not already present. O(1).
    ///
    /// # Panics
    /// If `u` or `v` was not returned by `add_node`.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, c: Color) -> bool {
        assert!(u.index() < self.labels.len(), "unknown source node");
        assert!(v.index() < self.labels.len(), "unknown target node");
        assert!(!c.is_wildcard(), "data edges must carry a concrete color");
        self.edges.insert((u, v, c))
    }

    /// Remove the edge `u → v` of color `c`; returns `true` iff it was
    /// present. O(1).
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId, c: Color) -> bool {
        self.edges.remove(&(u, v, c))
    }

    /// True if the edge `u → v` of color `c` has been added. O(1).
    pub fn has_edge(&self, u: NodeId, v: NodeId, c: Color) -> bool {
        self.edges.contains(&(u, v, c))
    }

    /// Convenience: add an edge by color name (interning it if new).
    pub fn add_edge_named(&mut self, u: NodeId, v: NodeId, color: &str) {
        let c = self.alphabet.intern(color);
        self.add_edge(u, v, c);
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freeze into an immutable CSR [`Graph`]. Edges are sorted by
    /// `(source, target, color)`, so each node's out-adjacency slice is
    /// sorted by `(target, color)` — [`Graph::has_edge`] relies on this for
    /// its binary search.
    pub fn build(self) -> Graph {
        let n = self.labels.len();
        let mut edges: Vec<(NodeId, NodeId, Color)> = self.edges.into_iter().collect();
        edges.sort_unstable();

        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_adj = vec![
            EdgeRef {
                node: NodeId(0),
                color: Color(0)
            };
            edges.len()
        ];
        {
            let mut cursor = out_offsets.clone();
            for &(u, v, c) in &edges {
                let slot = cursor[u.index()] as usize;
                out_adj[slot] = EdgeRef { node: v, color: c };
                cursor[u.index()] += 1;
            }
        }

        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v, _) in &edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_adj = vec![
            EdgeRef {
                node: NodeId(0),
                color: Color(0)
            };
            edges.len()
        ];
        {
            let mut cursor = in_offsets.clone();
            for &(u, v, c) in &edges {
                let slot = cursor[v.index()] as usize;
                in_adj[slot] = EdgeRef { node: u, color: c };
                cursor[v.index()] += 1;
            }
        }

        Graph {
            schema: self.schema,
            alphabet: self.alphabet,
            labels: self.labels,
            attrs: self.attrs,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn in_and_out_adjacency_agree() {
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..6).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let c = b.color("c");
        let d = b.color("d");
        let edge_list = [
            (0, 1, c),
            (0, 2, d),
            (1, 3, c),
            (2, 3, d),
            (3, 0, c),
            (4, 5, d),
            (5, 4, c),
        ];
        for &(u, v, col) in &edge_list {
            b.add_edge(nodes[u], nodes[v], col);
        }
        let g = b.build();
        // every out edge appears as an in edge at its target and vice versa
        for (u, v, col) in g.edges() {
            assert!(g.in_edges(v).iter().any(|e| e.node == u && e.color == col));
        }
        let total_in: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        assert_eq!(total_in, g.edge_count());
    }

    #[test]
    #[should_panic(expected = "concrete color")]
    fn wildcard_data_edge_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        b.add_edge(x, y, crate::color::WILDCARD);
    }

    #[test]
    fn edge_index_insert_remove() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        let c = b.color("c");
        assert!(b.insert_edge(x, y, c), "new edge");
        assert!(!b.insert_edge(x, y, c), "duplicate dropped");
        assert!(b.has_edge(x, y, c));
        assert_eq!(b.edge_count(), 1);
        assert!(b.remove_edge(x, y, c));
        assert!(!b.remove_edge(x, y, c), "already gone");
        assert!(!b.has_edge(x, y, c));
        assert_eq!(b.build().edge_count(), 0);
    }

    #[test]
    fn from_graph_round_trips_and_applies_deltas() {
        let mut b = GraphBuilder::new();
        let age = b.attr("age");
        let x = b.add_node("x", [(age, 3.into())]);
        let y = b.add_node("y", []);
        let z = b.add_node("z", []);
        let c = b.color("c");
        let d = b.color("d");
        b.add_edge(x, y, c);
        b.add_edge(y, z, d);
        let g = b.build();

        // identity rebuild preserves nodes, attributes and edges
        let same = GraphBuilder::from_graph(&g).build();
        assert_eq!(same.node_count(), g.node_count());
        assert_eq!(same.edge_count(), g.edge_count());
        assert_eq!(same.label(x), "x");
        assert_eq!(same.attrs(x).get(age), Some(&AttrValue::Int(3)));
        assert!(same.has_edge(x, y, c));

        // delta rebuild: one removal, one insertion
        let mut delta = GraphBuilder::from_graph(&g);
        assert!(delta.remove_edge(x, y, c));
        assert!(delta.insert_edge(z, x, c));
        let g2 = delta.build();
        assert!(!g2.has_edge(x, y, c));
        assert!(g2.has_edge(z, x, c));
        assert!(g2.has_edge(y, z, d));
    }

    #[test]
    fn named_helpers() {
        let mut b = GraphBuilder::new();
        let x = b.add_node_named("x", [("age", 3.into())]);
        let y = b.add_node_named("y", [("age", 4.into())]);
        b.add_edge_named(x, y, "likes");
        let g = b.build();
        let age = g.schema().get("age").unwrap();
        assert_eq!(g.attrs(x).get(age), Some(&crate::attr::AttrValue::Int(3)));
        assert!(g.alphabet().get("likes").is_some());
    }
}
