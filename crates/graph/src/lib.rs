//! # rpq-graph — data-graph substrate
//!
//! The data-graph model of Fan et al., *"Adding regular expressions to graph
//! reachability and pattern queries"* (ICDE 2011, §2): a directed graph
//! `G = (V, E, f_A, f_C)` where
//!
//! * every node `v ∈ V` carries a tuple of attribute/value pairs (`f_A`), and
//! * every edge `e ∈ E` carries a *color* (edge type) drawn from a finite
//!   alphabet Σ (`f_C`).
//!
//! This crate provides:
//!
//! * the graph representation itself ([`Graph`], [`GraphBuilder`]) — CSR
//!   forward and reverse adjacency for cache-friendly traversal,
//! * attribute storage and interning ([`attr`]),
//! * the color alphabet ([`color`]),
//! * graph algorithms the query engine relies on ([`algo`]): per-color BFS,
//!   Tarjan's strongly-connected components, reverse topological order,
//! * the per-color shortest-distance matrix of §4 ([`distance`]),
//! * a hand-rolled LRU cache used by the runtime (bi-directional BFS)
//!   evaluation strategy ([`cache`]),
//! * dataset generators standing in for the paper's real-life data ([`gen`]),
//! * edge-cut partitioning and the sharded storage view ([`partition`]):
//!   [`Partition`] assigns nodes to `k` balanced shards, [`ShardedGraph`]
//!   materializes per-shard local graphs plus the cut-edge/boundary residue
//!   that `rpq-index` builds its overlay labels over.

pub mod algo;
pub mod attr;
pub mod builder;
pub mod cache;
pub mod color;
pub mod distance;
pub mod gen;
pub mod graph;
pub mod io;
pub mod partition;

pub use attr::{AttrId, AttrValue, Attrs, Schema};
pub use builder::GraphBuilder;
pub use color::{Alphabet, Color, WILDCARD};
pub use distance::{DistanceMatrix, INFINITY};
pub use graph::{EdgeRef, Graph, NodeId};
pub use partition::{DriftMonitor, Partition, ShardStats, ShardedGraph};
