//! Graph algorithms used by the query engine: color-constrained BFS,
//! single-pair bi-directional BFS, Tarjan's SCC, and condensation
//! (SCC DAG) construction.
//!
//! The SCC routines are generic over a successor function so that the same
//! code serves both data graphs and the (tiny) pattern graphs of `rpq-core`.

use crate::color::Color;
use crate::distance::INFINITY;
use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Traversal direction for BFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges (distances *from* the source).
    Forward,
    /// Follow in-edges (distances *to* the source).
    Backward,
}

/// Single-source BFS distances along edges admitted by `color`
/// (use [`crate::WILDCARD`] for "any color").
///
/// Returns one `u16` distance per node; unreachable nodes get
/// [`INFINITY`]. The source itself is at distance 0. Distances larger than
/// `u16::MAX - 1` saturate to `u16::MAX - 1` (irrelevant in practice: the
/// paper's hop bounds are single digits).
pub fn bfs_distances(g: &Graph, src: NodeId, color: Color, dir: Direction) -> Vec<u16> {
    let mut dist = vec![INFINITY; g.node_count()];
    let mut queue = VecDeque::new();
    bfs_distances_into(g, src, color, dir, &mut dist, &mut queue);
    dist
}

/// [`bfs_distances`] into caller-owned buffers: `dist` (length `|V|`, reset
/// to [`INFINITY`] here) and `queue` (cleared here).
///
/// Index construction runs one BFS per (node, color) pair; allocating a
/// fresh `Vec<u16>` plus queue for each would dominate the build on big
/// graphs, so bulk callers ([`DistanceMatrix::build`](crate::DistanceMatrix::build))
/// hand the same buffers to every call — or, for the matrix, the target row
/// itself, making the build allocation-free per (node, color).
pub fn bfs_distances_into(
    g: &Graph,
    src: NodeId,
    color: Color,
    dir: Direction,
    dist: &mut [u16],
    queue: &mut VecDeque<NodeId>,
) {
    debug_assert_eq!(dist.len(), g.node_count(), "dist buffer sized to |V|");
    dist.fill(INFINITY);
    queue.clear();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        let next = du.saturating_add(1).min(u16::MAX - 1);
        let adj = match dir {
            Direction::Forward => g.out_edges(u),
            Direction::Backward => g.in_edges(u),
        };
        for e in adj {
            if color.admits(e.color) && dist[e.node.index()] == INFINITY {
                dist[e.node.index()] = next;
                queue.push_back(e.node);
            }
        }
    }
}

/// Shortest distance from `from` to `to` along edges admitted by `color`,
/// computed by *bi-directional* BFS (§4 of the paper): two frontiers, one
/// expanding forward from `from`, one backward from `to`; the smaller
/// frontier is expanded each round.
///
/// Returns `None` if `to` is unreachable. A distance of 0 means
/// `from == to`; note the paper's path semantics requires *nonempty* paths,
/// which callers handle by asking for a positive distance or by stepping
/// one edge first.
pub fn bidirectional_distance(g: &Graph, from: NodeId, to: NodeId, color: Color) -> Option<u32> {
    if from == to {
        return Some(0);
    }
    let n = g.node_count();
    // visited depth + 1, 0 = unvisited, per side
    let mut fwd = vec![0u32; n];
    let mut bwd = vec![0u32; n];
    fwd[from.index()] = 1;
    bwd[to.index()] = 1;
    let mut fq: Vec<NodeId> = vec![from];
    let mut bq: Vec<NodeId> = vec![to];
    let mut fdepth = 0u32;
    let mut bdepth = 0u32;

    while !fq.is_empty() && !bq.is_empty() {
        // expand the smaller frontier
        if fq.len() <= bq.len() {
            fdepth += 1;
            let mut next = Vec::new();
            for &u in &fq {
                for e in g.out_edges(u) {
                    if !color.admits(e.color) {
                        continue;
                    }
                    let vi = e.node.index();
                    if bwd[vi] != 0 {
                        return Some(fdepth + (bwd[vi] - 1));
                    }
                    if fwd[vi] == 0 {
                        fwd[vi] = fdepth + 1;
                        next.push(e.node);
                    }
                }
            }
            fq = next;
        } else {
            bdepth += 1;
            let mut next = Vec::new();
            for &u in &bq {
                for e in g.in_edges(u) {
                    if !color.admits(e.color) {
                        continue;
                    }
                    let vi = e.node.index();
                    if fwd[vi] != 0 {
                        return Some(bdepth + (fwd[vi] - 1));
                    }
                    if bwd[vi] == 0 {
                        bwd[vi] = bdepth + 1;
                        next.push(e.node);
                    }
                }
            }
            bq = next;
        }
    }
    None
}

/// Strongly connected components via Tarjan's algorithm (iterative, so deep
/// graphs cannot overflow the call stack).
///
/// Generic over the successor function: `succ(v)` yields the out-neighbors
/// of node `v ∈ 0..n`. Components are returned in **reverse topological
/// order** of the condensation (a component is emitted only after every
/// component it can reach), which is exactly the processing order
/// `JoinMatch` needs (§5.1).
pub fn tarjan_scc<F, I>(n: usize, succ: F) -> Vec<Vec<usize>>
where
    F: Fn(usize) -> I,
    I: Iterator<Item = usize>,
{
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0u32;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    // explicit DFS stack: (node, iterator state via restart index)
    enum Frame<I> {
        Enter(usize),
        Resume(usize, I, usize), // (v, iterator, last child)
    }
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        let mut call: Vec<Frame<I>> = vec![Frame::Enter(root)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call.push(Frame::Resume(v, succ(v), usize::MAX));
                }
                Frame::Resume(v, mut it, child) => {
                    if child != usize::MAX {
                        lowlink[v] = lowlink[v].min(lowlink[child]);
                    }
                    let mut descended = false;
                    while let Some(w) = it.next() {
                        if index[w] == UNVISITED {
                            call.push(Frame::Resume(v, it, w));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comps.push(comp);
                    }
                }
            }
        }
    }
    comps
}

/// The condensation (SCC DAG) of a graph given by a successor function:
/// returns `(comp_of, comps)` where `comp_of[v]` is the index of `v`'s
/// component in `comps`, and `comps` is in reverse topological order
/// (as produced by [`tarjan_scc`]).
pub fn condensation<F, I>(n: usize, succ: F) -> (Vec<usize>, Vec<Vec<usize>>)
where
    F: Fn(usize) -> I,
    I: Iterator<Item = usize>,
{
    let comps = tarjan_scc(n, &succ);
    let mut comp_of = vec![0usize; n];
    for (ci, comp) in comps.iter().enumerate() {
        for &v in comp {
            comp_of[v] = ci;
        }
    }
    (comp_of, comps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::color::WILDCARD;

    fn chain_graph(k: usize) -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let ns: Vec<_> = (0..k).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let c = b.color("c");
        for w in ns.windows(2) {
            b.add_edge(w[0], w[1], c);
        }
        (b.build(), ns)
    }

    #[test]
    fn bfs_chain() {
        let (g, ns) = chain_graph(5);
        let c = g.alphabet().get("c").unwrap();
        let d = bfs_distances(&g, ns[0], c, Direction::Forward);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let back = bfs_distances(&g, ns[4], c, Direction::Backward);
        assert_eq!(back, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn bfs_respects_colors() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        let z = b.add_node("z", []);
        let r = b.color("r");
        let s = b.color("s");
        b.add_edge(x, y, r);
        b.add_edge(y, z, s);
        let g = b.build();
        let dr = bfs_distances(&g, x, r, Direction::Forward);
        assert_eq!(dr[z.index()], INFINITY);
        let dw = bfs_distances(&g, x, WILDCARD, Direction::Forward);
        assert_eq!(dw[z.index()], 2);
    }

    #[test]
    fn bidirectional_agrees_with_bfs() {
        let (g, ns) = chain_graph(8);
        let c = g.alphabet().get("c").unwrap();
        for i in 0..8 {
            for j in 0..8 {
                let uni = bfs_distances(&g, ns[i], c, Direction::Forward)[ns[j].index()];
                let bi = bidirectional_distance(&g, ns[i], ns[j], c);
                if uni == INFINITY {
                    assert_eq!(bi, None, "{i}->{j}");
                } else {
                    assert_eq!(bi, Some(uni as u32), "{i}->{j}");
                }
            }
        }
    }

    #[test]
    fn bidirectional_cycle() {
        let mut b = GraphBuilder::new();
        let ns: Vec<_> = (0..6).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let c = b.color("c");
        for i in 0..6 {
            b.add_edge(ns[i], ns[(i + 1) % 6], c);
        }
        let g = b.build();
        assert_eq!(bidirectional_distance(&g, ns[0], ns[3], c), Some(3));
        assert_eq!(bidirectional_distance(&g, ns[3], ns[0], c), Some(3));
        assert_eq!(bidirectional_distance(&g, ns[0], ns[0], c), Some(0));
    }

    #[test]
    fn scc_simple() {
        // 0 <-> 1, 2 alone, 1 -> 2
        let adj = [vec![1], vec![0, 2], vec![]];
        let comps = tarjan_scc(3, |v| adj[v].iter().copied());
        assert_eq!(comps.len(), 2);
        // reverse topological: {2} first, then {0,1}
        let mut first = comps[0].clone();
        first.sort_unstable();
        assert_eq!(first, vec![2]);
        let mut second = comps[1].clone();
        second.sort_unstable();
        assert_eq!(second, vec![0, 1]);
    }

    #[test]
    fn scc_reverse_topological_order() {
        // DAG of three 2-cycles: A -> B -> C
        // nodes: A={0,1}, B={2,3}, C={4,5}
        let adj = [vec![1], vec![0, 2], vec![3], vec![2, 4], vec![5], vec![4]];
        let (comp_of, comps) = condensation(6, |v| adj[v].iter().copied());
        assert_eq!(comps.len(), 3);
        // C (reaching nothing) must come before B, B before A
        assert!(comp_of[4] < comp_of[2]);
        assert!(comp_of[2] < comp_of[0]);
    }

    #[test]
    fn scc_deep_chain_no_overflow() {
        // 100k-node chain: a recursive Tarjan would blow the stack
        let n = 100_000;
        let comps = tarjan_scc(n, |v| {
            if v + 1 < n { Some(v + 1) } else { None }.into_iter()
        });
        assert_eq!(comps.len(), n);
    }

    #[test]
    fn scc_big_cycle() {
        let n = 50_000;
        let comps = tarjan_scc(n, move |v| std::iter::once((v + 1) % n));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n);
    }
}
