//! Edge colors (types) and the finite alphabet Σ.
//!
//! Every edge of a data graph bears one color from a finite alphabet (the
//! paper's `f_C : E → Σ`). Colors are interned in an [`Alphabet`] and stored
//! as a single byte on each edge.

use std::collections::HashMap;
use std::fmt;

/// Interned edge color. Index into an [`Alphabet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Color(pub u8);

/// The wildcard `_` of the paper's regular-expression class: a variable that
/// stands for *any* color in Σ. It is not a member of the alphabet; it only
/// appears in queries, never on data edges.
pub const WILDCARD: Color = Color(u8::MAX);

impl Color {
    /// True if this is the query-side wildcard `_`.
    pub fn is_wildcard(self) -> bool {
        self == WILDCARD
    }

    /// Does a data edge of color `data` satisfy this (possibly wildcard)
    /// query color?
    pub fn admits(self, data: Color) -> bool {
        self.is_wildcard() || self == data
    }
}

/// Interner for color names — the alphabet Σ of a data graph.
#[derive(Debug, Default, Clone)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Color>,
}

impl Alphabet {
    /// Empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an alphabet from a list of names.
    pub fn from_names<'a>(names: impl IntoIterator<Item = &'a str>) -> Self {
        let mut a = Alphabet::new();
        for n in names {
            a.intern(n);
        }
        a
    }

    /// Intern `name`, returning its color (existing or fresh).
    ///
    /// # Panics
    /// If more than 254 distinct colors are interned (color 255 is reserved
    /// for the wildcard). The paper's graphs use at most a handful.
    pub fn intern(&mut self, name: &str) -> Color {
        if let Some(&c) = self.index.get(name) {
            return c;
        }
        assert!(self.names.len() < WILDCARD.0 as usize, "alphabet overflow");
        let c = Color(self.names.len() as u8);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), c);
        c
    }

    /// Look up an already-interned color by name. `"_"` resolves to the
    /// wildcard.
    pub fn get(&self, name: &str) -> Option<Color> {
        if name == "_" {
            return Some(WILDCARD);
        }
        self.index.get(name).copied()
    }

    /// The name behind `c` (`"_"` for the wildcard).
    pub fn name(&self, c: Color) -> &str {
        if c.is_wildcard() {
            "_"
        } else {
            &self.names[c.0 as usize]
        }
    }

    /// Number of concrete colors (excludes the wildcard).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no colors have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all concrete colors.
    pub fn colors(&self) -> impl Iterator<Item = Color> {
        (0..self.names.len() as u8).map(Color)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_wildcard() {
            write!(f, "_")
        } else {
            write!(f, "c{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_lookup() {
        let mut a = Alphabet::new();
        let fa = a.intern("fa");
        let fn_ = a.intern("fn");
        assert_eq!(a.intern("fa"), fa);
        assert_ne!(fa, fn_);
        assert_eq!(a.get("fn"), Some(fn_));
        assert_eq!(a.name(fa), "fa");
        assert_eq!(a.len(), 2);
        assert_eq!(a.colors().count(), 2);
    }

    #[test]
    fn wildcard_behaviour() {
        let a = Alphabet::from_names(["x", "y"]);
        assert_eq!(a.get("_"), Some(WILDCARD));
        assert_eq!(a.name(WILDCARD), "_");
        assert!(WILDCARD.admits(Color(0)));
        assert!(WILDCARD.admits(Color(7)));
        assert!(Color(1).admits(Color(1)));
        assert!(!Color(1).admits(Color(0)));
        // the wildcard does not count as an alphabet member
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(Color(3).to_string(), "c3");
        assert_eq!(WILDCARD.to_string(), "_");
    }
}
