//! Node attributes.
//!
//! Each node of a data graph carries a tuple `(A1 = a1, …, An = an)` (the
//! paper's `f_A`). Attribute *names* are interned in a [`Schema`] so a node
//! only stores compact `(AttrId, AttrValue)` pairs, sorted by id for
//! logarithmic lookup.

use std::collections::HashMap;
use std::fmt;

/// Interned attribute name. Index into [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u16);

/// An attribute value: either a 64-bit integer or a string.
///
/// The paper leaves the value domain abstract ("constant values"); integers
/// and strings cover every attribute used in its examples and experiments
/// (ids, categories, view counts, ages, names, …). Both domains are totally
/// ordered, so all six comparison operators are meaningful.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttrValue {
    /// Integer value, e.g. `age = 300`.
    Int(i64),
    /// String value, e.g. `cat = "Music"`. Ordered lexicographically.
    Str(String),
}

impl AttrValue {
    /// True if both values come from the same domain (Int vs Str) and are
    /// therefore comparable.
    pub fn same_domain(&self, other: &AttrValue) -> bool {
        matches!(
            (self, other),
            (AttrValue::Int(_), AttrValue::Int(_)) | (AttrValue::Str(_), AttrValue::Str(_))
        )
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Interner for attribute names, shared by a graph and the queries posed on
/// it. Query predicates and node tuples refer to attributes by [`AttrId`].
#[derive(Debug, Default, Clone)]
pub struct Schema {
    names: Vec<String>,
    index: HashMap<String, AttrId>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = AttrId(u16::try_from(self.names.len()).expect("more than u16::MAX attributes"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<AttrId> {
        self.index.get(name).copied()
    }

    /// The name behind `id`.
    pub fn name(&self, id: AttrId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned attribute names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// The attribute tuple of a single node: `(A1 = a1, …, An = an)`, stored
/// sorted by [`AttrId`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Attrs {
    pairs: Vec<(AttrId, AttrValue)>,
}

impl Attrs {
    /// Empty tuple (a node with no attributes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unsorted pairs. Later duplicates of the same attribute
    /// overwrite earlier ones.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (AttrId, AttrValue)>) -> Self {
        let mut a = Attrs::new();
        for (id, v) in pairs {
            a.set(id, v);
        }
        a
    }

    /// Set attribute `id` to `value` (insert or overwrite).
    pub fn set(&mut self, id: AttrId, value: AttrValue) {
        match self.pairs.binary_search_by_key(&id, |p| p.0) {
            Ok(i) => self.pairs[i].1 = value,
            Err(i) => self.pairs.insert(i, (id, value)),
        }
    }

    /// The value of attribute `id`, if the node has it.
    pub fn get(&self, id: AttrId) -> Option<&AttrValue> {
        self.pairs
            .binary_search_by_key(&id, |p| p.0)
            .ok()
            .map(|i| &self.pairs[i].1)
    }

    /// Iterate over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &AttrValue)> {
        self.pairs.iter().map(|(id, v)| (*id, v))
    }

    /// Number of attributes on this node.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the node has no attributes.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_interns_once() {
        let mut s = Schema::new();
        let a = s.intern("job");
        let b = s.intern("age");
        let a2 = s.intern("job");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(s.name(a), "job");
        assert_eq!(s.name(b), "age");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("job"), Some(a));
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn attrs_set_get_overwrite() {
        let mut s = Schema::new();
        let job = s.intern("job");
        let age = s.intern("age");
        let mut a = Attrs::new();
        assert!(a.is_empty());
        a.set(job, "doctor".into());
        a.set(age, 41.into());
        assert_eq!(a.get(job), Some(&AttrValue::Str("doctor".into())));
        assert_eq!(a.get(age), Some(&AttrValue::Int(41)));
        a.set(job, "biologist".into());
        assert_eq!(a.get(job), Some(&AttrValue::Str("biologist".into())));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn attrs_sorted_iteration() {
        let mut s = Schema::new();
        let ids: Vec<_> = (0..5).map(|i| s.intern(&format!("a{i}"))).collect();
        let a = Attrs::from_pairs(vec![
            (ids[3], 3.into()),
            (ids[0], 0.into()),
            (ids[4], 4.into()),
            (ids[1], 1.into()),
        ]);
        let order: Vec<_> = a.iter().map(|(id, _)| id).collect();
        assert_eq!(order, vec![ids[0], ids[1], ids[3], ids[4]]);
    }

    #[test]
    fn value_domains() {
        assert!(AttrValue::Int(1).same_domain(&AttrValue::Int(2)));
        assert!(AttrValue::Str("x".into()).same_domain(&AttrValue::Str("y".into())));
        assert!(!AttrValue::Int(1).same_domain(&AttrValue::Str("1".into())));
        assert!(AttrValue::Int(1) < AttrValue::Int(2));
        assert!(AttrValue::Str("a".into()) < AttrValue::Str("b".into()));
    }

    #[test]
    fn value_display() {
        assert_eq!(AttrValue::Int(7).to_string(), "7");
        assert_eq!(AttrValue::Str("x".into()).to_string(), "\"x\"");
    }
}
