//! Property-based tests for the graph substrate: the LRU cache against a
//! naive model, BFS against pairwise bidirectional search, the distance
//! matrix against fresh BFS, and text-format round-trips.

use proptest::prelude::*;
use rpq_graph::algo::{bfs_distances, bidirectional_distance, Direction};
use rpq_graph::cache::LruCache;
use rpq_graph::{Color, DistanceMatrix, GraphBuilder, NodeId, INFINITY, WILDCARD};

#[derive(Debug, Clone)]
enum CacheOp {
    Insert(u8, u16),
    Get(u8),
    Remove(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u16>()).prop_map(|(k, v)| CacheOp::Insert(k % 24, v)),
            any::<u8>().prop_map(|k| CacheOp::Get(k % 24)),
            any::<u8>().prop_map(|k| CacheOp::Remove(k % 24)),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn lru_matches_reference_model(ops in arb_ops(), cap in 1usize..12) {
        let mut cache = LruCache::new(cap);
        let mut model: Vec<(u8, u16)> = Vec::new(); // front = most recent
        for op in ops {
            match op {
                CacheOp::Insert(k, v) => {
                    if let Some(pos) = model.iter().position(|&(mk, _)| mk == k) {
                        model.remove(pos);
                    } else if model.len() == cap {
                        model.pop();
                    }
                    model.insert(0, (k, v));
                    cache.insert(k, v);
                }
                CacheOp::Get(k) => {
                    let want = model.iter().position(|&(mk, _)| mk == k).map(|pos| {
                        let e = model.remove(pos);
                        model.insert(0, e);
                        e.1
                    });
                    prop_assert_eq!(cache.get(&k).copied(), want);
                }
                CacheOp::Remove(k) => {
                    let want = model
                        .iter()
                        .position(|&(mk, _)| mk == k)
                        .map(|pos| model.remove(pos).1);
                    prop_assert_eq!(cache.remove(&k), want);
                }
            }
            prop_assert_eq!(cache.len(), model.len());
        }
    }
}

/// Interleaved get/insert sequences only (no removes): the shape of
/// concurrent engine traffic, where workers probe and memoize but never
/// invalidate.
fn arb_get_insert_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u16>()).prop_map(|(k, v)| CacheOp::Insert(k % 32, v)),
            any::<u8>().prop_map(|k| CacheOp::Get(k % 32)),
        ],
        0..300,
    )
}

proptest! {
    /// After any interleaved get/insert sequence: the number of entries
    /// never exceeds capacity, and every eviction removes exactly the
    /// least-recently-used key (gets count as uses).
    #[test]
    fn lru_capacity_and_eviction_order(ops in arb_get_insert_ops(), cap in 1usize..10) {
        let mut cache = LruCache::new(cap);
        let mut order: Vec<u8> = Vec::new(); // front = most recently used
        for op in ops {
            match op {
                CacheOp::Insert(k, v) => {
                    let evicted = cache.insert(k, v);
                    if let Some(pos) = order.iter().position(|&x| x == k) {
                        order.remove(pos);
                        prop_assert_eq!(evicted, None, "re-insert of a live key must not evict");
                    } else if order.len() == cap {
                        let lru = order.pop().expect("full cache is nonempty");
                        prop_assert_eq!(
                            evicted.map(|(ek, _)| ek),
                            Some(lru),
                            "eviction must take the LRU key"
                        );
                    } else {
                        prop_assert_eq!(evicted, None, "eviction below capacity");
                    }
                    order.insert(0, k);
                }
                CacheOp::Get(k) => {
                    let hit = cache.get(&k).is_some();
                    let pos = order.iter().position(|&x| x == k);
                    prop_assert_eq!(hit, pos.is_some());
                    if let Some(pos) = pos {
                        let e = order.remove(pos);
                        order.insert(0, e);
                    }
                }
                CacheOp::Remove(_) => unreachable!("generator emits no removes"),
            }
            prop_assert!(cache.len() <= cap, "capacity exceeded: {} > {cap}", cache.len());
        }
    }
}

/// Engine-style concurrent use: worker threads hammer one shared cache
/// with interleaved get/insert. Capacity must never be exceeded and every
/// hit must return the value inserted for that key.
#[test]
fn lru_capacity_never_exceeded_under_concurrent_use() {
    use std::sync::Mutex;

    const CAP: usize = 16;
    const THREADS: u64 = 4;
    const OPS: u64 = 5_000;
    let cache = Mutex::new(LruCache::new(CAP));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = &cache;
            s.spawn(move || {
                // SplitMix64-ish per-thread stream
                let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1);
                for _ in 0..OPS {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = (x >> 33) % 64;
                    let mut c = cache.lock().unwrap();
                    if x.is_multiple_of(2) {
                        c.insert(key, key * 31);
                    } else if let Some(&v) = c.get(&key) {
                        assert_eq!(v, key * 31, "foreign value for key {key}");
                    }
                    assert!(c.len() <= CAP, "capacity exceeded: {}", c.len());
                }
            });
        }
    });
    let c = cache.into_inner().unwrap();
    assert!(c.len() <= CAP && !c.is_empty());
    let (hits, misses) = c.stats();
    assert!(hits + misses > 0);
}

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u8, u8, u8)>)> {
    (2usize..14).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u8, 0..n as u8, 0u8..3), 0..40);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u8, u8, u8)]) -> rpq_graph::Graph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_node(&format!("n{i}"), []);
    }
    for c in 0..3 {
        b.color(&format!("c{c}"));
    }
    for &(u, v, c) in edges {
        if u != v {
            b.add_edge(NodeId(u as u32), NodeId(v as u32), Color(c));
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The matrix agrees with per-source BFS on every (pair, color).
    #[test]
    fn matrix_equals_bfs((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let m = DistanceMatrix::build(&g);
        for color_idx in 0..4u8 {
            let color = if color_idx == 3 { WILDCARD } else { Color(color_idx) };
            for src in g.nodes() {
                let d = bfs_distances(&g, src, color, Direction::Forward);
                for dst in g.nodes() {
                    prop_assert_eq!(m.dist(src, dst, color), d[dst.index()]);
                }
            }
        }
    }

    /// Bidirectional single-pair distance equals the BFS distance.
    #[test]
    fn bidirectional_equals_bfs((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        for color_idx in 0..3u8 {
            let color = Color(color_idx);
            for src in g.nodes() {
                let d = bfs_distances(&g, src, color, Direction::Forward);
                for dst in g.nodes() {
                    let bi = bidirectional_distance(&g, src, dst, color);
                    if d[dst.index()] == INFINITY {
                        prop_assert_eq!(bi, None);
                    } else {
                        prop_assert_eq!(bi, Some(u32::from(d[dst.index()])));
                    }
                }
            }
        }
    }

    /// Forward and backward BFS are transposes of each other.
    #[test]
    fn backward_bfs_is_transpose((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        for src in g.nodes() {
            let fwd = bfs_distances(&g, src, WILDCARD, Direction::Forward);
            for dst in g.nodes() {
                let bwd = bfs_distances(&g, dst, WILDCARD, Direction::Backward);
                prop_assert_eq!(fwd[dst.index()], bwd[src.index()]);
            }
        }
    }

    /// Text serialization round-trips node attrs, labels, colors and edges.
    #[test]
    fn io_roundtrip((n, edges) in arb_graph(), vals in prop::collection::vec(any::<i64>(), 2..14)) {
        let mut b = GraphBuilder::new();
        let attr = b.attr("weight");
        for i in 0..n {
            b.add_node(&format!("n{i}"), [(attr, vals[i % vals.len()].into())]);
        }
        for c in 0..3 {
            b.color(&format!("c{c}"));
        }
        for &(u, v, c) in &edges {
            if u != v {
                b.add_edge(NodeId(u as u32), NodeId(v as u32), Color(c));
            }
        }
        let g = b.build();
        let text = rpq_graph::io::graph_to_string(&g);
        let back = rpq_graph::io::graph_from_str(&text).unwrap();
        prop_assert_eq!(g.node_count(), back.node_count());
        prop_assert_eq!(g.edge_count(), back.edge_count());
        for v in g.nodes() {
            let w = back.node_by_label(g.label(v)).unwrap();
            let wa = back.schema().get("weight").unwrap();
            prop_assert_eq!(back.attrs(w).get(wa), g.attrs(v).get(attr));
        }
    }
}

/// Distance-overflow audit: distances are stored as `u16` with
/// `u16::MAX` reserved as the INFINITY sentinel, so a real path of length
/// ≥ 65535 must saturate *below* the sentinel — a reachable node may never
/// alias "unreachable". (The `DistanceMatrix` stores exactly these BFS
/// rows, so the saturation property carries over to matrix probes.)
#[test]
fn distances_saturate_below_infinity_sentinel() {
    // chain longer than u16::MAX: node i sits at true distance i from node 0
    let n = (u16::MAX as usize) + 40;
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..n).map(|i| b.add_node(&format!("n{i}"), [])).collect();
    let c = b.color("c");
    for w in nodes.windows(2) {
        b.add_edge(w[0], w[1], c);
    }
    let g = b.build();
    let d = bfs_distances(&g, nodes[0], c, Direction::Forward);

    // exact distances up to the saturation point…
    assert_eq!(d[(u16::MAX - 1) as usize], u16::MAX - 1);
    // …then every farther node saturates at u16::MAX - 1: reachable, and
    // strictly below the INFINITY sentinel
    for (i, &di) in d.iter().enumerate().skip(u16::MAX as usize) {
        assert_eq!(di, u16::MAX - 1, "node {i} must saturate, not overflow");
        assert_ne!(di, INFINITY, "reachable node {i} aliases INFINITY");
    }
    // a genuinely unreachable node still reads INFINITY
    let back = bfs_distances(&g, nodes[1], c, Direction::Forward);
    assert_eq!(back[0], INFINITY);
}
