//! Textual syntax for F expressions.
//!
//! Whitespace-separated atoms: `fa`, `fa^2`, `fa+`, wildcard `_`, `_^3`,
//! `_+`. Color names are resolved against an [`Alphabet`]. The paper writes
//! `fa²fn` / `fa≤2`; we use `^` for superscripts, e.g. the paper's Q1
//! constraint is written `"fa^2 fn"`.

use crate::ast::{Atom, FRegex, Quant};
use rpq_graph::Alphabet;
use std::fmt;

/// Why a string failed to parse as an F expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input had no atoms.
    Empty,
    /// An atom named a color absent from the alphabet.
    UnknownColor(String),
    /// `c^k` with an unparsable or zero `k`.
    BadBound(String),
    /// Trailing garbage after a quantifier, e.g. `fa+3`.
    Malformed(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty F expression"),
            ParseError::UnknownColor(c) => write!(f, "unknown edge color {c:?}"),
            ParseError::BadBound(t) => write!(f, "bad bound in atom {t:?} (need k ≥ 1)"),
            ParseError::Malformed(t) => write!(f, "malformed atom {t:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl FRegex {
    /// Parse a whitespace-separated atom sequence against `alphabet`.
    ///
    /// ```
    /// use rpq_graph::Alphabet;
    /// use rpq_regex::FRegex;
    /// let al = Alphabet::from_names(["fa", "fn"]);
    /// let re = FRegex::parse("fa^2 fn", &al).unwrap();
    /// assert_eq!(re.len(), 2);
    /// let fa = al.get("fa").unwrap();
    /// let f = al.get("fn").unwrap();
    /// assert!(re.matches(&[fa, fa, f]));
    /// ```
    pub fn parse(input: &str, alphabet: &Alphabet) -> Result<Self, ParseError> {
        let mut atoms = Vec::new();
        for token in input.split_whitespace() {
            atoms.push(parse_atom(token, alphabet)?);
        }
        if atoms.is_empty() {
            return Err(ParseError::Empty);
        }
        Ok(FRegex::new(atoms))
    }
}

fn parse_atom(token: &str, alphabet: &Alphabet) -> Result<Atom, ParseError> {
    let (name, quant) = if let Some(rest) = token.strip_suffix('+') {
        (rest, Quant::Plus)
    } else if let Some(caret) = token.find('^') {
        let (name, bound) = token.split_at(caret);
        let k: u32 = bound[1..]
            .parse()
            .map_err(|_| ParseError::BadBound(token.to_owned()))?;
        if k == 0 {
            return Err(ParseError::BadBound(token.to_owned()));
        }
        (name, Quant::AtMost(k))
    } else {
        (token, Quant::One)
    };
    if name.is_empty() || name.contains('+') || name.contains('^') {
        return Err(ParseError::Malformed(token.to_owned()));
    }
    let color = alphabet
        .get(name)
        .ok_or_else(|| ParseError::UnknownColor(name.to_owned()))?;
    Ok(Atom::new(color, quant))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::WILDCARD;

    fn al() -> Alphabet {
        Alphabet::from_names(["fa", "fn", "sa", "sn"])
    }

    #[test]
    fn parse_atoms() {
        let al = al();
        let re = FRegex::parse("fa^2 fn sa+ _", &al).unwrap();
        assert_eq!(re.len(), 4);
        assert_eq!(re.atoms()[0].quant, Quant::AtMost(2));
        assert_eq!(re.atoms()[1].quant, Quant::One);
        assert_eq!(re.atoms()[2].quant, Quant::Plus);
        assert_eq!(re.atoms()[3].color, WILDCARD);
        assert_eq!(re.display(&al).to_string(), "fa^2 fn sa+ _");
    }

    #[test]
    fn parse_wildcard_quantified() {
        let al = al();
        let re = FRegex::parse("_^3 _+", &al).unwrap();
        assert_eq!(re.atoms()[0].color, WILDCARD);
        assert_eq!(re.atoms()[0].quant, Quant::AtMost(3));
        assert_eq!(re.atoms()[1].quant, Quant::Plus);
    }

    #[test]
    fn parse_normalizes_pow1() {
        let al = al();
        let re = FRegex::parse("fa^1", &al).unwrap();
        assert_eq!(re.atoms()[0].quant, Quant::One);
    }

    #[test]
    fn parse_errors() {
        let al = al();
        assert_eq!(FRegex::parse("", &al), Err(ParseError::Empty));
        assert_eq!(FRegex::parse("   ", &al), Err(ParseError::Empty));
        assert!(matches!(
            FRegex::parse("zz", &al),
            Err(ParseError::UnknownColor(_))
        ));
        assert!(matches!(
            FRegex::parse("fa^0", &al),
            Err(ParseError::BadBound(_))
        ));
        assert!(matches!(
            FRegex::parse("fa^x", &al),
            Err(ParseError::BadBound(_))
        ));
        assert!(matches!(
            FRegex::parse("fa^2^3", &al),
            Err(ParseError::BadBound(_))
        ));
        assert!(matches!(
            FRegex::parse("^3", &al),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            FRegex::parse("fa+^2", &al),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn error_display() {
        assert_eq!(ParseError::Empty.to_string(), "empty F expression");
        assert!(ParseError::UnknownColor("x".into())
            .to_string()
            .contains("unknown"));
    }
}
