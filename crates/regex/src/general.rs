//! General regular expressions over edge colors — the §7 extension.
//!
//! The paper closes with: *"One topic is to extend RQs and PQs by
//! supporting general regular expressions. Nevertheless, with this comes
//! increased complexity. Indeed, the containment and minimization problems
//! become PSPACE-complete even for RQs."*
//!
//! This module supplies the expressive side of that trade-off: full
//! regular expressions (union, concatenation, Kleene star/plus, grouping)
//! compiled through Thompson construction into an ε-free NFA with the same
//! navigation interface as the class-F automaton, so the *evaluation*
//! machinery (product-space search) extends unchanged — exactly as the
//! paper predicts. The PSPACE-hard static analyses are deliberately **not**
//! provided for this class; that asymmetry is the paper's argument for the
//! restricted class F.
//!
//! Syntax: `fa`, `_`, juxtaposition (whitespace) for concatenation, `|`
//! for union, postfix `*` / `+`, parentheses. Example:
//! `"(fa | sa)+ fn"` — any positive number of allies edges, then one
//! nemeses edge.

use crate::ast::{FRegex, Quant};
use rpq_graph::{Alphabet, Color};
use std::fmt;

/// AST of a general regular expression. `L(·)` never contains ε (as in the
/// class F, a query edge always stands for a nonempty path); the parser
/// and constructors maintain this.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GRegex {
    /// One edge of this (possibly wildcard) color.
    Color(Color),
    /// Concatenation, in order. Invariant: nonempty.
    Concat(Vec<GRegex>),
    /// Union. Invariant: nonempty.
    Union(Vec<GRegex>),
    /// One or more repetitions.
    Plus(Box<GRegex>),
    /// Zero or more repetitions of the inner expression, but the overall
    /// expression must still consume at least one edge; `Star` may
    /// therefore only appear where a sibling guarantees nonemptiness
    /// (enforced by [`GRegex::validate`]).
    Star(Box<GRegex>),
}

impl GRegex {
    /// Can this expression match the empty word?
    pub fn nullable(&self) -> bool {
        match self {
            GRegex::Color(_) => false,
            GRegex::Concat(parts) => parts.iter().all(GRegex::nullable),
            GRegex::Union(parts) => parts.iter().any(GRegex::nullable),
            GRegex::Plus(inner) => inner.nullable(),
            GRegex::Star(_) => true,
        }
    }

    /// Check the nonempty-language discipline: the expression as a whole
    /// must not be nullable (query edges denote nonempty paths).
    pub fn validate(&self) -> Result<(), GParseError> {
        if self.nullable() {
            Err(GParseError::Nullable)
        } else {
            Ok(())
        }
    }

    /// Embed a class-F expression (`c^k` unrolled into nested options).
    pub fn from_fregex(re: &FRegex) -> GRegex {
        let parts = re
            .atoms()
            .iter()
            .map(|a| {
                let c = GRegex::Color(a.color);
                match a.quant {
                    Quant::One => c,
                    Quant::Plus => GRegex::Plus(Box::new(c)),
                    Quant::AtMost(k) => {
                        // c^k = c | cc | … | c^k
                        let alts = (1..=k)
                            .map(|i| GRegex::Concat(vec![GRegex::Color(a.color); i as usize]))
                            .collect();
                        GRegex::Union(alts)
                    }
                }
            })
            .collect();
        GRegex::Concat(parts)
    }

    /// Does `word` belong to `L(self)`? Decided on the compiled NFA.
    pub fn matches(&self, word: &[Color]) -> bool {
        GNfa::compile(self).accepts(word)
    }

    /// Render with color names from `alphabet`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> impl fmt::Display + 'a {
        DisplayG { re: self, alphabet }
    }
}

struct DisplayG<'a> {
    re: &'a GRegex,
    alphabet: &'a Alphabet,
}

impl DisplayG<'_> {
    fn rec(&self, re: &GRegex, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match re {
            GRegex::Color(c) => write!(f, "{}", self.alphabet.name(*c)),
            GRegex::Concat(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    if matches!(p, GRegex::Union(_)) {
                        write!(f, "(")?;
                        self.rec(p, f)?;
                        write!(f, ")")?;
                    } else {
                        self.rec(p, f)?;
                    }
                }
                Ok(())
            }
            GRegex::Union(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    self.rec(p, f)?;
                }
                Ok(())
            }
            GRegex::Plus(inner) => {
                write!(f, "(")?;
                self.rec(inner, f)?;
                write!(f, ")+")
            }
            GRegex::Star(inner) => {
                write!(f, "(")?;
                self.rec(inner, f)?;
                write!(f, ")*")
            }
        }
    }
}

impl fmt::Display for DisplayG<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.rec(self.re, f)
    }
}

/// Why a general-regex string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GParseError {
    /// Unknown color name.
    UnknownColor(String),
    /// Unbalanced parenthesis or dangling operator.
    Syntax(String),
    /// Empty expression or empty group.
    Empty,
    /// The expression can match the empty word, which query edges forbid.
    Nullable,
}

impl fmt::Display for GParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GParseError::UnknownColor(c) => write!(f, "unknown edge color {c:?}"),
            GParseError::Syntax(m) => write!(f, "syntax error: {m}"),
            GParseError::Empty => write!(f, "empty expression"),
            GParseError::Nullable => {
                write!(
                    f,
                    "expression may match the empty path (query edges must consume ≥1 edge)"
                )
            }
        }
    }
}

impl std::error::Error for GParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Name(String),
    LParen,
    RParen,
    Pipe,
    Star,
    Plus,
}

fn lex(input: &str) -> Result<Vec<Tok>, GParseError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' => {
                toks.push(Tok::LParen);
                chars.next();
            }
            ')' => {
                toks.push(Tok::RParen);
                chars.next();
            }
            '|' => {
                toks.push(Tok::Pipe);
                chars.next();
            }
            '*' => {
                toks.push(Tok::Star);
                chars.next();
            }
            '+' => {
                toks.push(Tok::Plus);
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || "()|*+".contains(c) {
                        break;
                    }
                    name.push(c);
                    chars.next();
                }
                toks.push(Tok::Name(name));
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    alphabet: &'a Alphabet,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn union(&mut self) -> Result<GRegex, GParseError> {
        let mut alts = vec![self.concat()?];
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            alts.push(self.concat()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("one element")
        } else {
            GRegex::Union(alts)
        })
    }

    fn concat(&mut self) -> Result<GRegex, GParseError> {
        let mut parts = Vec::new();
        while matches!(self.peek(), Some(Tok::Name(_)) | Some(Tok::LParen)) {
            parts.push(self.postfix()?);
        }
        match parts.len() {
            0 => Err(GParseError::Empty),
            1 => Ok(parts.pop().expect("one element")),
            _ => Ok(GRegex::Concat(parts)),
        }
    }

    fn postfix(&mut self) -> Result<GRegex, GParseError> {
        let mut base = self.primary()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.pos += 1;
                    base = GRegex::Star(Box::new(base));
                }
                Some(Tok::Plus) => {
                    self.pos += 1;
                    base = GRegex::Plus(Box::new(base));
                }
                _ => break,
            }
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<GRegex, GParseError> {
        match self.peek().cloned() {
            Some(Tok::Name(name)) => {
                self.pos += 1;
                let color = self
                    .alphabet
                    .get(&name)
                    .ok_or(GParseError::UnknownColor(name))?;
                Ok(GRegex::Color(color))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let inner = self.union()?;
                if self.peek() != Some(&Tok::RParen) {
                    return Err(GParseError::Syntax("expected ')'".into()));
                }
                self.pos += 1;
                Ok(inner)
            }
            other => Err(GParseError::Syntax(format!("unexpected {other:?}"))),
        }
    }
}

impl GRegex {
    /// Parse `"(fa | sa)+ fn"` against `alphabet`.
    pub fn parse(input: &str, alphabet: &Alphabet) -> Result<GRegex, GParseError> {
        let toks = lex(input)?;
        if toks.is_empty() {
            return Err(GParseError::Empty);
        }
        let mut p = Parser {
            toks,
            pos: 0,
            alphabet,
        };
        let re = p.union()?;
        if p.pos != p.toks.len() {
            return Err(GParseError::Syntax("trailing input".into()));
        }
        re.validate()?;
        Ok(re)
    }
}

/// ε-free NFA for a general regular expression — same navigation interface
/// as [`crate::Nfa`], so product-space graph search works identically.
#[derive(Debug, Clone)]
pub struct GNfa {
    accepting: Vec<bool>,
    fwd: Vec<Vec<(Color, u32)>>,
    bwd: Vec<Vec<(Color, u32)>>,
}

/// Thompson fragment during construction: ε-NFA with single start, single
/// accept, transitions on colors or ε.
struct Frag {
    start: u32,
    accept: u32,
}

struct Builder {
    eps: Vec<Vec<u32>>,
    steps: Vec<Vec<(Color, u32)>>,
}

impl Builder {
    fn state(&mut self) -> u32 {
        self.eps.push(Vec::new());
        self.steps.push(Vec::new());
        (self.eps.len() - 1) as u32
    }

    fn build(&mut self, re: &GRegex) -> Frag {
        match re {
            GRegex::Color(c) => {
                let s = self.state();
                let a = self.state();
                self.steps[s as usize].push((*c, a));
                Frag {
                    start: s,
                    accept: a,
                }
            }
            GRegex::Concat(parts) => {
                let frags: Vec<Frag> = parts.iter().map(|p| self.build(p)).collect();
                for w in frags.windows(2) {
                    self.eps[w[0].accept as usize].push(w[1].start);
                }
                Frag {
                    start: frags.first().expect("nonempty").start,
                    accept: frags.last().expect("nonempty").accept,
                }
            }
            GRegex::Union(parts) => {
                let s = self.state();
                let a = self.state();
                for p in parts {
                    let f = self.build(p);
                    self.eps[s as usize].push(f.start);
                    self.eps[f.accept as usize].push(a);
                }
                Frag {
                    start: s,
                    accept: a,
                }
            }
            GRegex::Plus(inner) => {
                let f = self.build(inner);
                self.eps[f.accept as usize].push(f.start);
                f
            }
            GRegex::Star(inner) => {
                let s = self.state();
                let a = self.state();
                let f = self.build(inner);
                self.eps[s as usize].push(f.start);
                self.eps[s as usize].push(a);
                self.eps[f.accept as usize].push(f.start);
                self.eps[f.accept as usize].push(a);
                Frag {
                    start: s,
                    accept: a,
                }
            }
        }
    }

    fn closure(&self, s: u32) -> Vec<u32> {
        let mut seen = vec![false; self.eps.len()];
        let mut stack = vec![s];
        seen[s as usize] = true;
        let mut out = vec![s];
        while let Some(x) = stack.pop() {
            for &y in &self.eps[x as usize] {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    out.push(y);
                    stack.push(y);
                }
            }
        }
        out
    }
}

impl GNfa {
    /// Compile via Thompson construction, then eliminate ε-transitions.
    pub fn compile(re: &GRegex) -> GNfa {
        let mut b = Builder {
            eps: Vec::new(),
            steps: Vec::new(),
        };
        let frag = b.build(re);
        let n = b.eps.len();
        let mut fwd: Vec<Vec<(Color, u32)>> = vec![Vec::new(); n + 1];
        let mut accepting = vec![false; n + 1];
        // state ids shifted by 1; 0 is the fresh start state
        let start_closure = b.closure(frag.start);
        for &s in &start_closure {
            if s == frag.accept {
                // nonempty-language discipline makes this unreachable for
                // validated expressions, but stay safe
                accepting[0] = true;
            }
            for &(c, t) in &b.steps[s as usize] {
                for &tc in &b.closure(t) {
                    if !fwd[0].contains(&(c, tc + 1)) {
                        fwd[0].push((c, tc + 1));
                    }
                }
            }
        }
        for s in 0..n as u32 {
            for &cs in &b.closure(s) {
                if cs == frag.accept {
                    accepting[s as usize + 1] = true;
                }
                for &(c, t) in &b.steps[cs as usize] {
                    for &tc in &b.closure(t) {
                        if !fwd[s as usize + 1].contains(&(c, tc + 1)) {
                            fwd[s as usize + 1].push((c, tc + 1));
                        }
                    }
                }
            }
        }
        let mut bwd: Vec<Vec<(Color, u32)>> = vec![Vec::new(); n + 1];
        for (s, outs) in fwd.iter().enumerate() {
            for &(c, t) in outs {
                bwd[t as usize].push((c, s as u32));
            }
        }
        GNfa {
            accepting,
            fwd,
            bwd,
        }
    }

    /// The start state.
    pub fn start(&self) -> u32 {
        0
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// Is `s` accepting?
    pub fn is_accepting(&self, s: u32) -> bool {
        self.accepting[s as usize]
    }

    /// All accepting states.
    pub fn accepting_states(&self) -> impl Iterator<Item = u32> + '_ {
        self.accepting
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32)
    }

    /// States reachable by one data edge of `data_color`.
    pub fn successors(&self, s: u32, data_color: Color) -> impl Iterator<Item = u32> + '_ {
        self.fwd[s as usize]
            .iter()
            .filter(move |(qc, _)| qc.admits(data_color))
            .map(|&(_, t)| t)
    }

    /// Reverse transitions.
    pub fn predecessors(&self, s: u32, data_color: Color) -> impl Iterator<Item = u32> + '_ {
        self.bwd[s as usize]
            .iter()
            .filter(move |(qc, _)| qc.admits(data_color))
            .map(|&(_, t)| t)
    }

    /// Run on a whole word.
    pub fn accepts(&self, word: &[Color]) -> bool {
        let mut cur = vec![false; self.state_count()];
        cur[0] = true;
        for &c in word {
            let mut next = vec![false; self.state_count()];
            for (s, &live) in cur.iter().enumerate() {
                if live {
                    for t in self.successors(s as u32, c) {
                        next[t as usize] = true;
                    }
                }
            }
            cur = next;
        }
        cur.iter()
            .enumerate()
            .any(|(s, &live)| live && self.accepting[s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;

    fn al() -> Alphabet {
        Alphabet::from_names(["a", "b", "c"])
    }

    fn c(i: u8) -> Color {
        Color(i)
    }

    #[test]
    fn parse_and_match_union() {
        let al = al();
        let re = GRegex::parse("(a | b)+ c", &al).unwrap();
        assert!(re.matches(&[c(0), c(2)]));
        assert!(re.matches(&[c(1), c(0), c(1), c(2)]));
        assert!(!re.matches(&[c(2)]));
        assert!(!re.matches(&[c(0), c(1)]));
        assert!(!re.matches(&[]));
    }

    #[test]
    fn star_requires_a_nonempty_sibling() {
        let al = al();
        assert_eq!(GRegex::parse("a*", &al), Err(GParseError::Nullable));
        assert_eq!(GRegex::parse("(a | b)*", &al), Err(GParseError::Nullable));
        // fine when something else consumes an edge
        let re = GRegex::parse("a* b", &al).unwrap();
        assert!(re.matches(&[c(1)]));
        assert!(re.matches(&[c(0), c(0), c(1)]));
        assert!(!re.matches(&[c(0)]));
    }

    #[test]
    fn parse_errors() {
        let al = al();
        assert_eq!(GRegex::parse("", &al), Err(GParseError::Empty));
        assert!(matches!(
            GRegex::parse("zz", &al),
            Err(GParseError::UnknownColor(_))
        ));
        assert!(matches!(
            GRegex::parse("(a", &al),
            Err(GParseError::Syntax(_))
        ));
        assert!(matches!(
            GRegex::parse("a )", &al),
            Err(GParseError::Syntax(_))
        ));
        assert!(matches!(GRegex::parse("| a", &al), Err(GParseError::Empty)));
    }

    #[test]
    fn fregex_embedding_agrees() {
        let al = al();
        let cases = ["a", "a^3", "a+", "a^2 b", "a^2 b+ c", "_ a^2"];
        let al_w = Alphabet::from_names(["a", "b", "c"]);
        for src in cases {
            let f = FRegex::parse(src, &al_w).unwrap();
            let g = GRegex::from_fregex(&f);
            g.validate().unwrap();
            // exhaustive words up to length 4 over {a,b,c}
            let colors = [c(0), c(1), c(2)];
            let mut stack: Vec<Vec<Color>> = vec![vec![]];
            while let Some(w) = stack.pop() {
                assert_eq!(g.matches(&w), f.matches(&w), "{src} on {w:?}");
                if w.len() < 4 {
                    for &cc in &colors {
                        let mut w2 = w.clone();
                        w2.push(cc);
                        stack.push(w2);
                    }
                }
            }
        }
        let _ = al;
    }

    #[test]
    fn display_roundtrip() {
        let al = al();
        let re = GRegex::parse("(a | b)+ c", &al).unwrap();
        let text = re.display(&al).to_string();
        let again = GRegex::parse(&text, &al).unwrap();
        // same language on sample words (structure may renest)
        for w in [vec![c(0), c(2)], vec![c(1), c(1), c(2)], vec![c(2)]] {
            assert_eq!(re.matches(&w), again.matches(&w));
        }
    }

    #[test]
    fn nested_groups() {
        let al = al();
        let re = GRegex::parse("((a b) | c)+", &al).unwrap();
        assert!(re.matches(&[c(0), c(1)]));
        assert!(re.matches(&[c(2), c(0), c(1), c(2)]));
        assert!(!re.matches(&[c(0)]));
        assert!(!re.matches(&[c(1), c(0)]));
    }

    #[test]
    fn wildcard_in_general_regex() {
        let al = al();
        let re = GRegex::parse("_ _ | c", &al).unwrap();
        assert!(re.matches(&[c(0), c(1)]));
        assert!(re.matches(&[c(2)]));
        assert!(!re.matches(&[c(0)]));
    }

    #[test]
    fn gnfa_predecessors_invert() {
        let al = al();
        let re = GRegex::parse("(a | b)+ c", &al).unwrap();
        let nfa = GNfa::compile(&re);
        for s in 0..nfa.state_count() as u32 {
            for color in [c(0), c(1), c(2)] {
                for t in nfa.successors(s, color) {
                    assert!(nfa.predecessors(t, color).any(|p| p == s));
                }
            }
        }
        let _ = Atom::new(c(0), Quant::One); // keep the import honest
    }
}
