//! A nondeterministic finite automaton view of an F expression.
//!
//! The runtime evaluation strategy of §4 (bi-directional search without a
//! distance matrix) explores the product of the data graph with the
//! automaton of the edge constraint, forward from candidate sources and
//! backward from candidate targets. This module builds that automaton.
//!
//! For an atom `c^k` we materialize `k` counter states; `c+` is a single
//! state with a self-loop; so the automaton has `1 + Σ kᵢ` states — tiny for
//! the single-digit bounds the paper's workloads use.

use crate::ast::{FRegex, Quant};
use rpq_graph::Color;

/// NFA state index (0 is the start state).
pub type StateId = u32;

/// ε-free NFA for one F expression.
#[derive(Debug, Clone)]
pub struct Nfa {
    accepting: Vec<bool>,
    /// forward transitions: `fwd[s]` = (query color, successor)
    fwd: Vec<Vec<(Color, StateId)>>,
    /// reversed transitions
    bwd: Vec<Vec<(Color, StateId)>>,
}

impl Nfa {
    /// Compile `re` into an NFA.
    pub fn from_regex(re: &FRegex) -> Nfa {
        // state layout: 0 = start, then for atom i, `rep_i` consecutive
        // states meaning "consumed j ∈ 1..=rep_i edges of atom i"
        let reps: Vec<u32> = re
            .atoms()
            .iter()
            .map(|a| match a.quant {
                Quant::One | Quant::Plus => 1,
                Quant::AtMost(k) => k,
            })
            .collect();
        let mut base = Vec::with_capacity(reps.len());
        let mut next_free: StateId = 1;
        for &r in &reps {
            base.push(next_free);
            next_free += r;
        }
        let n_states = next_free as usize;
        let mut fwd: Vec<Vec<(Color, StateId)>> = vec![Vec::new(); n_states];
        let mut accepting = vec![false; n_states];

        for (i, atom) in re.atoms().iter().enumerate() {
            let first = base[i];
            // entry transitions into (i, 1)
            if i == 0 {
                fwd[0].push((atom.color, first));
            } else {
                let prev_first = base[i - 1];
                for j in 0..reps[i - 1] {
                    fwd[(prev_first + j) as usize].push((atom.color, first));
                }
            }
            // intra-atom transitions
            match atom.quant {
                Quant::One => {}
                Quant::Plus => {
                    fwd[first as usize].push((atom.color, first));
                }
                Quant::AtMost(k) => {
                    for j in 0..k - 1 {
                        fwd[(first + j) as usize].push((atom.color, first + j + 1));
                    }
                }
            }
        }
        let last = re.atoms().len() - 1;
        for j in 0..reps[last] {
            accepting[(base[last] + j) as usize] = true;
        }

        let mut bwd: Vec<Vec<(Color, StateId)>> = vec![Vec::new(); n_states];
        for (s, outs) in fwd.iter().enumerate() {
            for &(c, t) in outs {
                bwd[t as usize].push((c, s as StateId));
            }
        }
        Nfa {
            accepting,
            fwd,
            bwd,
        }
    }

    /// The start state (never accepting: L(F) has no ε).
    #[inline]
    pub fn start(&self) -> StateId {
        0
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// Is `s` accepting?
    #[inline]
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s as usize]
    }

    /// All accepting states.
    pub fn accepting_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.accepting
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as StateId)
    }

    /// States reachable from `s` by consuming one data edge of color
    /// `data_color`.
    #[inline]
    pub fn successors(&self, s: StateId, data_color: Color) -> impl Iterator<Item = StateId> + '_ {
        self.fwd[s as usize]
            .iter()
            .filter(move |(qc, _)| qc.admits(data_color))
            .map(|&(_, t)| t)
    }

    /// States from which consuming one data edge of color `data_color`
    /// reaches `s`.
    #[inline]
    pub fn predecessors(
        &self,
        s: StateId,
        data_color: Color,
    ) -> impl Iterator<Item = StateId> + '_ {
        self.bwd[s as usize]
            .iter()
            .filter(move |(qc, _)| qc.admits(data_color))
            .map(|&(_, t)| t)
    }

    /// Run the NFA on a whole word (used to cross-check
    /// [`FRegex::matches`]).
    pub fn accepts(&self, word: &[Color]) -> bool {
        let mut cur = vec![false; self.state_count()];
        cur[0] = true;
        for &c in word {
            let mut next = vec![false; self.state_count()];
            for (s, &live) in cur.iter().enumerate() {
                if live {
                    for t in self.successors(s as StateId, c) {
                        next[t as usize] = true;
                    }
                }
            }
            cur = next;
        }
        cur.iter()
            .enumerate()
            .any(|(s, &live)| live && self.accepting[s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;
    use rpq_graph::WILDCARD;

    fn c(i: u8) -> Color {
        Color(i)
    }

    #[test]
    fn state_layout() {
        let re = FRegex::new(vec![
            Atom::new(c(0), Quant::AtMost(3)),
            Atom::new(c(1), Quant::Plus),
            Atom::new(c(2), Quant::One),
        ]);
        let nfa = Nfa::from_regex(&re);
        assert_eq!(nfa.state_count(), 1 + 3 + 1 + 1);
        assert_eq!(nfa.accepting_states().count(), 1);
        assert!(!nfa.is_accepting(nfa.start()));
    }

    #[test]
    fn accepts_matches_regex_matcher() {
        let cases: Vec<FRegex> = vec![
            FRegex::atom(c(0), Quant::One),
            FRegex::atom(c(0), Quant::AtMost(3)),
            FRegex::atom(c(0), Quant::Plus),
            FRegex::new(vec![
                Atom::new(c(0), Quant::AtMost(2)),
                Atom::new(c(1), Quant::One),
            ]),
            FRegex::new(vec![
                Atom::new(WILDCARD, Quant::Plus),
                Atom::new(c(1), Quant::AtMost(2)),
            ]),
            FRegex::new(vec![
                Atom::new(c(0), Quant::AtMost(2)),
                Atom::new(c(0), Quant::One),
            ]),
        ];
        // all words over {c0, c1} up to length 5
        let alphabet = [c(0), c(1)];
        for re in &cases {
            let nfa = Nfa::from_regex(re);
            for len in 0..=5usize {
                let mut word = vec![c(0); len];
                loop {
                    assert_eq!(
                        nfa.accepts(&word),
                        re.matches(&word),
                        "disagreement on {word:?} for {re:?}"
                    );
                    // next word in lexicographic order
                    let mut i = len;
                    loop {
                        if i == 0 {
                            break;
                        }
                        i -= 1;
                        if word[i] == alphabet[0] {
                            word[i] = alphabet[1];
                            break;
                        }
                        word[i] = alphabet[0];
                        if i == 0 {
                            break;
                        }
                    }
                    if word.iter().all(|&x| x == alphabet[0]) {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn predecessors_invert_successors() {
        let re = FRegex::new(vec![
            Atom::new(c(0), Quant::AtMost(2)),
            Atom::new(c(1), Quant::Plus),
        ]);
        let nfa = Nfa::from_regex(&re);
        for s in 0..nfa.state_count() as StateId {
            for color in [c(0), c(1)] {
                for t in nfa.successors(s, color) {
                    assert!(
                        nfa.predecessors(t, color).any(|p| p == s),
                        "missing bwd edge {s} -{color:?}-> {t}"
                    );
                }
            }
        }
    }
}
