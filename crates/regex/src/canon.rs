//! Run-normal canonical form for class-F expressions, plus the run-level
//! containment fast path built on it.
//!
//! ## The run view
//!
//! A maximal block of consecutive atoms with the *same* color `c` — a
//! **run** — denotes the language `{cᵐ : n ≤ m ≤ M}` where `n` is the
//! number of atoms in the run (every atom consumes at least one edge) and
//! `M` is the sum of the atoms' maxima (`∞` if any atom is `c+`). Every
//! count in the interval is achievable because per-atom choices sum
//! contiguously. The language of an F expression is therefore determined
//! by its sequence of runs — `(color, n, M)` triples — and *not* by how
//! bounds are distributed across the atoms of a run: `a^2 a`, `a a^2` and
//! `a^3`-minus-`a` spellings like them all denote `{a², a³}`.
//!
//! ## Canonical form
//!
//! [`canonicalize`] rewrites each run into the unique spelling
//! `c … c c^(M−n+1)` — `n−1` bare atoms followed by one tail atom carrying
//! all the slack (`c+` when `M = ∞`, a bare `c` when `M = n`). The rewrite
//! is language-exact per run, so **equal canonical forms imply equal
//! languages**; syntactic variants of one query collapse onto one memo
//! key, one plan, and one cache cell.
//!
//! ## Containment on runs
//!
//! [`contains_runs`] decides `L(sub) ⊆ L(sup)` whenever the two
//! expressions have the same number of runs: it requires each `sup` run's
//! color to admit the `sub` run's and its interval to enclose it
//! (`sup.n ≤ sub.n` and `sub.M ≤ sup.M`). This closes the documented
//! blind spot of the paper's atom-aligned scan — `L(a a) ⊆ L(a^2)` holds
//! but [`contains_scan`] cannot see it (different atom counts) — while
//! the scan still decides the cases where a wildcard run in `sup` spans
//! runs of *different* colors in `sub` (e.g. `a b ⊆ _ _`, one `sub` run
//! per color but a single merged `_` run in `sup`). [`contains_fast`]
//! takes the union of the two sound deciders.

use crate::ast::{Atom, FRegex, Quant};
use crate::contain::contains_scan;
use rpq_graph::{Color, WILDCARD};

/// One maximal same-color run: the language `{colorᵐ : min ≤ m ≤ max}`
/// (`max = None` meaning unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// The run's color (possibly the wildcard).
    pub color: Color,
    /// Minimum occurrence count — the number of atoms in the run.
    pub min: u32,
    /// Maximum occurrence count (`None` = some atom is `c+`).
    pub max: Option<u64>,
}

impl Run {
    /// The maximum with `∞` mapped to `u64::MAX`, mirroring
    /// [`Quant::max_or_infinite`].
    #[inline]
    pub fn max_or_infinite(self) -> u64 {
        self.max.unwrap_or(u64::MAX)
    }
}

/// Decompose `re` into its maximal same-color runs, in order.
pub fn runs(re: &FRegex) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::new();
    for atom in re.atoms() {
        let step = atom.quant.max().map(u64::from);
        match out.last_mut() {
            Some(run) if run.color == atom.color => {
                run.min += 1;
                run.max = match (run.max, step) {
                    (Some(m), Some(k)) => Some(m + k),
                    _ => None,
                };
            }
            _ => out.push(Run {
                color: atom.color,
                min: 1,
                max: step,
            }),
        }
    }
    out
}

/// The regex's **skeleton**: its sequence of run colors. Two expressions
/// with different skeletons can only be related by containment through
/// wildcard runs, so the skeleton is a cheap bucketing key for candidate
/// indices (see the engine's semantic memo).
pub fn skeleton(re: &FRegex) -> Vec<Color> {
    runs(re).iter().map(|r| r.color).collect()
}

/// The all-wildcard skeleton — the single bucket every purely-wildcard
/// expression collapses to (adjacent `_` atoms form one run).
pub fn wildcard_skeleton() -> Vec<Color> {
    vec![WILDCARD]
}

/// Rewrite `re` into run-normal canonical form: each maximal same-color
/// run becomes `n−1` bare atoms plus one tail atom carrying the run's
/// entire slack (`c^(M−n+1)`, `c+` when unbounded, bare `c` when tight).
///
/// The rewrite preserves the language exactly, so equal canonical forms
/// imply equal languages — the soundness property the engine's semantic
/// memo keys on. Idempotent. The rare run whose slack overflows `u32`
/// (sum of bounds over `u32::MAX`) is left as written; the form is then
/// merely non-unique for that run, never wrong.
pub fn canonicalize(re: &FRegex) -> FRegex {
    let mut atoms: Vec<Atom> = Vec::with_capacity(re.len());
    let all = re.atoms();
    let mut start = 0;
    while start < all.len() {
        let color = all[start].color;
        let mut end = start + 1;
        while end < all.len() && all[end].color == color {
            end += 1;
        }
        let run = &all[start..end];
        let n = run.len() as u64;
        let max: Option<u64> = run
            .iter()
            .try_fold(0u64, |acc, a| a.quant.max().map(|k| acc + u64::from(k)));
        let tail = match max {
            None => Some(Quant::Plus),
            Some(m) => match u32::try_from(m - n + 1) {
                Ok(1) => Some(Quant::One),
                Ok(k) => Some(Quant::AtMost(k)),
                Err(_) => None, // slack unrepresentable: keep the spelling
            },
        };
        match tail {
            Some(q) => {
                for _ in 1..run.len() {
                    atoms.push(Atom::new(color, Quant::One));
                }
                atoms.push(Atom::new(color, q));
            }
            None => atoms.extend_from_slice(run),
        }
        start = end;
    }
    FRegex::new(atoms)
}

/// Is `re` already in run-normal canonical form?
pub fn is_canonical(re: &FRegex) -> bool {
    canonicalize(re) == *re
}

/// Canonical-form language equality: `L(a) = L(b)` decided by comparing
/// run-normal forms. Strictly stronger than `equivalent_scan` (it
/// identifies `a^2 a` with `a a^2`), still linear time.
pub fn equivalent_canonical(a: &FRegex, b: &FRegex) -> bool {
    runs(a) == runs(b)
}

/// Run-level containment: `L(sub) ⊆ L(sup)` by run alignment. Requires
/// the same number of runs; each `sup` run must admit the `sub` run's
/// color and enclose its occurrence interval. Sound; conservative when a
/// wildcard run in `sup` would need to span several `sub` runs (decided
/// by [`contains_scan`] instead — use [`contains_fast`]).
pub fn contains_runs(sub: &FRegex, sup: &FRegex) -> bool {
    let (rs, rp) = (runs(sub), runs(sup));
    rs.len() == rp.len()
        && rs.iter().zip(&rp).all(|(a, b)| {
            b.color.admits(a.color) && b.min <= a.min && a.max_or_infinite() <= b.max_or_infinite()
        })
}

/// The union of the two sound linear deciders: the paper's atom-aligned
/// scan (Prop. 3.3(3)) and the run-level interval check. This is the
/// containment test the engine's subsumption cache uses.
pub fn contains_fast(sub: &FRegex, sup: &FRegex) -> bool {
    contains_scan(sub, sup) || contains_runs(sub, sup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain::{contains_exact, equivalent_exact};
    use rpq_graph::Alphabet;

    fn re(s: &str) -> FRegex {
        let al = Alphabet::from_names(["a", "b", "c", "d"]);
        FRegex::parse(s, &al).unwrap()
    }

    #[test]
    fn runs_decompose_and_merge() {
        let r = runs(&re("a^2 a b"));
        assert_eq!(r.len(), 2);
        assert_eq!(
            r[0],
            Run {
                color: Color(0),
                min: 2,
                max: Some(3)
            }
        );
        assert_eq!(
            r[1],
            Run {
                color: Color(1),
                min: 1,
                max: Some(1)
            }
        );
        let p = runs(&re("a+ a"));
        assert_eq!(
            p,
            vec![Run {
                color: Color(0),
                min: 2,
                max: None
            }]
        );
        // wildcard atoms merge into one run too
        assert_eq!(runs(&re("_ _")).len(), 1);
    }

    #[test]
    fn canonical_form_unifies_variants() {
        // all spellings of {a², a³} collapse to `a a^2`
        let want = re("a a^2");
        assert_eq!(canonicalize(&re("a^2 a")), want);
        assert_eq!(canonicalize(&re("a a^2")), want);
        // unbounded slack moves to the tail
        assert_eq!(canonicalize(&re("a+ a")), re("a a+"));
        assert_eq!(canonicalize(&re("a a+ a^3")), re("a a a+"));
        // tight runs flatten to bare atoms
        assert_eq!(canonicalize(&re("a a a")), re("a a a"));
        // runs of different colors never merge
        assert_eq!(canonicalize(&re("a^2 b a")), re("a^2 b a"));
    }

    #[test]
    fn canonicalize_is_idempotent_and_language_exact() {
        let samples = [
            "a", "a^3", "a+", "a^2 a", "a a^2 a+", "a b a", "_^2 _", "a^2 b c+", "_ a _+",
        ];
        for s in samples {
            let r = re(s);
            let c = canonicalize(&r);
            assert_eq!(canonicalize(&c), c, "idempotent on {s}");
            assert!(equivalent_exact(&r, &c, 4), "language preserved on {s}");
            assert!(is_canonical(&c));
        }
        assert!(!is_canonical(&re("a^2 a")));
    }

    #[test]
    fn equivalent_canonical_beats_scan() {
        assert!(equivalent_canonical(&re("a^2 a"), &re("a a^2")));
        assert!(equivalent_canonical(&re("a+ a"), &re("a a+")));
        assert!(!equivalent_canonical(&re("a^2"), &re("a a")));
        assert!(!equivalent_canonical(&re("a b"), &re("b a")));
    }

    #[test]
    fn runs_containment_closes_the_scan_blind_spot() {
        // the documented blind spot: L(a a) ⊆ L(a^2) — scan can't see it
        assert!(!contains_scan(&re("a a"), &re("a^2")));
        assert!(contains_runs(&re("a a"), &re("a^2")));
        assert!(!contains_runs(&re("a^2"), &re("a a"))); // "a" not in L(a a)
                                                         // interval nesting with mixed spellings
        assert!(contains_runs(&re("a^2 a"), &re("a a^3")));
        assert!(contains_runs(&re("a^3"), &re("a+")));
        assert!(!contains_runs(&re("a+"), &re("a^3")));
        // wildcard sup run of the same shape
        assert!(contains_runs(&re("a a"), &re("_^3")));
    }

    #[test]
    fn fast_containment_is_a_sound_union() {
        // scan-only positive (wildcard run spans two sub colors)
        assert!(contains_fast(&re("a b"), &re("_ _")));
        assert!(!contains_runs(&re("a b"), &re("_ _")));
        // runs-only positive
        assert!(contains_fast(&re("a a"), &re("a^2")));
        // soundness sweep against the exact decider
        let exprs = [
            "a", "a^2", "a a", "a^3", "a+", "a a+", "b", "a b", "_ _", "_^2", "_+", "a^2 b",
        ];
        for s in &exprs {
            for t in &exprs {
                if contains_fast(&re(s), &re(t)) {
                    assert!(contains_exact(&re(s), &re(t), 4), "unsound: {s} ⊆ {t}");
                }
            }
        }
    }
}
