//! Abstract syntax for the class F.

use rpq_graph::{Alphabet, Color};
use std::fmt;

/// Repetition of a single atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quant {
    /// Exactly one occurrence — the bare `c` production.
    One,
    /// One *up to* `k` occurrences — the paper's `c^k = c ∪ c² ∪ … ∪ c^k`.
    /// Invariant: `k ≥ 1` (enforced by [`Atom::new`] and the parser).
    AtMost(u32),
    /// One or more occurrences — `c+`.
    Plus,
}

impl Quant {
    /// Maximum number of occurrences (`None` = unbounded).
    #[inline]
    pub fn max(self) -> Option<u32> {
        match self {
            Quant::One => Some(1),
            Quant::AtMost(k) => Some(k),
            Quant::Plus => None,
        }
    }

    /// Maximum occurrences with `+` treated as "an integer larger than any
    /// positive integer k", exactly as Prop. 3.3 case (c) prescribes for
    /// the containment scan.
    #[inline]
    pub fn max_or_infinite(self) -> u64 {
        self.max().map_or(u64::MAX, u64::from)
    }
}

/// One atom `c`, `c^k` or `c+` of an F expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The color, possibly [`rpq_graph::WILDCARD`].
    pub color: Color,
    /// The repetition.
    pub quant: Quant,
}

impl Atom {
    /// Build an atom, normalizing `AtMost(1)` to `One`.
    ///
    /// # Panics
    /// If `quant` is `AtMost(0)` — the class F has no empty repetitions
    /// (every atom consumes at least one edge).
    pub fn new(color: Color, quant: Quant) -> Self {
        let quant = match quant {
            Quant::AtMost(0) => panic!("c^0 is not in the class F"),
            Quant::AtMost(1) => Quant::One,
            q => q,
        };
        Atom { color, quant }
    }

    /// Does a repetition count of `n` satisfy this atom?
    #[inline]
    pub fn admits_count(&self, n: u32) -> bool {
        n >= 1 && self.quant.max().is_none_or(|k| n <= k)
    }
}

/// A regular expression of the class F: a nonempty concatenation of atoms.
///
/// Equality/hashing are structural, which is also language-level identity
/// for this class once `AtMost(1)`/`One` are normalized (done by
/// constructors).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FRegex {
    atoms: Vec<Atom>,
}

impl FRegex {
    /// Build from atoms.
    ///
    /// # Panics
    /// If `atoms` is empty: F has no ε — a query edge always denotes a
    /// nonempty path.
    pub fn new(atoms: Vec<Atom>) -> Self {
        assert!(!atoms.is_empty(), "F expressions are nonempty");
        FRegex { atoms }
    }

    /// Single-atom convenience constructor.
    pub fn atom(color: Color, quant: Quant) -> Self {
        FRegex::new(vec![Atom::new(color, quant)])
    }

    /// The atoms, in order.
    #[inline]
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms — the paper's `|F|` ("the length of an atomic
    /// component … is 1").
    #[inline]
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// F expressions are never empty; provided for clippy-completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Shortest word length in `L(self)` — one edge per atom.
    pub fn min_word_len(&self) -> u32 {
        self.atoms.len() as u32
    }

    /// Longest word length in `L(self)`, `None` if some atom is `c+`.
    pub fn max_word_len(&self) -> Option<u64> {
        self.atoms
            .iter()
            .try_fold(0u64, |acc, a| a.quant.max().map(|k| acc + u64::from(k)))
    }

    /// Does the color word `word` belong to `L(self)`?
    ///
    /// Dynamic program over atom boundaries: `reach` holds the set of word
    /// prefixes consumable by the atoms processed so far. O(|word|²·|F|)
    /// worst case — words here are graph paths of single-digit length.
    pub fn matches(&self, word: &[Color]) -> bool {
        let n = word.len();
        let mut reach = vec![false; n + 1];
        reach[0] = true;
        for atom in &self.atoms {
            let mut next = vec![false; n + 1];
            for (start, &live) in reach.iter().enumerate() {
                if !live {
                    continue;
                }
                let mut consumed = 0u32;
                for (j, &c) in word.iter().enumerate().skip(start) {
                    if !atom.color.admits(c) {
                        break;
                    }
                    consumed += 1;
                    if atom.admits_count(consumed) {
                        next[j + 1] = true;
                    }
                    if let Some(k) = atom.quant.max() {
                        if consumed == k {
                            break;
                        }
                    }
                }
            }
            reach = next;
        }
        reach[n]
    }

    /// True if every atom uses the same single concrete color — the shape
    /// the paper calls an "RQ with a single edge color" (§4).
    pub fn is_single_color(&self) -> bool {
        let c = self.atoms[0].color;
        !c.is_wildcard() && self.atoms.iter().all(|a| a.color == c)
    }

    /// The number of *distinct* colors mentioned (wildcard counts as one),
    /// the paper's parameter `h` in the multi-color RQ evaluation.
    pub fn distinct_colors(&self) -> usize {
        let mut cs: Vec<Color> = self.atoms.iter().map(|a| a.color).collect();
        cs.sort_unstable();
        cs.dedup();
        cs.len()
    }

    /// Render with color names from `alphabet`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> impl fmt::Display + 'a {
        DisplayFRegex { re: self, alphabet }
    }
}

struct DisplayFRegex<'a> {
    re: &'a FRegex,
    alphabet: &'a Alphabet,
}

impl fmt::Display for DisplayFRegex<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.re.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", self.alphabet.name(a.color))?;
            match a.quant {
                Quant::One => {}
                Quant::AtMost(k) => write!(f, "^{k}")?,
                Quant::Plus => write!(f, "+")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::WILDCARD;

    fn c(i: u8) -> Color {
        Color(i)
    }

    #[test]
    fn atom_normalization() {
        let a = Atom::new(c(0), Quant::AtMost(1));
        assert_eq!(a.quant, Quant::One);
        let b = Atom::new(c(0), Quant::AtMost(3));
        assert_eq!(b.quant, Quant::AtMost(3));
    }

    #[test]
    #[should_panic(expected = "c^0")]
    fn zero_bound_rejected() {
        let _ = Atom::new(c(0), Quant::AtMost(0));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_regex_rejected() {
        let _ = FRegex::new(vec![]);
    }

    #[test]
    fn admits_count() {
        let one = Atom::new(c(0), Quant::One);
        assert!(one.admits_count(1));
        assert!(!one.admits_count(0));
        assert!(!one.admits_count(2));
        let upto3 = Atom::new(c(0), Quant::AtMost(3));
        assert!(upto3.admits_count(1));
        assert!(upto3.admits_count(3));
        assert!(!upto3.admits_count(4));
        let plus = Atom::new(c(0), Quant::Plus);
        assert!(plus.admits_count(1));
        assert!(plus.admits_count(1000));
        assert!(!plus.admits_count(0));
    }

    #[test]
    fn matches_simple() {
        // fa^2 fn — the paper's Q1 constraint
        let fa = c(0);
        let fnc = c(1);
        let re = FRegex::new(vec![
            Atom::new(fa, Quant::AtMost(2)),
            Atom::new(fnc, Quant::One),
        ]);
        assert!(re.matches(&[fa, fnc]));
        assert!(re.matches(&[fa, fa, fnc]));
        assert!(!re.matches(&[fa, fa, fa, fnc]));
        assert!(!re.matches(&[fa, fa]));
        assert!(!re.matches(&[fnc]));
        assert!(!re.matches(&[]));
    }

    #[test]
    fn matches_plus_and_wildcard() {
        let r = c(0);
        let s = c(1);
        let re = FRegex::new(vec![
            Atom::new(r, Quant::Plus),
            Atom::new(WILDCARD, Quant::One),
        ]);
        assert!(re.matches(&[r, s]));
        assert!(re.matches(&[r, r, r, r, s]));
        assert!(re.matches(&[r, r])); // wildcard matches r too
        assert!(!re.matches(&[s, s]));
        assert!(!re.matches(&[r]));
    }

    #[test]
    fn matches_same_color_adjacent_atoms() {
        // a^2 a — strings of 2..3 a's
        let a = c(0);
        let re = FRegex::new(vec![
            Atom::new(a, Quant::AtMost(2)),
            Atom::new(a, Quant::One),
        ]);
        assert!(!re.matches(&[a]));
        assert!(re.matches(&[a, a]));
        assert!(re.matches(&[a, a, a]));
        assert!(!re.matches(&[a, a, a, a]));
    }

    #[test]
    fn word_length_bounds() {
        let re = FRegex::new(vec![
            Atom::new(c(0), Quant::AtMost(2)),
            Atom::new(c(1), Quant::One),
        ]);
        assert_eq!(re.min_word_len(), 2);
        assert_eq!(re.max_word_len(), Some(3));
        let plus = FRegex::atom(c(0), Quant::Plus);
        assert_eq!(plus.max_word_len(), None);
    }

    #[test]
    fn single_color_detection() {
        let a = c(0);
        let re = FRegex::new(vec![
            Atom::new(a, Quant::AtMost(2)),
            Atom::new(a, Quant::Plus),
        ]);
        assert!(re.is_single_color());
        assert_eq!(re.distinct_colors(), 1);
        let mixed = FRegex::new(vec![Atom::new(a, Quant::One), Atom::new(c(1), Quant::One)]);
        assert!(!mixed.is_single_color());
        assert_eq!(mixed.distinct_colors(), 2);
        let wild = FRegex::atom(WILDCARD, Quant::Plus);
        assert!(!wild.is_single_color());
    }

    #[test]
    fn display_roundtrip_shape() {
        let mut al = Alphabet::new();
        let fa = al.intern("fa");
        let fnc = al.intern("fn");
        let re = FRegex::new(vec![
            Atom::new(fa, Quant::AtMost(2)),
            Atom::new(fnc, Quant::One),
            Atom::new(WILDCARD, Quant::Plus),
        ]);
        assert_eq!(re.display(&al).to_string(), "fa^2 fn _+");
    }
}
