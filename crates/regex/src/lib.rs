//! # rpq-regex — the restricted regular-expression class F
//!
//! §2 of Fan et al. (ICDE 2011) defines edge constraints by the subclass
//!
//! ```text
//! F ::= c | c^k | c+ | FF
//! ```
//!
//! where `c` is an edge color or the wildcard `_`, `c^k` denotes
//! *one up to k* occurrences of `c` (the paper: `c ∪ c² ∪ … ∪ c^k`), and
//! `c+` one or more occurrences. An expression is thus a concatenation of
//! *atoms*, each a colored, bounded (or `+`-unbounded) repetition.
//!
//! The deliberately small class buys the paper its headline complexity
//! results: language containment is decidable by a linear scan
//! (Prop. 3.3(3)) instead of being PSPACE-complete as for general regular
//! expressions.
//!
//! This crate provides the AST ([`FRegex`], [`Atom`], [`Quant`]), a parser,
//! word matching, an NFA view used by the runtime path search
//! ([`nfa::Nfa`]), two containment deciders ([`contain`]), and the
//! run-normal canonical form with its run-level containment fast path
//! ([`canon`]) that the engine's semantic cache keys on.

pub mod ast;
pub mod canon;
pub mod contain;
pub mod general;
pub mod nfa;
pub mod parse;

pub use ast::{Atom, FRegex, Quant};
pub use general::{GNfa, GParseError, GRegex};
pub use nfa::Nfa;
pub use parse::ParseError;
