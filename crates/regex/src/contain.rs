//! Language containment for the class F.
//!
//! [`contains_scan`] is the paper's linear-time decider (Prop. 3.3(3)):
//! containment requires the same number of atoms, per-atom color
//! compatibility, and per-atom bound domination, with `+` "treated as an
//! integer larger than any positive integer k" (case (c)).
//!
//! The paper states the bound test over *sums* of exponents; with distinct
//! adjacent colors the sound form is the per-position comparison
//! implemented here (the sum form would wrongly accept e.g.
//! `L(a^3 b) ⊆ L(a b^3)`). On the workloads the paper generates —
//! `c₁^b … c_k^b` chains — the two coincide.
//!
//! [`contains_exact`] is a reference decider over the automata (subset
//! construction on the right-hand side). It exists to validate the scan in
//! tests; it is exponential in the worst case but instantaneous on query-
//! sized expressions. It also decides the corner cases the scan
//! conservatively rejects, such as `L(a a) ⊆ L(a^2)` (different atom
//! counts) and wildcard-vs-concrete over a one-letter alphabet.

use crate::ast::FRegex;
use crate::nfa::Nfa;
use rpq_graph::Color;
use std::collections::{HashSet, VecDeque};

/// The paper's linear scan: is `L(sub) ⊆ L(sup)`?
///
/// Sound (never claims containment that does not hold); complete on
/// expressions whose consecutive atoms have distinct colors, which is the
/// shape the paper's query generator emits.
pub fn contains_scan(sub: &FRegex, sup: &FRegex) -> bool {
    if sub.len() != sup.len() {
        return false;
    }
    sub.atoms().iter().zip(sup.atoms()).all(|(a, b)| {
        b.color.admits(a.color) && a.quant.max_or_infinite() <= b.quant.max_or_infinite()
    })
}

/// Scan-based language equality.
pub fn equivalent_scan(a: &FRegex, b: &FRegex) -> bool {
    contains_scan(a, b) && contains_scan(b, a)
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct SubsetKey(Vec<u64>);

fn subset_insert(bits: &mut [u64], s: u32) {
    bits[(s / 64) as usize] |= 1 << (s % 64);
}

/// Exact containment `L(sub) ⊆ L(sup)` over an alphabet of `num_colors`
/// concrete colors, by product construction of `sub`'s NFA with the
/// determinization of `sup`'s.
pub fn contains_exact(sub: &FRegex, sup: &FRegex, num_colors: usize) -> bool {
    assert!(num_colors >= 1, "containment needs a nonempty alphabet");
    let n1 = Nfa::from_regex(sub);
    let n2 = Nfa::from_regex(sup);
    let words = n2.state_count().div_ceil(64);

    let mut start2 = vec![0u64; words];
    subset_insert(&mut start2, n2.start());

    let mut seen: HashSet<(u32, SubsetKey)> = HashSet::new();
    let mut queue: VecDeque<(u32, Vec<u64>)> = VecDeque::new();
    seen.insert((n1.start(), SubsetKey(start2.clone())));
    queue.push_back((n1.start(), start2));

    let accepting2 = |bits: &[u64]| -> bool {
        n2.accepting_states()
            .any(|s| bits[(s / 64) as usize] & (1 << (s % 64)) != 0)
    };

    while let Some((s1, set2)) = queue.pop_front() {
        for color_idx in 0..num_colors {
            let sigma = Color(color_idx as u8);
            // deterministic step of sup
            let mut next2 = vec![0u64; words];
            let mut any2 = false;
            for (w, &word) in set2.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    let s = (w as u32) * 64 + b;
                    for t in n2.successors(s, sigma) {
                        subset_insert(&mut next2, t);
                        any2 = true;
                    }
                }
            }
            let _ = any2;
            for t1 in n1.successors(s1, sigma) {
                if n1.is_accepting(t1) && !accepting2(&next2) {
                    return false; // counterexample word found
                }
                let key = (t1, SubsetKey(next2.clone()));
                if seen.insert(key) {
                    queue.push_back((t1, next2.clone()));
                }
            }
        }
    }
    true
}

/// Exact language equality over `num_colors` concrete colors.
pub fn equivalent_exact(a: &FRegex, b: &FRegex, num_colors: usize) -> bool {
    contains_exact(a, b, num_colors) && contains_exact(b, a, num_colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Quant};
    use rpq_graph::{Alphabet, WILDCARD};

    fn re(s: &str) -> FRegex {
        let al = Alphabet::from_names(["a", "b", "c", "d"]);
        FRegex::parse(s, &al).unwrap()
    }

    #[test]
    fn scan_basics() {
        assert!(contains_scan(&re("a"), &re("a")));
        assert!(contains_scan(&re("a"), &re("a^3")));
        assert!(contains_scan(&re("a^2"), &re("a^3")));
        assert!(!contains_scan(&re("a^3"), &re("a^2")));
        assert!(contains_scan(&re("a^3"), &re("a+")));
        assert!(!contains_scan(&re("a+"), &re("a^9")));
        assert!(contains_scan(&re("a+"), &re("a+")));
        assert!(!contains_scan(&re("a"), &re("b")));
        assert!(!contains_scan(&re("a b"), &re("a")));
    }

    #[test]
    fn scan_wildcard() {
        assert!(contains_scan(&re("a"), &re("_")));
        assert!(contains_scan(&re("a^2 b"), &re("_^2 _")));
        assert!(!contains_scan(&re("_"), &re("a")));
        assert!(contains_scan(&re("_^2"), &re("_+")));
    }

    #[test]
    fn scan_multi_atom() {
        // the paper's Q1 constraint against a relaxation
        assert!(contains_scan(&re("a^2 b"), &re("a^5 b^2")));
        assert!(!contains_scan(&re("a^5 b"), &re("a^2 b^2")));
        assert!(contains_scan(&re("a^2 b c+"), &re("_+ _+ _+")));
    }

    #[test]
    fn exact_agrees_on_scan_positives() {
        let pairs = [
            ("a", "a^3"),
            ("a^2 b", "a^5 b^2"),
            ("a^3", "a+"),
            ("a b c", "_ _ _"),
            ("a^2 b c+", "_+ _+ _+"),
        ];
        for (s, t) in pairs {
            assert!(contains_scan(&re(s), &re(t)), "{s} ⊆ {t} (scan)");
            assert!(contains_exact(&re(s), &re(t), 4), "{s} ⊆ {t} (exact)");
        }
    }

    #[test]
    fn exact_rejects_non_containment() {
        assert!(!contains_exact(&re("a^3"), &re("a^2"), 4));
        assert!(!contains_exact(&re("a"), &re("b"), 4));
        assert!(!contains_exact(&re("a+"), &re("a^7"), 4));
        // the sum-form pitfall: sums of bounds are equal but containment fails
        assert!(!contains_exact(&re("a^3 b"), &re("a b^3"), 4));
        assert!(!contains_scan(&re("a^3 b"), &re("a b^3")));
    }

    #[test]
    fn exact_decides_scan_blind_spots() {
        // same language, different atom counts: scan rejects, exact accepts
        let aa = FRegex::new(vec![
            Atom::new(rpq_graph::Color(0), Quant::One),
            Atom::new(rpq_graph::Color(0), Quant::One),
        ]);
        let a2 = re("a^2");
        assert!(!contains_scan(&aa, &a2));
        assert!(contains_exact(&aa, &a2, 4));
        assert!(!contains_exact(&a2, &aa, 4)); // "a" ∈ L(a^2) \ L(aa)

        // wildcard ⊆ concrete holds over a single-letter alphabet only
        let w = FRegex::atom(WILDCARD, Quant::One);
        let a = re("a");
        assert!(contains_exact(&w, &a, 1));
        assert!(!contains_exact(&w, &a, 2));
    }

    #[test]
    fn exact_equivalence() {
        assert!(equivalent_exact(&re("a^2 b"), &re("a^2 b"), 4));
        assert!(!equivalent_exact(&re("a^2 b"), &re("a^3 b"), 4));
        assert!(equivalent_scan(&re("a+ b^2"), &re("a+ b^2")));
        assert!(!equivalent_scan(&re("a+ b^2"), &re("a+ b^3")));
    }

    #[test]
    fn scan_soundness_random() {
        // scan-positive pairs must be exact-positive (soundness); sample the
        // small structured space exhaustively-ish
        let quants = [Quant::One, Quant::AtMost(2), Quant::AtMost(3), Quant::Plus];
        let colors = [rpq_graph::Color(0), rpq_graph::Color(1), WILDCARD];
        let mut atoms = Vec::new();
        for &c in &colors {
            for &q in &quants {
                atoms.push(Atom::new(c, q));
            }
        }
        let mut exprs: Vec<FRegex> = Vec::new();
        for &a in &atoms {
            exprs.push(FRegex::new(vec![a]));
            for &b in &atoms {
                exprs.push(FRegex::new(vec![a, b]));
            }
        }
        for e1 in &exprs {
            for e2 in &exprs {
                if contains_scan(e1, e2) {
                    assert!(contains_exact(e1, e2, 2), "scan unsound: {e1:?} ⊆ {e2:?}");
                }
            }
        }
    }
}
