//! Property-based tests for both regex classes: the class F and the §7
//! general extension, plus the relationships between them.

use proptest::prelude::*;
use rpq_graph::{Color, WILDCARD};
use rpq_regex::contain::{contains_exact, contains_scan, equivalent_scan};
use rpq_regex::{Atom, FRegex, GNfa, GRegex, Nfa, Quant};

const NUM_COLORS: usize = 3;

fn arb_color() -> impl Strategy<Value = Color> {
    prop_oneof![
        4 => (0..NUM_COLORS as u8).prop_map(Color),
        1 => Just(WILDCARD),
    ]
}

fn arb_quant() -> impl Strategy<Value = Quant> {
    prop_oneof![
        2 => Just(Quant::One),
        3 => (2u32..6).prop_map(Quant::AtMost),
        1 => Just(Quant::Plus),
    ]
}

fn arb_fregex() -> impl Strategy<Value = FRegex> {
    prop::collection::vec((arb_color(), arb_quant()), 1..5)
        .prop_map(|atoms| FRegex::new(atoms.into_iter().map(|(c, q)| Atom::new(c, q)).collect()))
}

fn arb_word() -> impl Strategy<Value = Vec<Color>> {
    prop::collection::vec((0..NUM_COLORS as u8).prop_map(Color), 0..10)
}

/// Recursive strategy for general regexes that are never nullable.
fn arb_gregex() -> impl Strategy<Value = GRegex> {
    let leaf = arb_color().prop_map(GRegex::Color);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(GRegex::Concat),
            prop::collection::vec(inner.clone(), 1..4).prop_map(GRegex::Union),
            inner.prop_map(|g| GRegex::Plus(Box::new(g))),
        ]
    })
}

proptest! {
    /// Empty word never matches (F has no ε).
    #[test]
    fn f_never_matches_epsilon(re in arb_fregex()) {
        prop_assert!(!re.matches(&[]));
    }

    /// Minimum word length is respected: words shorter than the atom count
    /// never match.
    #[test]
    fn f_minimum_length(re in arb_fregex(), w in arb_word()) {
        if (w.len() as u32) < re.min_word_len() {
            prop_assert!(!re.matches(&w));
        }
    }

    /// Maximum word length is respected.
    #[test]
    fn f_maximum_length(re in arb_fregex(), w in arb_word()) {
        if let Some(max) = re.max_word_len() {
            if w.len() as u64 > max {
                prop_assert!(!re.matches(&w));
            }
        }
    }

    /// NFA and matcher agree on arbitrary inputs.
    #[test]
    fn f_nfa_equals_matcher(re in arb_fregex(), w in arb_word()) {
        prop_assert_eq!(Nfa::from_regex(&re).accepts(&w), re.matches(&w));
    }

    /// The scan decider is sound w.r.t. the exact decider, and equivalence
    /// by scan implies word-level agreement.
    #[test]
    fn scan_sound_and_equivalence_consistent(a in arb_fregex(), b in arb_fregex(), w in arb_word()) {
        if contains_scan(&a, &b) {
            prop_assert!(contains_exact(&a, &b, NUM_COLORS));
            if a.matches(&w) {
                prop_assert!(b.matches(&w));
            }
        }
        if equivalent_scan(&a, &b) {
            prop_assert_eq!(a.matches(&w), b.matches(&w));
        }
    }

    /// Widening any atom's bound only grows the language.
    #[test]
    fn widening_bounds_grows_language(re in arb_fregex(), w in arb_word(), extra in 1u32..4) {
        let widened = FRegex::new(
            re.atoms()
                .iter()
                .map(|a| {
                    let q = match a.quant {
                        Quant::One => Quant::AtMost(1 + extra),
                        Quant::AtMost(k) => Quant::AtMost(k + extra),
                        Quant::Plus => Quant::Plus,
                    };
                    Atom::new(a.color, q)
                })
                .collect(),
        );
        if re.matches(&w) {
            prop_assert!(widened.matches(&w), "widened regex lost a word");
        }
        prop_assert!(contains_scan(&re, &widened));
    }

    /// Replacing every color with the wildcard only grows the language.
    #[test]
    fn wildcarding_grows_language(re in arb_fregex(), w in arb_word()) {
        let wild = FRegex::new(
            re.atoms().iter().map(|a| Atom::new(WILDCARD, a.quant)).collect(),
        );
        if re.matches(&w) {
            prop_assert!(wild.matches(&w));
        }
    }

    /// The general-regex embedding of an F expression defines the same
    /// language.
    #[test]
    fn general_embedding_preserves_language(re in arb_fregex(), w in arb_word()) {
        let g = GRegex::from_fregex(&re);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.matches(&w), re.matches(&w));
    }

    /// General regexes generated without Star never accept ε, and their
    /// compiled NFA agrees with itself under display/parse round-trips.
    #[test]
    fn general_nfa_consistency(re in arb_gregex(), w in arb_word()) {
        prop_assert!(re.validate().is_ok());
        let nfa = GNfa::compile(&re);
        prop_assert!(!nfa.accepts(&[]));
        prop_assert_eq!(nfa.accepts(&w), re.matches(&w));
        // plus is idempotent at the language level for already-plus exprs:
        // L(e) ⊆ L(e+)
        let plus = GRegex::Plus(Box::new(re.clone()));
        if re.matches(&w) {
            prop_assert!(plus.matches(&w));
        }
    }

    /// Concatenation of two general regexes matches split words.
    #[test]
    fn general_concat_splits(a in arb_gregex(), b in arb_gregex(), wa in arb_word(), wb in arb_word()) {
        if a.matches(&wa) && b.matches(&wb) {
            let cat = GRegex::Concat(vec![a, b]);
            let mut w = wa;
            w.extend(wb);
            prop_assert!(cat.matches(&w));
        }
    }

    /// Union behaves like language union.
    #[test]
    fn general_union_is_or(a in arb_gregex(), b in arb_gregex(), w in arb_word()) {
        let u = GRegex::Union(vec![a.clone(), b.clone()]);
        prop_assert_eq!(u.matches(&w), a.matches(&w) || b.matches(&w));
    }
}
