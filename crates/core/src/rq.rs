//! Reachability queries (RQs) and their three evaluation strategies (§2, §4).
//!
//! An RQ `(u1, u2, f_{u1}, f_{u2}, fe)` asks for all node pairs `(v1, v2)`
//! such that `v1 ∼ u1`, `v2 ∼ u2`, and some **nonempty** path `v1 ⇝ v2`
//! spells a word of `L(fe)`.
//!
//! Evaluation strategies, named as in Fig. 10(b):
//!
//! * **DM** ([`Rq::eval_with_matrix`]) — decompose `fe` into single-color
//!   atoms via dummy nodes, evaluate right-to-left with O(1) matrix probes,
//!   then compose the partial results (§4, "Matrix-based method").
//! * **biBFS** ([`Rq::eval_bibfs`]) — no index: expand from candidate
//!   sources and (backward) from candidate targets, meeting in the middle
//!   of the expression (§4, "Bi-directional search").
//! * **BFS** ([`Rq::eval_bfs`]) — plain forward product-automaton search
//!   from every candidate source; the uncached baseline.

use crate::predicate::Predicate;
use crate::reach::product_reach_set;
use rpq_graph::algo::{bfs_distances, Direction};
use rpq_graph::{DistanceMatrix, Graph, NodeId};
use rpq_index::DistProbe;
use rpq_regex::{Atom, FRegex, Nfa};
use std::collections::HashMap;

/// A reachability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rq {
    /// Search condition on the source node (`f_{u1}`).
    pub from: Predicate,
    /// Search condition on the target node (`f_{u2}`).
    pub to: Predicate,
    /// The edge constraint `fe ∈ F`.
    pub regex: FRegex,
}

/// Result of an RQ: the sorted set of matching `(source, target)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RqResult {
    pairs: Vec<(NodeId, NodeId)>,
}

impl RqResult {
    fn new(pairs: Vec<(NodeId, NodeId)>) -> Self {
        Self::from_pairs(pairs)
    }

    /// Build a result from raw pairs (sorted and deduplicated here).
    pub fn from_pairs(mut pairs: Vec<(NodeId, NodeId)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        RqResult { pairs }
    }

    /// The matching pairs, sorted.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.pairs.clone()
    }

    /// Borrowed view of the matching pairs.
    pub fn as_slice(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Number of matching pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pair matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, x: NodeId, y: NodeId) -> bool {
        self.pairs.binary_search(&(x, y)).is_ok()
    }
}

/// All data nodes satisfying `pred`.
pub fn matches_of(g: &Graph, pred: &Predicate) -> Vec<NodeId> {
    g.nodes().filter(|&v| pred.matches(g.attrs(v))).collect()
}

impl Rq {
    /// Build an RQ.
    pub fn new(from: Predicate, to: Predicate, regex: FRegex) -> Self {
        Rq { from, to, regex }
    }

    /// Candidate sources (`v ∼ u1`).
    pub fn matches_from(&self, g: &Graph) -> Vec<NodeId> {
        matches_of(g, &self.from)
    }

    /// Candidate targets (`v ∼ u2`).
    pub fn matches_to(&self, g: &Graph) -> Vec<NodeId> {
        matches_of(g, &self.to)
    }

    /// **BFS** strategy: forward product-automaton search from every
    /// candidate source. O(|mat(u1)| · |F-states| · (|V| + |E|)).
    pub fn eval_bfs(&self, g: &Graph) -> RqResult {
        let nfa = Nfa::from_regex(&self.regex);
        let targets = self.matches_to(g);
        let is_target = node_mask(g, &targets);
        let mut pairs = Vec::new();
        for x in self.matches_from(g) {
            for y in product_reach_set(g, &nfa, x) {
                if is_target[y.index()] {
                    pairs.push((x, y));
                }
            }
        }
        RqResult::new(pairs)
    }

    /// **DM** strategy (§4): decompose `fe` into single-color atoms (the
    /// dummy-node rewrite) and evaluate with matrix probes. Equivalent to
    /// [`eval_with_dist`](Rq::eval_with_dist) over the dense matrix —
    /// kept as the named strategy entry point of Fig. 10(b).
    pub fn eval_with_matrix(&self, g: &Graph, m: &DistanceMatrix) -> RqResult {
        self.eval_with_dist(g, m)
    }

    /// Index-generic strategy: the DM algorithm of §4 over **any**
    /// [`DistProbe`] backend — the dense [`DistanceMatrix`] under its node
    /// limit, or pruned 2-hop labels (`rpq_index::HopLabels`, the engine's
    /// `Plan::RqHop`) beyond it. Results are identical across backends;
    /// only the probe cost differs.
    ///
    /// Implementation notes: per-atom reachability is read off bounded
    /// neighborhood scans ([`DistProbe::for_each_within`] — contiguous row
    /// scans for the matrix, inverted hub lists for labels; the scan may
    /// report a node more than once, which the mask/bitset sinks below
    /// absorb). The candidate sets are pruned in both directions before
    /// pairs are composed: forward masks from the sources, then backward
    /// masks from the targets inside the forward ones, then per-source
    /// composition inside the backward ones — the paper's "compose these
    /// partial results" with the search space already cut to nodes that can
    /// both be reached and complete a match.
    pub fn eval_with_dist<D: DistProbe + ?Sized>(&self, g: &Graph, m: &D) -> RqResult {
        let atoms = self.regex.atoms();
        let h = atoms.len();
        let n = g.node_count();
        let sources = self.matches_from(g);
        let targets = self.matches_to(g);
        if sources.is_empty() || targets.is_empty() {
            return RqResult::new(Vec::new());
        }

        // one scan: all z with a nonempty ≤k path from w — the shared
        // diagonal-aware step of the probe layer
        let scan = |w: NodeId, atom: &Atom, hit: &mut dyn FnMut(usize)| {
            m.for_each_reaching_within(g, w, atom.color, atom.quant.max(), &mut |z| hit(z.index()));
        };

        // forward masks: fwd[i] = nodes reachable from a source through
        // atoms 0..i
        let mut fwd: Vec<Vec<bool>> = Vec::with_capacity(h + 1);
        fwd.push(node_mask(g, &sources));
        for atom in atoms {
            let prev = fwd.last().expect("nonempty");
            let mut next = vec![false; n];
            for (w, &live) in prev.iter().enumerate() {
                if live {
                    scan(NodeId(w as u32), atom, &mut |z| next[z] = true);
                }
            }
            if next.iter().all(|&b| !b) {
                return RqResult::new(Vec::new());
            }
            fwd.push(next);
        }

        // backward bitset propagation over target sets: D_i[x] = the set of
        // *targets* reachable from x by completing atoms i..h. One pass per
        // atom over the forward-reachable rows; cost is independent of how
        // many sources there are, and the final pairs are read off D_0
        // directly — the "composition of partial results".
        let kept_targets: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|y| fwd[h][y.index()])
            .collect();
        if kept_targets.is_empty() {
            return RqResult::new(Vec::new());
        }
        let words = kept_targets.len().div_ceil(64);
        let mut d = vec![0u64; n * words];
        for (ti, y) in kept_targets.iter().enumerate() {
            d[y.index() * words + ti / 64] |= 1 << (ti % 64);
        }
        let mut acc = vec![0u64; words];
        for i in (0..h).rev() {
            let mut d_new = vec![0u64; n * words];
            for x in 0..n {
                if !fwd[i][x] {
                    continue;
                }
                acc.iter_mut().for_each(|w| *w = 0);
                scan(NodeId(x as u32), &atoms[i], &mut |z| {
                    let src = &d[z * words..(z + 1) * words];
                    for (a, &s) in acc.iter_mut().zip(src) {
                        *a |= s;
                    }
                });
                d_new[x * words..(x + 1) * words].copy_from_slice(&acc);
            }
            d = d_new;
        }

        let mut pairs = Vec::new();
        for &x in &sources {
            let bits = &d[x.index() * words..(x.index() + 1) * words];
            for (w, &word) in bits.iter().enumerate() {
                let mut word = word;
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    pairs.push((x, kept_targets[w * 64 + b]));
                }
            }
        }
        RqResult::new(pairs)
    }

    /// **biBFS** strategy (§4): split the expression in the middle; expand
    /// candidate sources forward through the prefix and candidate targets
    /// backward through the suffix, then join on the meeting nodes.
    pub fn eval_bibfs(&self, g: &Graph) -> RqResult {
        let atoms = self.regex.atoms();
        let sources = self.matches_from(g);
        let targets = self.matches_to(g);
        if sources.is_empty() || targets.is_empty() {
            return RqResult::new(Vec::new());
        }
        // expand the smaller candidate set through the longer half
        let mid = if sources.len() <= targets.len() {
            atoms.len().div_ceil(2)
        } else {
            atoms.len() / 2
        };
        let (front, back) = atoms.split_at(mid);

        // forward: x -> set of middle nodes
        let mut mid_to_sources: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        if front.is_empty() {
            for &x in &sources {
                mid_to_sources.entry(x).or_default().push(x);
            }
        } else {
            let f_re = FRegex::new(front.to_vec());
            let f_nfa = Nfa::from_regex(&f_re);
            for &x in &sources {
                for mnode in product_reach_set(g, &f_nfa, x) {
                    mid_to_sources.entry(mnode).or_default().push(x);
                }
            }
        }

        let mut pairs = Vec::new();
        if back.is_empty() {
            for (&mnode, xs) in &mid_to_sources {
                if self.to.matches(g.attrs(mnode)) {
                    pairs.extend(xs.iter().map(|&x| (x, mnode)));
                }
            }
        } else {
            let b_re = FRegex::new(back.to_vec());
            for &y in &targets {
                for mnode in backward_reach_set(g, &b_re, y) {
                    if let Some(xs) = mid_to_sources.get(&mnode) {
                        pairs.extend(xs.iter().map(|&x| (x, y)));
                    }
                }
            }
        }
        RqResult::new(pairs)
    }
}

fn node_mask(g: &Graph, nodes: &[NodeId]) -> Vec<bool> {
    let mut mask = vec![false; g.node_count()];
    for &v in nodes {
        mask[v.index()] = true;
    }
    mask
}

/// All nodes `x` such that `(x, y) ⊨ re`, by *backward* product search from
/// `y` (the mirror of [`product_reach_set`]).
pub fn backward_reach_set(g: &Graph, re: &FRegex, y: NodeId) -> Vec<NodeId> {
    let nfa = Nfa::from_regex(re);
    let states = nfa.state_count();
    let mut visited = vec![false; g.node_count() * states];
    let mut queue = std::collections::VecDeque::new();
    for a in nfa.accepting_states() {
        visited[y.index() * states + a as usize] = true;
        queue.push_back((y, a));
    }
    let mut hit = vec![false; g.node_count()];
    while let Some((v, t)) = queue.pop_front() {
        for e in g.in_edges(v) {
            for s in nfa.predecessors(t, e.color) {
                let slot = e.node.index() * states + s as usize;
                if !visited[slot] {
                    visited[slot] = true;
                    if s == nfa.start() {
                        hit[e.node.index()] = true;
                    }
                    queue.push_back((e.node, s));
                }
            }
        }
    }
    hit.iter()
        .enumerate()
        .filter(|(_, &h)| h)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

/// Per-color single-pair distance via bi-directional BFS with no index —
/// exposed for the RQ experiments (Fig. 10(b) probes single colors).
pub fn pair_distance(g: &Graph, x: NodeId, y: NodeId, color: rpq_graph::Color) -> Option<u32> {
    rpq_graph::algo::bidirectional_distance(g, x, y, color)
}

/// Single-source truncated distances (helper shared by the experiment
/// binaries; wraps the substrate BFS).
pub fn distances_from(g: &Graph, x: NodeId, color: rpq_graph::Color) -> Vec<u16> {
    bfs_distances(g, x, color, Direction::Forward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::gen::essembly;

    fn q1(g: &Graph) -> Rq {
        Rq::new(
            Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
            FRegex::parse("fa^2 fn", g.alphabet()).unwrap(),
        )
    }

    /// Example 2.2: Q1(G) = {(C1,B1), (C1,B2), (C2,B1), (C2,B2)}.
    #[test]
    fn example_2_2_all_strategies() {
        let g = essembly();
        let rq = q1(&g);
        let expect: Vec<(NodeId, NodeId)> = {
            let n = |l: &str| g.node_by_label(l).unwrap();
            let mut v = vec![
                (n("C1"), n("B1")),
                (n("C1"), n("B2")),
                (n("C2"), n("B1")),
                (n("C2"), n("B2")),
            ];
            v.sort_unstable();
            v
        };
        let m = DistanceMatrix::build(&g);
        assert_eq!(rq.eval_bfs(&g).pairs(), expect, "BFS");
        assert_eq!(rq.eval_with_matrix(&g, &m).pairs(), expect, "DM");
        assert_eq!(rq.eval_bibfs(&g).pairs(), expect, "biBFS");
    }

    #[test]
    fn strategies_agree_on_many_regexes() {
        let g = essembly();
        let m = DistanceMatrix::build(&g);
        let preds = [
            Predicate::always_true(),
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
            Predicate::parse("sp = \"cloning\"", g.schema()).unwrap(),
        ];
        let regexes = [
            "fa", "fn", "fa^2", "fa+", "fa^2 fn", "fn _+", "sa sn", "_^2 _",
        ];
        for from in &preds {
            for to in &preds {
                for r in &regexes {
                    let rq = Rq::new(
                        from.clone(),
                        to.clone(),
                        FRegex::parse(r, g.alphabet()).unwrap(),
                    );
                    let a = rq.eval_bfs(&g);
                    let b = rq.eval_with_matrix(&g, &m);
                    let c = rq.eval_bibfs(&g);
                    assert_eq!(a, b, "DM vs BFS on {r}");
                    assert_eq!(a, c, "biBFS vs BFS on {r}");
                }
            }
        }
    }

    #[test]
    fn empty_results() {
        let g = essembly();
        let m = DistanceMatrix::build(&g);
        // no physicians reach doctors via sn edges
        let rq = Rq::new(
            Predicate::parse("job = \"physician\"", g.schema()).unwrap(),
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
            FRegex::parse("sn+", g.alphabet()).unwrap(),
        );
        assert!(rq.eval_bfs(&g).is_empty());
        assert!(rq.eval_with_matrix(&g, &m).is_empty());
        assert!(rq.eval_bibfs(&g).is_empty());
        // unsatisfiable predicate
        let rq2 = Rq::new(
            Predicate::parse("job = \"astronaut\"", g.schema()).unwrap(),
            Predicate::always_true(),
            FRegex::parse("fa", g.alphabet()).unwrap(),
        );
        assert!(rq2.eval_bfs(&g).is_empty());
        assert!(rq2.eval_with_matrix(&g, &m).is_empty());
        assert!(rq2.eval_bibfs(&g).is_empty());
    }

    #[test]
    fn result_api() {
        let g = essembly();
        let rq = q1(&g);
        let res = rq.eval_bfs(&g);
        assert_eq!(res.len(), 4);
        assert!(!res.is_empty());
        let c1 = g.node_by_label("C1").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        let c3 = g.node_by_label("C3").unwrap();
        assert!(res.contains(c1, b1));
        assert!(!res.contains(c3, b1));
        assert_eq!(res.as_slice().len(), 4);
    }

    #[test]
    fn backward_set_mirrors_forward() {
        let g = essembly();
        let re = FRegex::parse("fa^2 fn", g.alphabet()).unwrap();
        let nfa = Nfa::from_regex(&re);
        for y in g.nodes() {
            let back = backward_reach_set(&g, &re, y);
            for x in g.nodes() {
                let fwd_hit = product_reach_set(&g, &nfa, x).contains(&y);
                assert_eq!(back.contains(&x), fwd_hit, "{x:?} -> {y:?}");
            }
        }
    }
}
