//! Incremental PQ evaluation under graph updates.
//!
//! §7 of the paper singles this out: *"In practice data graphs are
//! frequently modified, and it is too costly to re-evaluate PQs in
//! cubic-time … every time the graphs are updated. This suggests that we
//! evaluate the queries once, and incrementally compute query answers in
//! response to changes to the graphs."*
//!
//! This module implements that workflow for edge insertions and deletions.
//! The key structural facts it exploits follow from the PQ semantics being
//! a **greatest fixpoint** of a refinement operator that is monotone in
//! the data graph:
//!
//! * inserting a data edge can only **grow** match sets (new witnesses may
//!   appear, none disappear), and
//! * deleting a data edge can only **shrink** them.
//!
//! On insertion the matcher re-seeds every *predicate-eligible* node that
//! is not currently a match and re-runs the refinement — the fixpoint
//! restarted from a superset converges to the new answer. On deletion it
//! re-runs refinement from the *current* match sets, which are a superset
//! of the new answer. Both directions therefore reuse the standing match
//! sets instead of starting from all of `V`, which is where the savings
//! come from on localized updates; the worst case remains a full
//! re-evaluation, as the paper anticipates ("nontrivial to … minimize
//! unnecessary recomputation").
//!
//! The data graph is wrapped in [`DynamicGraph`], an overlay that applies
//! edge insertions/deletions by rebuilding the CSR image (the substrate is
//! immutable by design); the matcher keeps its own state across updates.

use crate::pq::{Pq, PqResult};
use crate::reach::CachedReach;
use crate::rq::matches_of;
use rpq_graph::{Color, Graph, GraphBuilder, NodeId};
use std::collections::VecDeque;
use std::sync::Arc;

/// A data graph that accepts edge insertions and deletions.
///
/// Updates rebuild the immutable CSR image — O(|V| + |E| + updates) per
/// batch (the builder's edge index makes each update O(1)), which keeps the
/// traversal-side representation optimal. Batch several updates with
/// [`DynamicGraph::apply`] to pay the rebuild once.
///
/// The image is held behind an [`Arc`] so serving layers can publish each
/// version as an immutable snapshot without copying the graph: readers
/// holding a [`DynamicGraph::graph_arc`] clone keep a consistent view while
/// later batches replace the current image.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    graph: Arc<Graph>,
    version: u64,
}

/// One graph update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Update {
    /// Insert edge `(from, to, color)` (no-op if it already exists).
    Insert(NodeId, NodeId, Color),
    /// Delete edge `(from, to, color)` (no-op if absent).
    Delete(NodeId, NodeId, Color),
}

impl DynamicGraph {
    /// Wrap an existing graph.
    pub fn new(graph: Graph) -> Self {
        Self::from_arc(Arc::new(graph))
    }

    /// Wrap an already-shared graph (no copy).
    pub fn from_arc(graph: Arc<Graph>) -> Self {
        DynamicGraph { graph, version: 0 }
    }

    /// The current immutable image.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// A shared handle to the current image — this is what snapshot-based
    /// serving publishes to readers.
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// Monotonically increasing update-batch counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Apply a batch of `U` updates, rebuilding the CSR image once:
    /// O(|V| + |E| + U) total, via the builder's O(1) edge index (a naive
    /// edge-list scan per update would be O(U·|E|)).
    /// Returns the updates that actually changed the graph.
    pub fn apply(&mut self, updates: &[Update]) -> Vec<Update> {
        let mut b = GraphBuilder::from_graph(&self.graph);
        let mut effective = Vec::new();
        for &u in updates {
            let changed = match u {
                Update::Insert(x, y, c) => b.insert_edge(x, y, c),
                Update::Delete(x, y, c) => b.remove_edge(x, y, c),
            };
            if changed {
                effective.push(u);
            }
        }
        if effective.is_empty() {
            return effective;
        }
        self.graph = Arc::new(b.build());
        self.version += 1;
        effective
    }
}

/// Standing PQ matcher: evaluate once, then maintain the answer across
/// graph updates.
pub struct IncrementalMatcher {
    pq: Pq,
    /// current match sets per query node (sorted)
    mats: Vec<Vec<NodeId>>,
    engine: CachedReach,
    /// statistics: nodes re-examined by the last update
    last_reseeded: usize,
}

impl IncrementalMatcher {
    /// Evaluate `pq` on the current graph and set up maintenance state
    /// (default reachability-cache capacity).
    pub fn new(pq: Pq, g: &DynamicGraph) -> Self {
        Self::with_cache_capacity(pq, g, CachedReach::DEFAULT_CAPACITY)
    }

    /// Like [`new`](IncrementalMatcher::new) with an explicit LRU capacity
    /// for the matcher's reachability cache — serving layers thread their
    /// configured `reach_cache_capacity` through here instead of this
    /// module hard-coding one.
    pub fn with_cache_capacity(pq: Pq, g: &DynamicGraph, capacity: usize) -> Self {
        let mut engine = CachedReach::new(capacity);
        let mats = match crate::join_match::refine(&pq, g.graph(), &mut engine) {
            Some(mats) => mats,
            None => vec![Vec::new(); pq.node_count()],
        };
        IncrementalMatcher {
            pq,
            mats,
            engine,
            last_reseeded: 0,
        }
    }

    /// The query being maintained.
    pub fn pq(&self) -> &Pq {
        &self.pq
    }

    /// Number of candidate nodes the last update re-examined (diagnostic:
    /// how much work the incremental path saved over `|V|·|Vp|`).
    pub fn last_reseeded(&self) -> usize {
        self.last_reseeded
    }

    /// Current matches of query node `u`.
    pub fn matches(&self, u: usize) -> &[NodeId] {
        &self.mats[u]
    }

    /// The standing match sets, indexed by query node. Snapshot-based
    /// serving copies these out per published version and assembles the
    /// full per-edge result lazily via
    /// [`join_match::assemble`](crate::join_match::assemble).
    pub fn match_sets(&self) -> &[Vec<NodeId>] {
        &self.mats
    }

    /// True if the standing answer is empty.
    pub fn is_empty(&self) -> bool {
        self.mats.iter().any(|m| m.is_empty())
    }

    /// Maintain the answer after `g` has applied `effective` updates.
    ///
    /// Insertions can only grow match sets: candidates are re-seeded from
    /// the predicate-eligible nodes and refinement re-runs to the new
    /// greatest fixpoint. Deletions can only shrink them: refinement
    /// re-runs from the standing sets. A batch with both kinds is handled
    /// as a deletion-style refinement after insertion-style reseeding.
    pub fn on_update(&mut self, g: &DynamicGraph, effective: &[Update]) {
        if effective.is_empty() {
            return;
        }
        // reachability answers are stale after any topology change
        self.engine = CachedReach::new(self.engine.capacity());

        let had_insert = effective.iter().any(|u| matches!(u, Update::Insert(..)));
        self.last_reseeded = 0;
        if had_insert || self.is_empty() {
            // grow phase: candidates = standing matches ∪ predicate-eligible
            // nodes (a node excluded by an earlier refinement may now have
            // a witness). Restarting from this superset converges to the
            // new greatest fixpoint because refinement removes exactly the
            // nodes with no witness chain.
            let full: Vec<Vec<NodeId>> = (0..self.pq.node_count())
                .map(|u| matches_of(g.graph(), &self.pq.node(u).pred))
                .collect();
            self.last_reseeded = full
                .iter()
                .zip(&self.mats)
                .map(|(f, m)| f.len().saturating_sub(m.len()))
                .sum();
            self.mats = full;
        }
        // shrink phase (also validates grown sets)
        self.refine_in_place(g.graph());
    }

    /// Re-run the refinement fixpoint starting from the current `mats`.
    fn refine_in_place(&mut self, g: &Graph) {
        let pq = &self.pq;
        loop {
            let mut changed = false;
            for e in pq.edges() {
                let (from, to) = (e.from, e.to);
                let ok = crate::join_match::survivors(
                    g,
                    &mut self.engine,
                    &self.mats[from],
                    &self.mats[to],
                    &e.regex,
                );
                let kept: Vec<NodeId> = self.mats[from]
                    .iter()
                    .zip(&ok)
                    .filter(|(_, &o)| o)
                    .map(|(&x, _)| x)
                    .collect();
                if kept.len() != self.mats[from].len() {
                    self.mats[from] = kept;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if self.mats.iter().any(|m| m.is_empty()) {
            for m in &mut self.mats {
                m.clear();
            }
        }
        for m in &mut self.mats {
            m.sort_unstable();
        }
    }

    /// Assemble the full per-edge result from the standing match sets.
    pub fn result(&self, g: &DynamicGraph) -> PqResult {
        if self.is_empty() {
            return PqResult::empty(&self.pq);
        }
        crate::join_match::assemble(&self.pq, g.graph(), &self.mats)
    }

    /// Reference check: a full from-scratch evaluation (tests compare the
    /// incremental answer against this).
    pub fn full_reeval(&self, g: &DynamicGraph) -> PqResult {
        let mut engine = CachedReach::with_default_capacity();
        crate::join_match::JoinMatch::eval(&self.pq, g.graph(), &mut engine)
    }
}

/// Incremental RQ maintenance: the RQ special case is simple enough to
/// answer by re-running the product search over affected sources only.
///
/// Sources whose reach set can change are those that reach an updated
/// edge's source endpoint through a (wildcard) path prefix — a conservative
/// but sound overapproximation (any regex-constrained path is in particular
/// a wildcard path, so the wildcard test subsumes the per-regex one).
///
/// Cost: one multi-source backward BFS from all touched endpoints,
/// O(|V| + |E|) *total* — the work is hoisted out of the per-source loop
/// (one forward BFS per source, with a linear `touched` scan per node,
/// would be O(|mat(u1)|·(|V| + |E|) + |V|·|touched|)).
pub fn rq_affected_sources(g: &Graph, rq: &crate::rq::Rq, updates: &[Update]) -> Vec<NodeId> {
    let touched = updates.iter().map(|u| match *u {
        Update::Insert(a, _, _) | Update::Delete(a, _, _) => a,
    });
    // one backward wildcard BFS seeded with every touched endpoint at once:
    // marks exactly the nodes with a (possibly empty) path to some touched
    // node — including the touched nodes themselves
    let mut reaches_touched = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    for t in touched {
        if !reaches_touched[t.index()] {
            reaches_touched[t.index()] = true;
            queue.push_back(t);
        }
    }
    while let Some(v) = queue.pop_front() {
        for e in g.in_edges(v) {
            if !reaches_touched[e.node.index()] {
                reaches_touched[e.node.index()] = true;
                queue.push_back(e.node);
            }
        }
    }
    rq.matches_from(g)
        .into_iter()
        .filter(|&s| reaches_touched[s.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use rpq_graph::gen::{essembly, synthetic};
    use rpq_regex::FRegex;

    fn q2(g: &Graph) -> Pq {
        let mut pq = Pq::new();
        let b = pq.add_node(
            "B",
            Predicate::parse("job = \"doctor\" && dsp = \"cloning\"", g.schema()).unwrap(),
        );
        let c = pq.add_node(
            "C",
            Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
        );
        let d = pq.add_node(
            "D",
            Predicate::parse("uid = \"Alice001\"", g.schema()).unwrap(),
        );
        let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();
        pq.add_edge(b, c, re("fn"));
        pq.add_edge(c, b, re("fn"));
        pq.add_edge(c, c, re("fa+"));
        pq.add_edge(b, d, re("fn"));
        pq.add_edge(c, d, re("fa^2 sa^2"));
        pq
    }

    #[test]
    fn dynamic_graph_apply() {
        let mut dg = DynamicGraph::new(essembly());
        let c1 = dg.graph().node_by_label("C1").unwrap();
        let b1 = dg.graph().node_by_label("B1").unwrap();
        let fnc = dg.graph().alphabet().get("fn").unwrap();
        assert!(!dg.graph().has_edge(c1, b1, fnc));
        let eff = dg.apply(&[Update::Insert(c1, b1, fnc)]);
        assert_eq!(eff.len(), 1);
        assert!(dg.graph().has_edge(c1, b1, fnc));
        assert_eq!(dg.version(), 1);
        // duplicate insert is a no-op
        assert!(dg.apply(&[Update::Insert(c1, b1, fnc)]).is_empty());
        assert_eq!(dg.version(), 1);
        // delete restores the original
        let eff = dg.apply(&[Update::Delete(c1, b1, fnc)]);
        assert_eq!(eff.len(), 1);
        assert!(!dg.graph().has_edge(c1, b1, fnc));
        // attributes and labels survive rebuilds
        let job = dg.graph().schema().get("job").unwrap();
        assert_eq!(
            dg.graph().attrs(b1).get(job),
            Some(&rpq_graph::AttrValue::Str("doctor".into()))
        );
    }

    #[test]
    fn large_batch_apply_matches_reference_set() {
        // 1k-update batch on a 10k-edge graph: the edge-indexed apply must
        // agree with a reference set simulation (the perf side — O(U + E),
        // not O(U·E) — is covered by benches/incremental.rs)
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::HashSet;
        let mut rng = StdRng::seed_from_u64(7);
        let g = synthetic(2000, 10_000, 1, 3, 17);
        let mut reference: HashSet<(NodeId, NodeId, Color)> = g.edges().collect();
        let mut dg = DynamicGraph::new(g);

        let updates: Vec<Update> = (0..1000)
            .map(|_| {
                let x = NodeId(rng.gen_range(0..2000));
                let y = NodeId(rng.gen_range(0..2000));
                let c = Color(rng.gen_range(0..3));
                if rng.gen_bool(0.5) {
                    Update::Insert(x, y, c)
                } else {
                    Update::Delete(x, y, c)
                }
            })
            .collect();
        let mut expect_effective = 0usize;
        for &u in &updates {
            let changed = match u {
                Update::Insert(x, y, c) => reference.insert((x, y, c)),
                Update::Delete(x, y, c) => reference.remove(&(x, y, c)),
            };
            expect_effective += usize::from(changed);
        }

        let effective = dg.apply(&updates);
        assert_eq!(effective.len(), expect_effective);
        assert_eq!(dg.version(), 1, "one batch, one rebuild");
        assert_eq!(dg.graph().edge_count(), reference.len());
        let rebuilt: HashSet<(NodeId, NodeId, Color)> = dg.graph().edges().collect();
        assert_eq!(rebuilt, reference);
    }

    #[test]
    fn insertion_grows_matches() {
        // give C1 the fn edge to B1 it lacks: C1 then satisfies (C,B) and,
        // with its existing paths, joins the matches of C
        let mut dg = DynamicGraph::new(essembly());
        let pq = q2(dg.graph());
        let mut inc = IncrementalMatcher::new(pq, &dg);
        let c1 = dg.graph().node_by_label("C1").unwrap();
        let c_idx = 1;
        assert!(!inc.matches(c_idx).contains(&c1));

        let b1 = dg.graph().node_by_label("B1").unwrap();
        let fnc = dg.graph().alphabet().get("fn").unwrap();
        let eff = dg.apply(&[Update::Insert(c1, b1, fnc)]);
        inc.on_update(&dg, &eff);
        assert_eq!(inc.result(&dg), inc.full_reeval(&dg), "insert divergence");
        assert!(inc.matches(c_idx).contains(&c1), "C1 must join the matches");
    }

    #[test]
    fn deletion_shrinks_matches() {
        // remove C3's fn edges: the whole pattern collapses (no (C,B) pair)
        let mut dg = DynamicGraph::new(essembly());
        let pq = q2(dg.graph());
        let mut inc = IncrementalMatcher::new(pq, &dg);
        assert!(!inc.is_empty());
        let c3 = dg.graph().node_by_label("C3").unwrap();
        let b1 = dg.graph().node_by_label("B1").unwrap();
        let b2 = dg.graph().node_by_label("B2").unwrap();
        let fnc = dg.graph().alphabet().get("fn").unwrap();
        let eff = dg.apply(&[Update::Delete(c3, b1, fnc), Update::Delete(c3, b2, fnc)]);
        inc.on_update(&dg, &eff);
        assert_eq!(inc.result(&dg), inc.full_reeval(&dg), "delete divergence");
        assert!(inc.is_empty());
    }

    #[test]
    fn randomized_update_streams_match_full_reeval() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..4u64 {
            let g = synthetic(35, 110, 2, 3, 4400 + trial);
            let mut dg = DynamicGraph::new(g);
            let mut pq = Pq::new();
            let a = pq.add_node(
                "a",
                Predicate::parse(
                    &format!("a0 <= {}", rng.gen_range(4..9)),
                    dg.graph().schema(),
                )
                .unwrap(),
            );
            let b = pq.add_node("b", Predicate::always_true());
            pq.add_edge(
                a,
                b,
                FRegex::parse("c0^2 c1", dg.graph().alphabet()).unwrap(),
            );
            pq.add_edge(b, a, FRegex::parse("_+", dg.graph().alphabet()).unwrap());
            let mut inc = IncrementalMatcher::new(pq, &dg);
            for step in 0..12 {
                let x = NodeId(rng.gen_range(0..35));
                let y = NodeId(rng.gen_range(0..35));
                let c = Color(rng.gen_range(0..3));
                let upd = if rng.gen_bool(0.5) {
                    Update::Insert(x, y, c)
                } else {
                    Update::Delete(x, y, c)
                };
                if x == y {
                    continue;
                }
                let eff = dg.apply(&[upd]);
                inc.on_update(&dg, &eff);
                assert_eq!(
                    inc.result(&dg),
                    inc.full_reeval(&dg),
                    "trial {trial} step {step} after {upd:?}"
                );
            }
        }
    }

    #[test]
    fn empty_answer_recovers_after_insertion() {
        // start with an unsatisfiable pattern, then insert the edge that
        // satisfies it: the matcher must recover from the empty answer
        let mut b = GraphBuilder::new();
        let ja = b.attr("t");
        let x = b.add_node("x", [(ja, 1.into())]);
        let y = b.add_node("y", [(ja, 2.into())]);
        let c = b.color("c");
        let _ = c;
        let mut dg = DynamicGraph::new(b.build());
        let mut pq = Pq::new();
        let a = pq.add_node("a", Predicate::parse("t = 1", dg.graph().schema()).unwrap());
        let bb = pq.add_node("b", Predicate::parse("t = 2", dg.graph().schema()).unwrap());
        pq.add_edge(a, bb, FRegex::parse("c", dg.graph().alphabet()).unwrap());
        let mut inc = IncrementalMatcher::new(pq, &dg);
        assert!(inc.is_empty());
        let eff = dg.apply(&[Update::Insert(
            x,
            y,
            dg.graph().alphabet().get("c").unwrap(),
        )]);
        inc.on_update(&dg, &eff);
        assert!(!inc.is_empty());
        assert_eq!(inc.result(&dg), inc.full_reeval(&dg));
    }

    #[test]
    fn rq_affected_sources_is_conservative() {
        let g = essembly();
        let rq = crate::rq::Rq::new(
            Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
            FRegex::parse("fa^2 fn", g.alphabet()).unwrap(),
        );
        let c3 = g.node_by_label("C3").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        let fnc = g.alphabet().get("fn").unwrap();
        let affected = rq_affected_sources(&g, &rq, &[Update::Delete(c3, b1, fnc)]);
        // every source whose result could change must be listed: deleting
        // C3->B1 affects C1, C2 (their paths run through C3) and C3
        for lbl in ["C1", "C2", "C3"] {
            let v = g.node_by_label(lbl).unwrap();
            assert!(affected.contains(&v), "{lbl} must be affected");
        }
    }
}
