//! `SplitMatch` — the split-based PQ evaluation algorithm (§5.2, Fig. 8).
//!
//! Where `JoinMatch` refines one query node's match set at a time,
//! `SplitMatch` maintains a **partition** of the data nodes into blocks
//! together with a *partition–relation pair* ⟨par, rel⟩: `rel(u)` is the
//! set of blocks whose members are still candidate matches of query node
//! `u`. Refinement repeatedly computes, for an edge `e = (u', u)`, the set
//! `rmv(e)` of candidates of `u'` with no surviving witness, **splits**
//! every block of the partition against `rmv(e)` (procedure `Split`), and
//! drops the `⊆ rmv` blocks from `rel(u')` — the idea the paper adapts
//! from labeled-transition-system simulation algorithms \[Ranzato–Tapparo\].
//!
//! The initial partition groups data nodes by their *signature*: the set of
//! query nodes whose predicate they satisfy. All candidate bookkeeping then
//! happens at block granularity, and blocks only ever shrink by splitting —
//! the partition refines monotonically, which bounds the total number of
//! blocks by `O(|V|·|V'p|)` as in the paper's analysis.

use crate::pq::{Pq, PqResult};
use crate::reach::ReachEngine;
use rpq_graph::{Graph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Marker type for the split-based algorithm.
pub struct SplitMatch;

struct Partition {
    /// members of each block (dead blocks become empty)
    blocks: Vec<Vec<NodeId>>,
    /// block id per data node
    block_of: Vec<u32>,
}

impl Partition {
    /// Split every block against `rmv` (a set of data nodes, given as a
    /// mask). Returns `(old, new)` block-id pairs: `new` is the `∩ rmv`
    /// piece carved out of `old`. Blocks entirely inside or outside `rmv`
    /// are untouched (their id is reported in `fully_inside` if inside).
    fn split(&mut self, rmv_mask: &[bool], rmv_list: &[NodeId]) -> SplitOutcome {
        // group the removed nodes by their current block
        let mut touched: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for &x in rmv_list {
            touched.entry(self.block_of[x.index()]).or_default().push(x);
        }
        let mut carved: Vec<(u32, u32)> = Vec::new();
        let mut fully_inside: Vec<u32> = Vec::new();
        for (b, inside) in touched {
            if inside.len() == self.blocks[b as usize].len() {
                fully_inside.push(b);
                continue;
            }
            // carve B1 = B ∩ rmv out of B; B keeps B \ rmv
            let new_id = self.blocks.len() as u32;
            let members = &mut self.blocks[b as usize];
            members.retain(|x| !rmv_mask[x.index()]);
            for &x in &inside {
                self.block_of[x.index()] = new_id;
            }
            self.blocks.push(inside);
            carved.push((b, new_id));
        }
        SplitOutcome {
            carved,
            fully_inside,
        }
    }
}

struct SplitOutcome {
    /// (original block, new block holding the `∩ rmv` members)
    carved: Vec<(u32, u32)>,
    /// blocks that were entirely inside `rmv`
    fully_inside: Vec<u32>,
}

impl SplitMatch {
    /// Evaluate `pq` on `g` using `engine` for reachability probes.
    pub fn eval<R: ReachEngine>(pq: &Pq, g: &Graph, engine: &mut R) -> PqResult {
        let work = if engine.prefers_normalized() {
            pq.normalize()
        } else {
            pq.clone()
        };
        let nq = work.node_count();

        // --- initial ⟨par, rel⟩: signature-grouped blocks -------------
        let mut sig_to_block: HashMap<Vec<u64>, u32> = HashMap::new();
        let words = nq.div_ceil(64).max(1);
        let mut partition = Partition {
            blocks: Vec::new(),
            block_of: vec![0; g.node_count()],
        };
        let mut rel: Vec<HashSet<u32>> = vec![HashSet::new(); nq];
        for v in g.nodes() {
            let mut sig = vec![0u64; words];
            for u in 0..nq {
                if work.node(u).pred.matches(g.attrs(v)) {
                    sig[u / 64] |= 1 << (u % 64);
                }
            }
            let next_id = partition.blocks.len() as u32;
            let b = *sig_to_block.entry(sig.clone()).or_insert_with(|| {
                partition.blocks.push(Vec::new());
                for (u, rel_u) in rel.iter_mut().enumerate() {
                    if sig[u / 64] & (1 << (u % 64)) != 0 {
                        rel_u.insert(next_id);
                    }
                }
                next_id
            });
            partition.blocks[b as usize].push(v);
            partition.block_of[v.index()] = b;
        }
        if rel.iter().any(|r| r.is_empty()) {
            return PqResult::empty(pq);
        }

        // --- refinement loop (Fig. 8 lines 8-14) ----------------------
        let cand = |rel_u: &HashSet<u32>, partition: &Partition| -> Vec<NodeId> {
            let mut v: Vec<NodeId> = rel_u
                .iter()
                .flat_map(|&b| partition.blocks[b as usize].iter().copied())
                .collect();
            v.sort_unstable();
            v
        };

        let mut queued = vec![false; work.edge_count()];
        let mut worklist: VecDeque<usize> = (0..work.edge_count()).collect();
        for q in queued.iter_mut() {
            *q = true;
        }
        while let Some(ei) = worklist.pop_front() {
            queued[ei] = false;
            let edge = work.edge(ei);
            let (u_from, u_to) = (edge.from, edge.to);
            let sources = cand(&rel[u_from], &partition);
            let targets = cand(&rel[u_to], &partition);
            // rmv(e): candidates of u_from without a witness in cand(u_to)
            // — one bulk backend call per step (see join_match::survivors)
            let ok = crate::join_match::survivors(g, engine, &sources, &targets, &edge.regex);
            let rmv_list: Vec<NodeId> = sources
                .iter()
                .zip(&ok)
                .filter(|(_, &o)| !o)
                .map(|(&x, _)| x)
                .collect();
            if rmv_list.is_empty() {
                continue;
            }
            let mut rmv_mask = vec![false; g.node_count()];
            for &x in &rmv_list {
                rmv_mask[x.index()] = true;
            }
            // procedure Split: refine the partition against rmv
            let outcome = partition.split(&rmv_mask, &rmv_list);
            // every rel set that referenced a carved block now references
            // both pieces — except u_from, which sheds the ⊆ rmv piece
            for (u, rel_u) in rel.iter_mut().enumerate() {
                for &(old, new) in &outcome.carved {
                    if rel_u.contains(&old) && u != u_from {
                        rel_u.insert(new);
                    }
                }
            }
            // Fig. 8 line 11: drop blocks entirely inside rmv from rel(u')
            for &b in &outcome.fully_inside {
                rel[u_from].remove(&b);
            }
            if rel[u_from].is_empty()
                || rel[u_from]
                    .iter()
                    .all(|&b| partition.blocks[b as usize].is_empty())
            {
                return PqResult::empty(pq);
            }
            // lines 12-14: re-examine edges entering u_from
            for &e2 in work.in_edges(u_from) {
                if !queued[e2] {
                    queued[e2] = true;
                    worklist.push_back(e2);
                }
            }
        }

        // --- result collection (Fig. 8 lines 15-18) -------------------
        let mats: Vec<Vec<NodeId>> = (0..nq).map(|u| cand(&rel[u], &partition)).collect();
        if mats[..pq.node_count()].iter().any(|m| m.is_empty()) {
            return PqResult::empty(pq);
        }
        crate::join_match::assemble_with(pq, g, &mats, engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_match::JoinMatch;
    use crate::predicate::Predicate;
    use crate::reach::{CachedReach, MatrixReach};
    use rpq_graph::gen::{essembly, synthetic};
    use rpq_graph::DistanceMatrix;
    use rpq_regex::FRegex;

    fn q2(g: &Graph) -> Pq {
        let mut pq = Pq::new();
        let b = pq.add_node(
            "B",
            Predicate::parse("job = \"doctor\" && dsp = \"cloning\"", g.schema()).unwrap(),
        );
        let c = pq.add_node(
            "C",
            Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
        );
        let d = pq.add_node(
            "D",
            Predicate::parse("uid = \"Alice001\"", g.schema()).unwrap(),
        );
        let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();
        pq.add_edge(b, c, re("fn"));
        pq.add_edge(c, b, re("fn"));
        pq.add_edge(c, c, re("fa+"));
        pq.add_edge(b, d, re("fn"));
        pq.add_edge(c, d, re("fa^2 sa^2"));
        pq
    }

    #[test]
    fn example_5_2() {
        // SplitMatch on Q2 "identifies the same result as Example 2.3"
        let g = essembly();
        let pq = q2(&g);
        let oracle = pq.eval_naive(&g);
        let m = DistanceMatrix::build(&g);
        assert_eq!(SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m)), oracle);
        assert_eq!(
            SplitMatch::eval(&pq, &g, &mut CachedReach::new(4096)),
            oracle
        );
    }

    #[test]
    fn split_agrees_with_join_on_random_patterns() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..12 {
            let g = synthetic(40, 150, 2, 3, 2000 + trial);
            let m = DistanceMatrix::build(&g);
            let mut pq = Pq::new();
            let n_nodes = rng.gen_range(2..5usize);
            for i in 0..n_nodes {
                let pred = if rng.gen_bool(0.6) {
                    Predicate::parse(&format!("a1 >= {}", rng.gen_range(0..6)), g.schema()).unwrap()
                } else {
                    Predicate::always_true()
                };
                pq.add_node(&format!("u{i}"), pred);
            }
            for _ in 0..rng.gen_range(1..=n_nodes + 2) {
                let u = rng.gen_range(0..n_nodes);
                let v = rng.gen_range(0..n_nodes);
                let pool = ["c0", "c2^2", "c1+", "c0 c1", "_^2", "_+"];
                let r = pool[rng.gen_range(0..pool.len())];
                pq.add_edge(u, v, FRegex::parse(r, g.alphabet()).unwrap());
            }
            let join = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
            let split_m = SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
            let split_c = SplitMatch::eval(&pq, &g, &mut CachedReach::new(4096));
            let naive = pq.eval_naive(&g);
            assert_eq!(split_m, naive, "splitM vs naive, trial {trial}");
            assert_eq!(split_c, naive, "splitC vs naive, trial {trial}");
            assert_eq!(join, naive, "join vs naive, trial {trial}");
        }
    }

    #[test]
    fn empty_pattern_result() {
        let g = essembly();
        let mut pq = Pq::new();
        let a = pq.add_node(
            "X",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        // doctors have no sa out-edges at all
        let b = pq.add_node("Y", Predicate::always_true());
        pq.add_edge(a, b, FRegex::parse("sa", g.alphabet()).unwrap());
        let m = DistanceMatrix::build(&g);
        let res = SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
        assert!(res.is_empty());
        assert_eq!(res, pq.eval_naive(&g));
    }

    #[test]
    fn overlapping_predicates_share_blocks() {
        // two query nodes whose candidate sets overlap: block bookkeeping
        // must keep both rels correct through splits
        let g = essembly();
        let mut pq = Pq::new();
        let a = pq.add_node(
            "any-cloning",
            Predicate::parse("sp = \"cloning\"", g.schema()).unwrap(),
        );
        let b = pq.add_node(
            "biologist",
            Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
        );
        let re = FRegex::parse("fa", g.alphabet()).unwrap();
        pq.add_edge(a, b, re);
        let naive = pq.eval_naive(&g);
        let m = DistanceMatrix::build(&g);
        assert_eq!(SplitMatch::eval(&pq, &g, &mut MatrixReach::new(&m)), naive);
    }
}
