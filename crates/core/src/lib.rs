//! # rpq-core — reachability and graph pattern queries with regex edges
//!
//! The primary contribution of Fan et al., *"Adding regular expressions to
//! graph reachability and pattern queries"* (ICDE 2011): **RQs** and
//! **PQs** whose edges are constrained by the restricted regular-expression
//! class F, matched under an extension of graph simulation.
//!
//! Module map (paper section in parentheses):
//!
//! * [`predicate`] — node search conditions and their implication (§2, §3.1)
//! * [`rq`] — reachability queries and their three evaluation strategies (§4)
//! * [`pq`] — pattern queries, semantics, reference evaluator (§2)
//! * [`reach`] — matrix and cached-bi-BFS reachability backends (§4–5)
//! * [`join_match`] — the join-based PQ algorithm, Fig. 7 (§5.1)
//! * [`split_match`] — the split-based PQ algorithm, Fig. 8 (§5.2)
//! * [`simulation`] — revised query-to-query similarity (§3.1)
//! * [`contain`] — containment and equivalence of RQs/PQs (§3.1)
//! * [`canonical`] — run-normal canonical forms and pattern isomorphism,
//!   the keys of the engine's semantic cache and standing-query dedup
//! * [`mod@minimize`] — the cubic-time `minPQs` minimization, Fig. 6 (§3.2)
//! * [`baseline`] — `SubIso` and bounded-simulation `Match` baselines (§6)
//! * [`incremental`] — standing-query maintenance under graph updates
//!   (the §7 future-work direction)

pub mod baseline;
pub mod canonical;
pub mod contain;
pub mod grq;
pub mod incremental;
pub mod join_match;
pub mod lang;
pub mod minimize;
pub mod pq;
pub mod predicate;
pub mod reach;
pub mod rq;
pub mod simulation;
pub mod split_match;

pub use canonical::{canonical_pq, canonical_rq, pq_isomorphism, pq_same_shape, standing_form};
pub use contain::{
    pq_contained_in, pq_equivalent, rq_contained_in, rq_contained_in_fast, rq_equivalent,
};
pub use grq::GRq;
pub use incremental::{DynamicGraph, IncrementalMatcher, Update};
pub use join_match::JoinMatch;
pub use minimize::minimize;
pub use pq::{Pq, PqEdge, PqNode, PqResult};
pub use predicate::{CompOp, PredAtom, Predicate};
pub use reach::{CachedReach, MatrixReach, ReachEngine};
pub use rq::{Rq, RqResult};
pub use split_match::SplitMatch;
