//! Reachability queries with **general** regular expressions (§7).
//!
//! Evaluation carries over from RQs unchanged — the product-space search
//! only needs an automaton, and [`GNfa`] provides the same interface as
//! the class-F NFA. What does *not* carry over are the static analyses:
//! containment/equivalence of general expressions is PSPACE-complete
//! (Jiang & Ravikumar), so [`GRq`] deliberately exposes no `contained_in`.

use crate::predicate::Predicate;
use crate::rq::{matches_of, RqResult};
use rpq_graph::{Graph, NodeId};
use rpq_regex::{GNfa, GRegex};
use std::collections::VecDeque;

/// A reachability query whose edge constraint is a general regular
/// expression, e.g. `"(fa | sa)+ fn"`.
#[derive(Debug, Clone, PartialEq)]
pub struct GRq {
    /// Search condition on the source node.
    pub from: Predicate,
    /// Search condition on the target node.
    pub to: Predicate,
    /// The general edge constraint.
    pub regex: GRegex,
}

impl GRq {
    /// Build a general RQ.
    pub fn new(from: Predicate, to: Predicate, regex: GRegex) -> Self {
        GRq { from, to, regex }
    }

    /// Evaluate by forward product-automaton search from every candidate
    /// source (the BFS strategy; general expressions have no distance-
    /// matrix decomposition because their atoms are not single colors).
    pub fn eval(&self, g: &Graph) -> RqResult {
        let nfa = GNfa::compile(&self.regex);
        let targets = matches_of(g, &self.to);
        let mut is_target = vec![false; g.node_count()];
        for &t in &targets {
            is_target[t.index()] = true;
        }
        let mut pairs = Vec::new();
        for x in matches_of(g, &self.from) {
            for y in product_reach_set_general(g, &nfa, x) {
                if is_target[y.index()] {
                    pairs.push((x, y));
                }
            }
        }
        RqResult::from_pairs(pairs)
    }
}

/// All nodes `y` with a nonempty path `x ⇝ y` whose colors spell a word of
/// the general expression — forward BFS over the (node × GNfa state)
/// product.
pub fn product_reach_set_general(g: &Graph, nfa: &GNfa, x: NodeId) -> Vec<NodeId> {
    let states = nfa.state_count();
    let mut visited = vec![false; g.node_count() * states];
    let mut hit = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    visited[x.index() * states + nfa.start() as usize] = true;
    queue.push_back((x, nfa.start()));
    while let Some((u, s)) = queue.pop_front() {
        for e in g.out_edges(u) {
            for t in nfa.successors(s, e.color) {
                let slot = e.node.index() * states + t as usize;
                if !visited[slot] {
                    visited[slot] = true;
                    if nfa.is_accepting(t) {
                        hit[e.node.index()] = true;
                    }
                    queue.push_back((e.node, t));
                }
            }
        }
    }
    hit.iter()
        .enumerate()
        .filter(|(_, &h)| h)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rq::Rq;
    use rpq_graph::gen::{essembly, synthetic};
    use rpq_regex::FRegex;

    #[test]
    fn union_expresses_more_than_f() {
        // "(fa | sa)+": allies of either kind, any positive length —
        // inexpressible in the class F (which has no union of colors
        // other than the all-colors wildcard)
        let g = essembly();
        let grq = GRq::new(
            Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
            Predicate::parse("uid = \"Alice001\"", g.schema()).unwrap(),
            GRegex::parse("(fa | sa)+", g.alphabet()).unwrap(),
        );
        let res = grq.eval(&g);
        let n = |l: &str| g.node_by_label(l).unwrap();
        // every biologist reaches D1 through fa/sa chains (e.g. C3 fa C1 sa D1)
        for c in ["C1", "C2", "C3"] {
            assert!(res.contains(n(c), n("D1")), "{c} must reach D1");
        }
        // the wildcard over-approximates: fn edges would also count
        let wild = Rq::new(
            grq.from.clone(),
            grq.to.clone(),
            FRegex::parse("_+", g.alphabet()).unwrap(),
        );
        let wild_res = wild.eval_bfs(&g);
        for &(x, y) in res.as_slice() {
            assert!(wild_res.contains(x, y));
        }
    }

    #[test]
    fn agrees_with_f_class_on_embeddable_constraints() {
        let g = synthetic(40, 150, 2, 3, 77);
        for src in ["c0", "c0^2 c1", "c2+", "_^2"] {
            let f = FRegex::parse(src, g.alphabet()).unwrap();
            let rq = Rq::new(
                Predicate::always_true(),
                Predicate::always_true(),
                f.clone(),
            );
            let grq = GRq::new(
                Predicate::always_true(),
                Predicate::always_true(),
                GRegex::from_fregex(&f),
            );
            assert_eq!(rq.eval_bfs(&g), grq.eval(&g), "constraint {src}");
        }
    }

    #[test]
    fn star_with_anchor() {
        // "fa* fn": any number of fa hops then one fn
        let g = essembly();
        let grq = GRq::new(
            Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
            GRegex::parse("fa* fn", g.alphabet()).unwrap(),
        );
        let res = grq.eval(&g);
        let n = |l: &str| g.node_by_label(l).unwrap();
        // C3 matches with zero fa hops (direct fn), C1/C2 with several
        for c in ["C1", "C2", "C3"] {
            assert!(res.contains(n(c), n("B1")), "{c}");
        }
    }
}
