//! `JoinMatch` — the join-based PQ evaluation algorithm (§5.1, Fig. 7).
//!
//! The algorithm:
//! 1. If the reachability backend prefers it (matrix), **normalize** the
//!    query: split every multi-atom edge into single-atom edges through
//!    dummy nodes, so each refinement probe is O(1).
//! 2. Initialize each query node's match set `mat(u)` from its predicate.
//! 3. Compute the SCC DAG of the (normalized) query with Tarjan's
//!    algorithm and process components in **reversed topological order**,
//!    repeatedly joining each match set with its children's and pruning
//!    nodes that violate an edge constraint (procedure `Join`), until a
//!    fixpoint is reached per component.
//! 4. If any match set empties, the result is ∅; otherwise assemble the
//!    per-edge match sets `Se` of the *original* query.
//!
//! With the matrix backend this runs in O(|E'p|·|V|²) refinement time as
//! the paper shows; with the cached backend each probe may itself search.

use crate::pq::{Pq, PqResult};
use crate::reach::{product_reach_set, ReachEngine};
use crate::rq::matches_of;
use rpq_graph::algo::condensation;
use rpq_graph::{Graph, NodeId};
use rpq_regex::Nfa;
use std::collections::VecDeque;

/// Marker type for the join-based algorithm.
pub struct JoinMatch;

impl JoinMatch {
    /// Evaluate `pq` on `g` using `engine` for reachability probes.
    pub fn eval<R: ReachEngine>(pq: &Pq, g: &Graph, engine: &mut R) -> PqResult {
        let work = if engine.prefers_normalized() {
            pq.normalize()
        } else {
            pq.clone()
        };
        let mats = match refine(&work, g, engine) {
            Some(mats) => mats,
            None => return PqResult::empty(pq),
        };
        assemble_with(pq, g, &mats, engine)
    }
}

/// Core refinement loop shared with the baselines: computes the greatest
/// simulation-style fixpoint of match sets over `work`'s nodes, or `None`
/// if some set empties. Exposed crate-internally.
pub(crate) fn refine<R: ReachEngine>(
    work: &Pq,
    g: &Graph,
    engine: &mut R,
) -> Option<Vec<Vec<NodeId>>> {
    let n = work.node_count();
    let mut mats: Vec<Vec<NodeId>> = (0..n).map(|u| matches_of(g, &work.node(u).pred)).collect();
    if mats.iter().any(|m| m.is_empty()) {
        return None;
    }

    // SCC DAG of the query, components already in reversed topological
    // order (Tarjan's emission order).
    let (_, comps) = condensation(n, |u| {
        work.out_edges(u)
            .iter()
            .map(|&e| work.edge(e).to)
            .collect::<Vec<_>>()
            .into_iter()
    });

    let mut queued = vec![false; work.edge_count()];
    for comp in &comps {
        let in_comp = {
            let mut mask = vec![false; n];
            for &u in comp {
                mask[u] = true;
            }
            mask
        };
        // seed: every edge whose head lies in this component (Fig. 7 line 8)
        let mut worklist: VecDeque<usize> = VecDeque::new();
        for e in 0..work.edge_count() {
            if in_comp[work.edge(e).to] {
                worklist.push_back(e);
                queued[e] = true;
            }
        }
        while let Some(ei) = worklist.pop_front() {
            queued[ei] = false;
            let edge = work.edge(ei);
            let (u_from, u_to) = (edge.from, edge.to);
            // procedure Join: prune sources with no surviving witness. The
            // single-atom case (every edge, once normalized) runs as ONE
            // bulk backend call so index backends answer the whole step
            // from label/row scans — and can parallelize it.
            let (kept, removed) = {
                let (from_mat, to_mat) = (&mats[u_from], &mats[u_to]);
                let ok = survivors(g, engine, from_mat, to_mat, &edge.regex);
                let kept: Vec<NodeId> = from_mat
                    .iter()
                    .zip(&ok)
                    .filter(|(_, &o)| o)
                    .map(|(&x, _)| x)
                    .collect();
                let removed = kept.len() != from_mat.len();
                (kept, removed)
            };
            if removed {
                mats[u_from] = kept;
                if mats[u_from].is_empty() {
                    return None; // Fig. 7 line 11
                }
                // lines 12-13: predecessors of u_from must be re-checked
                for &e2 in work.in_edges(u_from) {
                    if !queued[e2] {
                        queued[e2] = true;
                        worklist.push_back(e2);
                    }
                }
            }
        }
    }
    Some(mats)
}

/// One refinement step's witness test, shared by `JoinMatch`, `SplitMatch`
/// and the incremental matcher: `out[i]` = does `sources[i]` reach some
/// target through `regex`? Single-atom expressions go through the bulk
/// [`ReachEngine::sources_reaching_atom`] primitive (index backends answer
/// it from aggregated label/row scans, possibly on several threads);
/// multi-atom expressions — only seen by non-normalizing backends — fall
/// back to pairwise probes.
pub(crate) fn survivors<R: ReachEngine + ?Sized>(
    g: &Graph,
    engine: &mut R,
    sources: &[NodeId],
    targets: &[NodeId],
    regex: &rpq_regex::FRegex,
) -> Vec<bool> {
    let atoms = regex.atoms();
    if atoms.len() == 1 {
        engine.sources_reaching_atom(g, sources, targets, &atoms[0])
    } else {
        sources
            .iter()
            .map(|&x| targets.iter().any(|&y| engine.reaches(g, x, y, regex)))
            .collect()
    }
}

/// The engine-less assembly backend: plain product-space searches with
/// NFA reuse per distinct regex — what [`assemble`] has always done,
/// expressed as a [`ReachEngine`] so `assemble` and [`assemble_with`]
/// share one loop.
#[derive(Default)]
struct ProductReach {
    nfas: std::collections::HashMap<rpq_regex::FRegex, Nfa>,
}

impl ProductReach {
    fn nfa(&mut self, re: &rpq_regex::FRegex) -> &Nfa {
        self.nfas
            .entry(re.clone())
            .or_insert_with(|| Nfa::from_regex(re))
    }
}

impl ReachEngine for ProductReach {
    fn prefers_normalized(&self) -> bool {
        false
    }

    fn reaches(&mut self, g: &Graph, x: NodeId, y: NodeId, re: &rpq_regex::FRegex) -> bool {
        crate::reach::product_pair_reaches(g, self.nfa(re), x, y)
    }

    fn reach_set(&mut self, g: &Graph, x: NodeId, re: &rpq_regex::FRegex) -> Vec<NodeId> {
        product_reach_set(g, self.nfa(re), x)
    }
}

/// Result assembly (Fig. 7 lines 15-16) over the *original* edges: for each
/// surviving source, enumerate its regex-reachable targets and intersect
/// with the target match set.
///
/// Public because serving layers that carry raw match sets (e.g. a
/// snapshot holding a standing query's maintained sets) assemble the full
/// per-edge result lazily, on first read, instead of on every update.
/// `mats[u]` must be the match set of query node `u` at a fixpoint of the
/// refinement on `g` — anything else yields garbage pairs, not an error.
pub fn assemble(pq: &Pq, g: &Graph, mats: &[Vec<NodeId>]) -> PqResult {
    assemble_with(pq, g, mats, &mut ProductReach::default())
}

/// [`assemble`] through a [`ReachEngine`]: per-source enumeration goes
/// through [`ReachEngine::reach_set`], so index backends assemble from
/// bounded neighborhood scans instead of product-space searches — on large
/// graphs the assembly step would otherwise dominate the whole hop-backed
/// evaluation. Identical output by construction.
pub fn assemble_with<R: ReachEngine + ?Sized>(
    pq: &Pq,
    g: &Graph,
    mats: &[Vec<NodeId>],
    engine: &mut R,
) -> PqResult {
    let mut edge_matches = Vec::with_capacity(pq.edge_count());
    for e in pq.edges() {
        let mut target_mask = vec![false; g.node_count()];
        for &y in &mats[e.to] {
            target_mask[y.index()] = true;
        }
        let mut pairs = Vec::new();
        for &x in &mats[e.from] {
            pairs.extend(
                engine
                    .reach_set(g, x, &e.regex)
                    .into_iter()
                    .filter(|y| target_mask[y.index()])
                    .map(|y| (x, y)),
            );
        }
        pairs.sort_unstable();
        edge_matches.push(pairs);
    }
    finish_assembly(pq, mats, edge_matches)
}

fn finish_assembly(
    pq: &Pq,
    mats: &[Vec<NodeId>],
    edge_matches: Vec<Vec<(NodeId, NodeId)>>,
) -> PqResult {
    let mut node_matches: Vec<Vec<NodeId>> = mats[..pq.node_count()].to_vec();
    for m in &mut node_matches {
        m.sort_unstable();
    }
    PqResult {
        node_matches,
        edge_matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::reach::{CachedReach, MatrixReach};
    use rpq_graph::gen::{essembly, synthetic};
    use rpq_graph::DistanceMatrix;
    use rpq_regex::FRegex;

    fn q2(g: &Graph) -> Pq {
        let mut pq = Pq::new();
        let b = pq.add_node(
            "B",
            Predicate::parse("job = \"doctor\" && dsp = \"cloning\"", g.schema()).unwrap(),
        );
        let c = pq.add_node(
            "C",
            Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
        );
        let d = pq.add_node(
            "D",
            Predicate::parse("uid = \"Alice001\"", g.schema()).unwrap(),
        );
        let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();
        pq.add_edge(b, c, re("fn"));
        pq.add_edge(c, b, re("fn"));
        pq.add_edge(c, c, re("fa+"));
        pq.add_edge(b, d, re("fn"));
        pq.add_edge(c, d, re("fa^2 sa^2"));
        pq
    }

    #[test]
    fn example_2_3_matrix_and_cache() {
        let g = essembly();
        let pq = q2(&g);
        let oracle = pq.eval_naive(&g);
        let m = DistanceMatrix::build(&g);
        let with_matrix = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
        assert_eq!(with_matrix, oracle, "JoinMatchM");
        let with_cache = JoinMatch::eval(&pq, &g, &mut CachedReach::new(4096));
        assert_eq!(with_cache, oracle, "JoinMatchC");
        assert_eq!(with_matrix.size(), 8);
    }

    #[test]
    fn example_5_1_pruning_story() {
        // Example 5.1 narrates which candidates JoinMatch prunes: C1 falls
        // to the (C,D) edge, C2 to the (C,B) edge; B keeps {B1,B2}.
        let g = essembly();
        let pq = q2(&g);
        let m = DistanceMatrix::build(&g);
        let res = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
        let n = |l: &str| g.node_by_label(l).unwrap();
        assert_eq!(res.node_matches(0), &[n("B1"), n("B2")]);
        assert_eq!(res.node_matches(1), &[n("C3")]);
        assert_eq!(res.node_matches(2), &[n("D1")]);
    }

    #[test]
    fn cyclic_pattern_on_cycle_graph() {
        // pattern: a 2-cycle of wildcard edges; data: a 3-cycle → matches
        let g = synthetic(30, 60, 1, 2, 5);
        let mut pq = Pq::new();
        let a = pq.add_node("a", Predicate::always_true());
        let b = pq.add_node("b", Predicate::always_true());
        let re = FRegex::parse("_+", g.alphabet()).unwrap();
        pq.add_edge(a, b, re.clone());
        pq.add_edge(b, a, re);
        let oracle = pq.eval_naive(&g);
        let m = DistanceMatrix::build(&g);
        assert_eq!(JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m)), oracle);
        assert_eq!(
            JoinMatch::eval(&pq, &g, &mut CachedReach::new(1024)),
            oracle
        );
    }

    #[test]
    fn agrees_with_naive_on_random_patterns() {
        // randomized cross-validation on small synthetic graphs
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..12 {
            let g = synthetic(40, 140, 2, 3, 1000 + trial);
            let mut pq = Pq::new();
            let n_nodes = rng.gen_range(2..5usize);
            for i in 0..n_nodes {
                let pred = if rng.gen_bool(0.5) {
                    Predicate::parse(&format!("a0 <= {}", rng.gen_range(3..10)), g.schema())
                        .unwrap()
                } else {
                    Predicate::always_true()
                };
                pq.add_node(&format!("u{i}"), pred);
            }
            let n_edges = rng.gen_range(1..=n_nodes + 2);
            let regex_pool = ["c0", "c1^2", "c0+", "c0^2 c1", "_^3", "_+"];
            for _ in 0..n_edges {
                let u = rng.gen_range(0..n_nodes);
                let v = rng.gen_range(0..n_nodes);
                let r = regex_pool[rng.gen_range(0..regex_pool.len())];
                pq.add_edge(u, v, FRegex::parse(r, g.alphabet()).unwrap());
            }
            let oracle = pq.eval_naive(&g);
            let m = DistanceMatrix::build(&g);
            let a = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
            let b = JoinMatch::eval(&pq, &g, &mut CachedReach::new(4096));
            assert_eq!(a, oracle, "matrix vs naive, trial {trial}");
            assert_eq!(b, oracle, "cached vs naive, trial {trial}");
        }
    }

    #[test]
    fn empty_when_predicate_unsatisfied() {
        let g = essembly();
        let mut pq = Pq::new();
        let a = pq.add_node(
            "X",
            Predicate::parse("job = \"astronaut\"", g.schema()).unwrap(),
        );
        let b = pq.add_node("Y", Predicate::always_true());
        pq.add_edge(a, b, FRegex::parse("fa", g.alphabet()).unwrap());
        let m = DistanceMatrix::build(&g);
        let res = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
        assert!(res.is_empty());
        assert_eq!(res, pq.eval_naive(&g));
    }
}
