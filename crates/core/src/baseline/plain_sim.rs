//! Plain graph simulation — the classical notion \[HHK95\] the paper's PQ
//! semantics extends.
//!
//! Under plain simulation a pattern edge maps to a **single** data edge of
//! admissible color (no hop bounds, no regex): it is the `b = 1` /
//! single-atom corner of PQs, and the origin point of the paper's
//! genealogy (simulation → bounded simulation \[20\] → regex-constrained
//! simulation, this paper). Exposed as a baseline so the expressiveness
//! ladder can be compared end to end.

use crate::join_match::{assemble, refine};
use crate::pq::{Pq, PqResult};
use crate::reach::ReachEngine;
use rpq_graph::{Graph, NodeId};
use rpq_regex::{Atom, FRegex, Quant};

/// Strip every edge constraint down to a single one-hop atom of its first
/// color: the plain-simulation reading of a PQ.
pub fn to_plain(pq: &Pq) -> Pq {
    let mut out = Pq::new();
    for n in pq.nodes() {
        out.add_node(&n.label, n.pred.clone());
    }
    for e in pq.edges() {
        let first = e.regex.atoms()[0].color;
        out.add_edge(e.from, e.to, FRegex::atom(first, Quant::One));
    }
    out
}

/// A direct edge-at-a-time engine for plain simulation: `(x, y) ⊨ c` iff
/// the data edge `x → y` of admissible color exists. No index, no search —
/// adjacency lookups only.
#[derive(Debug, Default)]
pub struct EdgeReach;

impl ReachEngine for EdgeReach {
    fn prefers_normalized(&self) -> bool {
        false
    }

    fn reaches(&mut self, g: &Graph, x: NodeId, y: NodeId, re: &FRegex) -> bool {
        debug_assert_eq!(re.len(), 1, "EdgeReach serves single-atom constraints");
        self.reaches_atom(g, x, y, &re.atoms()[0])
    }

    fn reaches_atom(&mut self, g: &Graph, x: NodeId, y: NodeId, atom: &Atom) -> bool {
        debug_assert_eq!(atom.quant, Quant::One, "plain simulation is one-hop");
        g.has_edge_admitting(x, y, atom.color)
    }
}

/// Evaluate the plain-simulation reading of `pq` on `g`: the greatest
/// simulation relation, reported in the usual [`PqResult`] form.
pub fn plain_sim_match(pq: &Pq, g: &Graph) -> PqResult {
    let plain = to_plain(pq);
    let mut engine = EdgeReach;
    match refine(&plain, g, &mut engine) {
        Some(mats) => assemble(&plain, g, &mats),
        None => PqResult::empty(&plain),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_match::JoinMatch;
    use crate::predicate::Predicate;
    use crate::reach::MatrixReach;
    use rpq_graph::gen::essembly;
    use rpq_graph::DistanceMatrix;

    #[test]
    fn one_hop_only() {
        // C --fn--> B: plain simulation sees exactly the direct fn edges
        let g = essembly();
        let mut pq = Pq::new();
        let c = pq.add_node(
            "C",
            Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
        );
        let b = pq.add_node(
            "B",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        pq.add_edge(c, b, FRegex::parse("fn", g.alphabet()).unwrap());
        let res = plain_sim_match(&pq, &g);
        let n = |l: &str| g.node_by_label(l).unwrap();
        assert_eq!(res.node_matches(0), &[n("C3")]);
        assert_eq!(res.node_matches(1), &[n("B1"), n("B2")]);
    }

    #[test]
    fn ladder_plain_subset_of_pq() {
        // on a single-atom one-hop query, plain simulation equals the PQ;
        // on a bounded query it is a subset (stricter edge reading)
        let g = essembly();
        let m = DistanceMatrix::build(&g);
        let mut pq = Pq::new();
        let c = pq.add_node(
            "C",
            Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
        );
        let b = pq.add_node(
            "B",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        pq.add_edge(c, b, FRegex::parse("fn^3", g.alphabet()).unwrap());

        let plain = plain_sim_match(&pq, &g);
        let full = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
        for &x in plain.node_matches(0) {
            assert!(full.node_matches(0).contains(&x));
        }
        let _ = c;
        let _ = b;
    }

    #[test]
    fn simulation_not_isomorphism() {
        // the classical separation: simulation allows two pattern nodes to
        // map to one data node, isomorphism does not
        let g = essembly();
        let mut pq = Pq::new();
        let c1 = pq.add_node(
            "C1",
            Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
        );
        let c2 = pq.add_node(
            "C2",
            Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
        );
        let b = pq.add_node(
            "B",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        let re = FRegex::parse("fn", g.alphabet()).unwrap();
        pq.add_edge(c1, b, re.clone());
        pq.add_edge(c2, b, re);
        let res = plain_sim_match(&pq, &g);
        let n = |l: &str| g.node_by_label(l).unwrap();
        // both C1 and C2 map to the single data node C3
        assert_eq!(res.node_matches(0), &[n("C3")]);
        assert_eq!(res.node_matches(1), &[n("C3")]);
    }
}
