//! `SubIso`: Ullmann-style subgraph isomorphism (the paper's baseline \[43\]).
//!
//! Traditional pattern matching: an embedding is an **injective** mapping
//! `m : Vp → V` such that every data node satisfies its query node's
//! predicate and every query edge `(u, u')` maps to a **single data edge**
//! `m(u) → m(u')` whose color is admitted by the first color of the edge's
//! constraint — the paper's experimental setup "restricts the color
//! constrained by a query edge to 1, to favor SubIso".
//!
//! The search is classic backtracking over candidate lists with
//! forward-checking refinement, plus a step budget so NP-hard worst cases
//! cannot wedge the harness (the paper's Fig. 12(f) makes the same point by
//! timing out SubIso on graphs of a few hundred nodes).

use crate::pq::Pq;
use crate::rq::matches_of;
use rpq_graph::{Graph, NodeId};
use std::collections::HashSet;

/// Outcome of a `SubIso` run.
#[derive(Debug, Clone)]
pub struct SubIsoResult {
    /// Distinct `(query node, data node)` pairs over all embeddings found —
    /// the `#matches` measure of §6 Exp-1.
    pub match_pairs: Vec<(usize, NodeId)>,
    /// Number of complete embeddings enumerated.
    pub embeddings: u64,
    /// False if the step budget expired before the search space was
    /// exhausted.
    pub complete: bool,
}

/// Run subgraph-isomorphism matching of `pq` on `g` with the given
/// backtracking step budget.
pub fn subiso_match(pq: &Pq, g: &Graph, max_steps: u64) -> SubIsoResult {
    let n = pq.node_count();
    if n == 0 {
        return SubIsoResult {
            match_pairs: Vec::new(),
            embeddings: 0,
            complete: true,
        };
    }
    // initial candidates: predicate matches
    let mut cands: Vec<Vec<NodeId>> = (0..n).map(|u| matches_of(g, &pq.node(u).pred)).collect();

    // Ullmann refinement: x is a candidate of u only if, for each query
    // edge (u, u'), x has an out-neighbor of admissible color among the
    // candidates of u' (and symmetrically for in-edges).
    let mut changed = true;
    while changed {
        changed = false;
        for u in 0..n {
            let before = cands[u].len();
            let kept: Vec<NodeId> = cands[u]
                .iter()
                .copied()
                .filter(|&x| {
                    pq.out_edges(u).iter().all(|&ei| {
                        let e = pq.edge(ei);
                        let color = e.regex.atoms()[0].color;
                        g.out_edges(x)
                            .iter()
                            .any(|de| color.admits(de.color) && cands[e.to].contains(&de.node))
                    }) && pq.in_edges(u).iter().all(|&ei| {
                        let e = pq.edge(ei);
                        let color = e.regex.atoms()[0].color;
                        g.in_edges(x)
                            .iter()
                            .any(|de| color.admits(de.color) && cands[e.from].contains(&de.node))
                    })
                })
                .collect();
            if kept.len() != before {
                cands[u] = kept;
                changed = true;
            }
        }
    }
    if cands.iter().any(|c| c.is_empty()) {
        return SubIsoResult {
            match_pairs: Vec::new(),
            embeddings: 0,
            complete: true,
        };
    }

    // search order: most constrained first
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&u| cands[u].len());

    let mut state = Search {
        pq,
        g,
        cands: &cands,
        order: &order,
        assignment: vec![None; n],
        used: HashSet::new(),
        pairs: HashSet::new(),
        embeddings: 0,
        steps: 0,
        max_steps,
    };
    let complete = state.dfs(0);
    let mut match_pairs: Vec<(usize, NodeId)> = state.pairs.into_iter().collect();
    match_pairs.sort_unstable();
    SubIsoResult {
        match_pairs,
        embeddings: state.embeddings,
        complete,
    }
}

struct Search<'a> {
    pq: &'a Pq,
    g: &'a Graph,
    cands: &'a [Vec<NodeId>],
    order: &'a [usize],
    assignment: Vec<Option<NodeId>>,
    used: HashSet<NodeId>,
    pairs: HashSet<(usize, NodeId)>,
    embeddings: u64,
    steps: u64,
    max_steps: u64,
}

impl Search<'_> {
    /// Returns false if the budget ran out.
    fn dfs(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            self.embeddings += 1;
            for (u, x) in self.assignment.iter().enumerate() {
                self.pairs.insert((u, x.expect("complete assignment")));
            }
            return true;
        }
        let u = self.order[depth];
        for i in 0..self.cands[u].len() {
            let x = self.cands[u][i];
            self.steps += 1;
            if self.steps > self.max_steps {
                return false;
            }
            if self.used.contains(&x) || !self.consistent(u, x) {
                continue;
            }
            self.assignment[u] = Some(x);
            self.used.insert(x);
            let ok = self.dfs(depth + 1);
            self.used.remove(&x);
            self.assignment[u] = None;
            if !ok {
                return false;
            }
        }
        true
    }

    /// Edge consistency of `u → x` against already-assigned neighbors.
    fn consistent(&self, u: usize, x: NodeId) -> bool {
        for &ei in self.pq.out_edges(u) {
            let e = self.pq.edge(ei);
            if let Some(y) = self.assignment[e.to] {
                let color = e.regex.atoms()[0].color;
                if !self.g.has_edge_admitting(x, y, color) {
                    return false;
                }
            }
        }
        for &ei in self.pq.in_edges(u) {
            let e = self.pq.edge(ei);
            if let Some(w) = self.assignment[e.from] {
                let color = e.regex.atoms()[0].color;
                if !self.g.has_edge_admitting(w, x, color) {
                    return false;
                }
            }
        }
        // self-loop edges where from == to == u
        for &ei in self.pq.out_edges(u) {
            let e = self.pq.edge(ei);
            if e.to == u {
                let color = e.regex.atoms()[0].color;
                if !self.g.has_edge_admitting(x, x, color) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use rpq_graph::gen::essembly;
    use rpq_graph::GraphBuilder;
    use rpq_regex::FRegex;

    #[test]
    fn finds_exact_triangle() {
        // data: triangle x->y->z->x of color c; pattern: the same triangle
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        let z = b.add_node("z", []);
        let c = b.color("c");
        b.add_edge(x, y, c);
        b.add_edge(y, z, c);
        b.add_edge(z, x, c);
        let g = b.build();
        let mut pq = Pq::new();
        let a0 = pq.add_node("a", Predicate::always_true());
        let a1 = pq.add_node("b", Predicate::always_true());
        let a2 = pq.add_node("c", Predicate::always_true());
        let re = FRegex::parse("c", g.alphabet()).unwrap();
        pq.add_edge(a0, a1, re.clone());
        pq.add_edge(a1, a2, re.clone());
        pq.add_edge(a2, a0, re);
        let res = subiso_match(&pq, &g, 1 << 20);
        assert!(res.complete);
        assert_eq!(res.embeddings, 3, "three rotations of the triangle");
        assert_eq!(res.match_pairs.len(), 9);
    }

    #[test]
    fn injectivity_enforced() {
        // pattern: two nodes both -> same target shape; data has only 2 nodes
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        let c = b.color("c");
        b.add_edge(x, y, c);
        let g = b.build();
        let mut pq = Pq::new();
        let a0 = pq.add_node("a", Predicate::always_true());
        let a1 = pq.add_node("b", Predicate::always_true());
        let a2 = pq.add_node("c", Predicate::always_true());
        let re = FRegex::parse("c", g.alphabet()).unwrap();
        pq.add_edge(a0, a1, re.clone());
        pq.add_edge(a2, a1, re);
        // a0 and a2 would both need to map to x, but injectivity forbids it
        let res = subiso_match(&pq, &g, 1 << 20);
        assert!(res.complete);
        assert_eq!(res.embeddings, 0);
        assert!(res.match_pairs.is_empty());
    }

    #[test]
    fn misses_multi_hop_matches_that_pqs_find() {
        // the Q1 shape on Essembly: edge-to-edge matching cannot see the
        // fa fa fn paths, so SubIso finds only the direct fn edges C3->Bi
        // when the constraint is relaxed to one hop, and nothing for the
        // two-hop shape
        let g = essembly();
        let mut pq = Pq::new();
        let c = pq.add_node(
            "C",
            Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
        );
        let b = pq.add_node(
            "B",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        pq.add_edge(c, b, FRegex::parse("fn", g.alphabet()).unwrap());
        let res = subiso_match(&pq, &g, 1 << 20);
        assert!(res.complete);
        assert_eq!(res.embeddings, 2, "C3->B1 and C3->B2");
        let pairs: Vec<_> = res.match_pairs;
        let c3 = g.node_by_label("C3").unwrap();
        assert!(pairs.contains(&(0, c3)));
        assert_eq!(pairs.iter().filter(|(u, _)| *u == 0).count(), 1);
    }

    #[test]
    fn budget_reports_incomplete() {
        let g = rpq_graph::gen::synthetic(60, 400, 1, 1, 3);
        let mut pq = Pq::new();
        let nodes: Vec<_> = (0..5)
            .map(|i| pq.add_node(&format!("u{i}"), Predicate::always_true()))
            .collect();
        let re = FRegex::parse("c0", g.alphabet()).unwrap();
        for w in nodes.windows(2) {
            pq.add_edge(w[0], w[1], re.clone());
        }
        let res = subiso_match(&pq, &g, 10);
        assert!(!res.complete);
    }

    #[test]
    fn self_loop_pattern() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        let c = b.color("c");
        b.add_edge(x, x, c);
        b.add_edge(x, y, c);
        let g = b.build();
        let mut pq = Pq::new();
        let a = pq.add_node("a", Predicate::always_true());
        pq.add_edge(a, a, FRegex::parse("c", g.alphabet()).unwrap());
        let res = subiso_match(&pq, &g, 1 << 20);
        assert_eq!(res.embeddings, 1, "only x has a self-loop");
        assert_eq!(res.match_pairs, vec![(0, x)]);
    }
}
