//! `Match`: bounded graph simulation (the paper's baseline \[20\],
//! Fan et al., PVLDB 2010).
//!
//! Bounded simulation is the special case of PQs where only a single edge
//! type exists: every edge carries a hop bound `k` (or `+`, unbounded) and
//! **edge colors are ignored**. The paper's Exp-1 runs `Match` on
//! multi-colored graphs exactly this way, which is why its recall is
//! perfect but its precision drops (Fig. 9(b)): it returns matches
//! connected by paths of the right length but the wrong relationship
//! types.
//!
//! Implementation: rewrite each edge constraint `c1^k1 … cn^kn` to the
//! wildcard bound `_^(k1+…+kn)` (or `_+` if any atom is `+`), then run the
//! same refinement fixpoint as `JoinMatch` — bounded simulation *is* that
//! fixpoint on the rewritten query.

use crate::join_match::JoinMatch;
use crate::pq::{Pq, PqResult};
use crate::reach::{total_bound, ReachEngine};
use rpq_graph::{Graph, WILDCARD};
use rpq_regex::{FRegex, Quant};

/// Rewrite a PQ into its bounded-simulation relaxation: same nodes and
/// edges, every constraint replaced by a wildcard with the summed bound.
pub fn to_bounded_wildcard(pq: &Pq) -> Pq {
    let mut out = Pq::new();
    for n in pq.nodes() {
        out.add_node(&n.label, n.pred.clone());
    }
    for e in pq.edges() {
        let quant = match total_bound(&e.regex) {
            Some(k) => Quant::AtMost(k),
            None => Quant::Plus,
        };
        out.add_edge(e.from, e.to, FRegex::atom(WILDCARD, quant));
    }
    out
}

/// Evaluate the `Match` baseline: bounded simulation of `pq`'s relaxation
/// on `g`. Returns a [`PqResult`] over the same node/edge indices as `pq`.
pub fn bounded_sim_match<R: ReachEngine>(pq: &Pq, g: &Graph, engine: &mut R) -> PqResult {
    let relaxed = to_bounded_wildcard(pq);
    JoinMatch::eval(&relaxed, g, engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::reach::MatrixReach;
    use rpq_graph::gen::essembly;
    use rpq_graph::DistanceMatrix;

    fn q1_pattern(g: &Graph) -> Pq {
        let mut pq = Pq::new();
        let c = pq.add_node(
            "C",
            Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
        );
        let b = pq.add_node(
            "B",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        pq.add_edge(c, b, FRegex::parse("fa^2 fn", g.alphabet()).unwrap());
        pq
    }

    #[test]
    fn rewrite_shape() {
        let g = essembly();
        let pq = q1_pattern(&g);
        let relaxed = to_bounded_wildcard(&pq);
        assert_eq!(relaxed.node_count(), 2);
        let e = relaxed.edge(0);
        assert_eq!(e.regex.atoms()[0].color, WILDCARD);
        assert_eq!(e.regex.atoms()[0].quant, Quant::AtMost(3));
    }

    #[test]
    fn recall_is_total_precision_is_not() {
        // ground truth: the color-aware PQ; Match: color-blind relaxation
        let g = essembly();
        let pq = q1_pattern(&g);
        let m = DistanceMatrix::build(&g);
        let truth = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
        let relaxed = bounded_sim_match(&pq, &g, &mut MatrixReach::new(&m));
        // every true edge match is found (full recall)
        for &p in truth.edge_matches(0) {
            assert!(
                relaxed.edge_matches(0).contains(&p),
                "bounded simulation must not miss {p:?}"
            );
        }
        // ...but extra, color-violating matches appear (lower precision):
        // C3 reaches doctors within 3 hops of arbitrary colors
        let c3 = g.node_by_label("C3").unwrap();
        let b1 = g.node_by_label("B1").unwrap();
        assert!(relaxed.edge_matches(0).contains(&(c3, b1)));
        assert!(!truth.edge_matches(0).contains(&(c3, b1)));
        assert!(relaxed.size() > truth.size());
    }

    #[test]
    fn plus_becomes_unbounded_wildcard() {
        let g = essembly();
        let mut pq = Pq::new();
        let a = pq.add_node("a", Predicate::always_true());
        let b = pq.add_node("b", Predicate::always_true());
        pq.add_edge(a, b, FRegex::parse("fa^2 fn+", g.alphabet()).unwrap());
        let relaxed = to_bounded_wildcard(&pq);
        assert_eq!(relaxed.edge(0).regex.atoms()[0].quant, Quant::Plus);
    }
}
