//! The paper's comparison baselines (§6, Exp-1):
//!
//! * [`subiso`] — `SubIso`, subgraph-isomorphism pattern matching in the
//!   style of Ullmann (the paper's \[43\]): edges map to single data edges,
//!   node mapping is injective. High precision, low recall on PQ workloads.
//! * [`bounded_sim`] — `Match`, bounded graph simulation (the paper's
//!   \[20\]): hop bounds are honored but edge colors are not. Full recall,
//!   lower precision.

pub mod bounded_sim;
pub mod plain_sim;
pub mod subiso;

pub use bounded_sim::{bounded_sim_match, to_bounded_wildcard};
pub use plain_sim::{plain_sim_match, to_plain, EdgeReach};
pub use subiso::{subiso_match, SubIsoResult};
