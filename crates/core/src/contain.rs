//! Containment and equivalence of RQs and PQs (§3.1).
//!
//! * RQs: `Q1 ⊑ Q2` iff `u1 ⊢ w1`, `u2 ⊢ w2` and `L(fe1) ⊆ L(fe2)` —
//!   decidable in quadratic time (Prop. 3.3).
//! * PQs: `Q1 ⊑ Q2` iff `Q2 ⊴ Q1` (Lemma 3.1), decidable in cubic time via
//!   the revised similarity (Thm. 3.2).

use crate::pq::Pq;
use crate::rq::Rq;
use crate::simulation::revised_similar;
use rpq_regex::contain::contains_scan;

/// RQ containment `a ⊑ b`: for every graph, every match pair of `a` is a
/// match pair of `b`.
pub fn rq_contained_in(a: &Rq, b: &Rq) -> bool {
    a.from.implies(&b.from) && a.to.implies(&b.to) && contains_scan(&a.regex, &b.regex)
}

/// RQ equivalence `a ≡ b`.
pub fn rq_equivalent(a: &Rq, b: &Rq) -> bool {
    rq_contained_in(a, b) && rq_contained_in(b, a)
}

/// RQ containment with the run-level regex fast path of
/// [`rpq_regex::canon`]: strictly more complete than [`rq_contained_in`]
/// (it additionally accepts containments the atom-aligned scan is blind
/// to, such as `a a ⊑ a^2`), still sound and linear-time. This is the
/// decider the engine's subsumption cache probes with.
pub fn rq_contained_in_fast(a: &Rq, b: &Rq) -> bool {
    a.from.implies(&b.from)
        && a.to.implies(&b.to)
        && rpq_regex::canon::contains_fast(&a.regex, &b.regex)
}

/// PQ containment `a ⊑ b` (Lemma 3.1: `a ⊑ b` iff `b ⊴ a`).
pub fn pq_contained_in(a: &Pq, b: &Pq) -> bool {
    revised_similar(b, a)
}

/// PQ equivalence `a ≡ b`.
pub fn pq_equivalent(a: &Pq, b: &Pq) -> bool {
    pq_contained_in(a, b) && pq_contained_in(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use rpq_graph::gen::{essembly, synthetic};
    use rpq_graph::{Alphabet, Schema};
    use rpq_regex::FRegex;

    #[test]
    fn rq_containment_basics() {
        let mut schema = Schema::new();
        schema.intern("age");
        let al = Alphabet::from_names(["c"]);
        let rq = |from: &str, to: &str, re: &str| {
            Rq::new(
                Predicate::parse(from, &schema).unwrap(),
                Predicate::parse(to, &schema).unwrap(),
                FRegex::parse(re, &al).unwrap(),
            )
        };
        let tight = rq("age > 10", "age = 3", "c^2");
        let loose = rq("age > 5", "age <= 3", "c^4");
        assert!(rq_contained_in(&tight, &loose));
        assert!(!rq_contained_in(&loose, &tight));
        assert!(rq_equivalent(&tight, &tight));
        assert!(!rq_equivalent(&tight, &loose));
        // regex mismatch alone breaks containment
        let other = rq("age > 10", "age = 3", "c");
        assert!(!rq_contained_in(&tight, &other));
        assert!(rq_contained_in(&other, &loose));
    }

    /// Semantic validation of RQ containment: on concrete graphs, if
    /// `a ⊑ b` syntactically then `a`'s result is a subset of `b`'s.
    #[test]
    fn rq_containment_is_semantically_sound() {
        let g = synthetic(60, 200, 2, 2, 11);
        let rqs: Vec<Rq> = [
            ("a0 > 3", "", "c0"),
            ("a0 > 5", "", "c0"),
            ("a0 > 5", "a1 < 5", "c0"),
            ("", "", "c0^2"),
            ("", "", "c0^3"),
            ("", "", "c0+"),
            ("a0 > 3", "", "c0 c1^2"),
            ("a0 > 3", "", "c0 c1^3"),
        ]
        .iter()
        .map(|(f, t, r)| {
            Rq::new(
                Predicate::parse(f, g.schema()).unwrap(),
                Predicate::parse(t, g.schema()).unwrap(),
                FRegex::parse(r, g.alphabet()).unwrap(),
            )
        })
        .collect();
        for a in &rqs {
            for b in &rqs {
                if rq_contained_in(a, b) {
                    let ra = a.eval_bfs(&g);
                    let rb = b.eval_bfs(&g);
                    for &(x, y) in ra.as_slice() {
                        assert!(rb.contains(x, y), "containment violated on ({x:?},{y:?})");
                    }
                }
            }
        }
    }

    /// Semantic validation of PQ containment on the Essembly graph: when
    /// `a ⊑ b`, there must be an edge mapping κ with `Se ⊆ S_{κ(e)}`.
    #[test]
    fn pq_containment_is_semantically_sound() {
        let g = essembly();
        let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();
        let bio = Predicate::parse("job = \"biologist\"", g.schema()).unwrap();
        let doc = Predicate::parse("job = \"doctor\"", g.schema()).unwrap();

        // a: biologist --fn--> doctor ; b: biologist --fn^2--> doctor
        let mut a = Pq::new();
        let a0 = a.add_node("C", bio.clone());
        let a1 = a.add_node("B", doc.clone());
        a.add_edge(a0, a1, re("fn"));
        let mut b = Pq::new();
        let b0 = b.add_node("C", bio);
        let b1 = b.add_node("B", doc);
        b.add_edge(b0, b1, re("fn^2"));

        assert!(pq_contained_in(&a, &b));
        assert!(!pq_contained_in(&b, &a));
        let ra = a.eval_naive(&g);
        let rb = b.eval_naive(&g);
        for &p in ra.edge_matches(0) {
            assert!(rb.edge_matches(0).contains(&p));
        }
    }

    #[test]
    fn pq_containment_reflexive_and_transitive() {
        // build a few related patterns and check order axioms
        let mut schema = Schema::new();
        schema.intern("t");
        let al = Alphabet::from_names(["c", "d"]);
        let p = Predicate::parse("t = 1", &schema).unwrap();
        let mk = |res: &[&str]| {
            let mut q = Pq::new();
            let a = q.add_node("a", p.clone());
            let b = q.add_node("b", Predicate::always_true());
            for r in res {
                q.add_edge(a, b, FRegex::parse(r, &al).unwrap());
            }
            q
        };
        let qs = [mk(&["c"]), mk(&["c^2"]), mk(&["c^3"]), mk(&["c", "d"])];
        for q in &qs {
            assert!(pq_contained_in(q, q), "reflexivity");
        }
        for x in &qs {
            for y in &qs {
                for z in &qs {
                    if pq_contained_in(x, y) && pq_contained_in(y, z) {
                        assert!(pq_contained_in(x, z), "transitivity");
                    }
                }
            }
        }
        assert!(pq_equivalent(&qs[0], &qs[0]));
        assert!(!pq_equivalent(&qs[0], &qs[1]));
    }
}
