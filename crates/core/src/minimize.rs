//! `minPQs` — cubic-time PQ minimization (§3.2, Fig. 6, Thm. 3.4).
//!
//! Three phases:
//!
//! 1. **Preprocessing**: compute the maximum revised self-similarity of the
//!    query and the simulation-equivalence classes `EQ` it induces.
//! 2. **Equivalent-query construction**: collapse each class to one node;
//!    between two classes keep only the *non-redundant* edge constraints
//!    (drop language-duplicates and any constraint strictly between two
//!    others); if a class needs `r` parallel constraints, materialize
//!    `N(eq) = max_{eq'} |NR(eq', eq)|` copies of the class so the result
//!    stays a simple graph.
//! 3. **Minimum construction**: on the rebuilt query, repeatedly delete
//!    *redundant edges* — an edge `e` is redundant when two other edges
//!    `e1, e2` exist whose endpoints simulate/are simulated by `e`'s and
//!    with `L(f_{e1}) ⊆ L(f_e) ⊆ L(f_{e2})` — then delete nodes this
//!    isolates.
//!
//! Unlike the paper's batch edge removal, redundant edges are removed one
//! at a time with the similarity recomputed in between, and each removal is
//! validated against query equivalence before it is committed. Batch
//! removal can delete two edges that each justified the other, and even a
//! single removal by the literal step-3 rule can be unsound: with two
//! equivalent copies `C#0, C#1` each carrying one `d`-edge to `B`, the rule
//! deems `C#0`'s edge redundant (witnessed by `C#1`'s), yet deleting it
//! frees `C#0`'s matches from the `d` constraint and the queries diverge.
//! The validation keeps the algorithm sound; its cost is another cubic
//! check per removal, and queries are tiny.

use crate::pq::{Pq, PqEdge};
use crate::simulation::{equivalence_classes, revised_similarity};
use rpq_regex::contain::{contains_scan, equivalent_scan};
use rpq_regex::FRegex;
use std::collections::HashMap;

/// Compute a minimum equivalent PQ of `q` (Fig. 6).
///
/// The result satisfies `pq_equivalent(&minimize(q), q)` and
/// `minimize(q).size() ≤ q.size()`.
pub fn minimize(q: &Pq) -> Pq {
    if q.node_count() == 0 {
        return q.clone();
    }
    // ---- step 1: classes (lines 1-2) -------------------------------
    let (class_of, classes) = equivalence_classes(q);

    // ---- step 2: equivalent query over classes (lines 3-5) ---------
    // collect per class-pair constraint sets and drop redundant ones
    let mut pair_res: HashMap<(usize, usize), Vec<FRegex>> = HashMap::new();
    for e in q.edges() {
        let key = (class_of[e.from], class_of[e.to]);
        let set = pair_res.entry(key).or_default();
        if !set.iter().any(|r| equivalent_scan(r, &e.regex)) {
            set.push(e.regex.clone());
        }
    }
    for set in pair_res.values_mut() {
        *set = drop_middles(std::mem::take(set));
    }

    // copies per class: N(eq) = max over predecessors of the non-redundant
    // parallel-edge count into eq (at least 1)
    let n_classes = classes.len();
    let mut copies = vec![1usize; n_classes];
    for (&(_, c2), set) in &pair_res {
        copies[c2] = copies[c2].max(set.len());
    }

    let mut qm = Pq::new();
    let mut copy_ids: Vec<Vec<usize>> = Vec::with_capacity(n_classes);
    for (cid, members) in classes.iter().enumerate() {
        let rep = members[0];
        let mut ids = Vec::with_capacity(copies[cid]);
        for i in 0..copies[cid] {
            ids.push(qm.add_node(
                &format!("{}#{i}", q.node(rep).label),
                q.node(rep).pred.clone(),
            ));
        }
        copy_ids.push(ids);
    }
    // wire each copy of the source class to distinct copies of the target
    // class, one per non-redundant constraint (deterministic stand-in for
    // the paper's "randomly chooses")
    for (&(c1, c2), set) in &pair_res {
        for &src in &copy_ids[c1] {
            for (j, regex) in set.iter().enumerate() {
                let tgt = copy_ids[c2][j % copy_ids[c2].len()];
                qm.add_edge(src, tgt, regex.clone());
            }
        }
    }

    // ---- step 3: remove redundant edges, then isolated nodes -------
    qm = prune_redundant(qm, q);

    // The paper's PQs are simple graphs, so step 2 materializes N(eq)
    // copies per class to host parallel constraints. This library's `Pq`
    // additionally permits parallel edges; on such multigraph inputs the
    // copies construction can exceed the input's size. Minimization must
    // never grow a query, so fall back to pruning the input directly.
    if qm.size() > q.size() {
        qm = prune_redundant(q.clone(), q);
    }
    debug_assert!(
        crate::contain::pq_equivalent(&qm, q),
        "minimize produced a non-equivalent query"
    );
    qm
}

/// Step 3 of `minPQs`: repeatedly remove redundant edges (each removal
/// validated for equivalence against `reference`), then drop nodes the
/// removals isolated.
fn prune_redundant(mut qm: Pq, reference: &Pq) -> Pq {
    let had_edges = qm.edge_count() > 0;
    loop {
        let sr = revised_similarity(&qm, &qm);
        let candidates = find_redundant_edges(&qm, &sr);
        let mut committed = false;
        for victim in candidates {
            let trimmed = remove_edge(&qm, victim);
            // soundness guard (see module docs): only commit removals that
            // provably preserve equivalence with the input query
            if crate::contain::pq_equivalent(&trimmed, reference) {
                qm = trimmed;
                committed = true;
                break;
            }
        }
        if !committed {
            break;
        }
    }
    if had_edges {
        qm = drop_isolated(&qm);
    }
    qm
}

/// Keep only the constraints that are not language-equal duplicates and not
/// strictly between two others (the step-2 redundancy rule).
fn drop_middles(set: Vec<FRegex>) -> Vec<FRegex> {
    let redundant: Vec<bool> = set
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let below = set
                .iter()
                .enumerate()
                .any(|(j, s)| j != i && contains_scan(s, r));
            let above = set
                .iter()
                .enumerate()
                .any(|(j, s)| j != i && contains_scan(r, s));
            below && above
        })
        .collect();
    set.into_iter()
        .zip(redundant)
        .filter(|(_, red)| !red)
        .map(|(r, _)| r)
        .collect()
}

/// All edges the step-3 rule deems redundant (candidates for removal).
fn find_redundant_edges(qm: &Pq, sr: &[Vec<bool>]) -> Vec<usize> {
    (0..qm.edge_count())
        .filter(|&ei| {
            let e = qm.edge(ei);
            let has_e1 = (0..qm.edge_count()).any(|j| {
                if j == ei {
                    return false;
                }
                let e1 = qm.edge(j);
                // e's endpoints are simulated by e1's, and e1 ⊨ e
                sr[e.from][e1.from] && sr[e.to][e1.to] && contains_scan(&e1.regex, &e.regex)
            });
            if !has_e1 {
                return false;
            }
            (0..qm.edge_count()).any(|j| {
                if j == ei {
                    return false;
                }
                let e2 = qm.edge(j);
                // e2's endpoints are simulated by e's, and e ⊨ e2
                sr[e2.from][e.from] && sr[e2.to][e.to] && contains_scan(&e.regex, &e2.regex)
            })
        })
        .collect()
}

fn remove_edge(q: &Pq, victim: usize) -> Pq {
    let mut out = Pq::new();
    for n in q.nodes() {
        out.add_node(&n.label, n.pred.clone());
    }
    for (i, PqEdge { from, to, regex }) in q.edges().iter().enumerate() {
        if i != victim {
            out.add_edge(*from, *to, regex.clone());
        }
    }
    out
}

fn drop_isolated(q: &Pq) -> Pq {
    let keep: Vec<bool> = (0..q.node_count())
        .map(|u| !q.out_edges(u).is_empty() || !q.in_edges(u).is_empty())
        .collect();
    if keep.iter().all(|&k| k) {
        return q.clone();
    }
    let mut remap = vec![usize::MAX; q.node_count()];
    let mut out = Pq::new();
    for (u, &k) in keep.iter().enumerate() {
        if k {
            remap[u] = out.add_node(&q.node(u).label, q.node(u).pred.clone());
        }
    }
    for e in q.edges() {
        out.add_edge(remap[e.from], remap[e.to], e.regex.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain::pq_equivalent;
    use crate::predicate::Predicate;
    use rpq_graph::{Alphabet, Schema};

    fn vocab() -> (Schema, Alphabet) {
        let mut s = Schema::new();
        s.intern("t");
        (s, Alphabet::from_names(["c", "d"]))
    }

    fn pred(s: &Schema, v: &str) -> Predicate {
        Predicate::parse(&format!("t = \"{v}\""), s).unwrap()
    }

    /// The Fig. 3 / Example 3.1 shape: B with three parallel-constraint
    /// children collapses to the two-edge form (Q1 → Q3), shrinking from
    /// size 7 to size 5.
    #[test]
    fn fig3_q1_minimizes_to_q3_shape() {
        let (s, al) = vocab();
        let mut q1 = Pq::new();
        let b = q1.add_node("B1", pred(&s, "B"));
        let cs: Vec<_> = (0..3)
            .map(|i| q1.add_node(&format!("C{i}"), pred(&s, "C")))
            .collect();
        for (i, &c) in cs.iter().enumerate() {
            let r = FRegex::parse(&format!("c^{}", i + 1), &al).unwrap();
            q1.add_edge(b, c, r);
        }
        let m = minimize(&q1);
        assert!(
            pq_equivalent(&m, &q1),
            "minimized query must stay equivalent"
        );
        // Q3 shape: one B, two C's, edges c (=c^1) and c^3
        assert_eq!(m.node_count(), 3);
        assert_eq!(m.edge_count(), 2);
        assert!(m.size() < q1.size());
        let mut langs: Vec<String> = m
            .edges()
            .iter()
            .map(|e| e.regex.display(&al).to_string())
            .collect();
        langs.sort();
        assert_eq!(langs, vec!["c", "c^3"]);
    }

    #[test]
    fn already_minimal_is_untouched_in_size() {
        let (s, al) = vocab();
        let mut q = Pq::new();
        let a = q.add_node("a", pred(&s, "A"));
        let b = q.add_node("b", pred(&s, "B"));
        q.add_edge(a, b, FRegex::parse("c^2", &al).unwrap());
        let m = minimize(&q);
        assert!(pq_equivalent(&m, &q));
        assert_eq!(m.size(), q.size());
    }

    #[test]
    fn duplicate_branches_collapse() {
        // two structurally identical children of a root merge into one
        let (s, al) = vocab();
        let mut q = Pq::new();
        let r = q.add_node("r", pred(&s, "R"));
        let x1 = q.add_node("x1", pred(&s, "X"));
        let x2 = q.add_node("x2", pred(&s, "X"));
        let c = FRegex::parse("c", &al).unwrap();
        q.add_edge(r, x1, c.clone());
        q.add_edge(r, x2, c.clone());
        let m = minimize(&q);
        assert!(pq_equivalent(&m, &q));
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn cycle_is_preserved() {
        let (s, al) = vocab();
        let mut q = Pq::new();
        let a = q.add_node("a", pred(&s, "A"));
        let b = q.add_node("b", pred(&s, "B"));
        let c = FRegex::parse("c", &al).unwrap();
        let d = FRegex::parse("d", &al).unwrap();
        q.add_edge(a, b, c);
        q.add_edge(b, a, d);
        let m = minimize(&q);
        assert!(pq_equivalent(&m, &q));
        assert_eq!(m.size(), q.size());
    }

    #[test]
    fn single_node_query_survives() {
        let (s, _) = vocab();
        let mut q = Pq::new();
        q.add_node("lonely", pred(&s, "A"));
        let m = minimize(&q);
        assert_eq!(m.node_count(), 1);
        assert!(pq_equivalent(&m, &q));
    }

    #[test]
    fn equivalent_self_loops_merge() {
        // a -c-> a self loop duplicated via an equivalent twin node
        let (s, al) = vocab();
        let mut q = Pq::new();
        let a1 = q.add_node("a1", pred(&s, "A"));
        let a2 = q.add_node("a2", pred(&s, "A"));
        let c = FRegex::parse("c+", &al).unwrap();
        q.add_edge(a1, a2, c.clone());
        q.add_edge(a2, a1, c.clone());
        q.add_edge(a1, a1, c.clone());
        q.add_edge(a2, a2, c.clone());
        let m = minimize(&q);
        assert!(pq_equivalent(&m, &q));
        assert!(
            m.size() <= 2,
            "expected a single self-looped node, got {m:?}"
        );
    }

    #[test]
    fn minimization_is_idempotent_in_size() {
        let (s, al) = vocab();
        let mut q = Pq::new();
        let b = q.add_node("B", pred(&s, "B"));
        let c1 = q.add_node("C1", pred(&s, "C"));
        let c2 = q.add_node("C2", pred(&s, "C"));
        q.add_edge(b, c1, FRegex::parse("c^2", &al).unwrap());
        q.add_edge(b, c2, FRegex::parse("c^4", &al).unwrap());
        q.add_edge(c1, b, FRegex::parse("d", &al).unwrap());
        q.add_edge(c2, b, FRegex::parse("d", &al).unwrap());
        let m1 = minimize(&q);
        let m2 = minimize(&m1);
        assert!(pq_equivalent(&m1, &q));
        assert!(pq_equivalent(&m2, &m1));
        assert_eq!(m1.size(), m2.size(), "second pass must not shrink further");
    }
}
