//! A small textual language for pattern queries.
//!
//! The paper defines PQs abstractly; a library users adopt needs a way to
//! write them down. The grammar is line-oriented:
//!
//! ```text
//! # comment
//! node B: job = "doctor" && dsp = "cloning";
//! node C: job = "biologist";
//! node D;                          # no predicate = match anything
//! edge B -> C: fn;
//! edge C -> D: fa^2 sa^2;
//! edge C -> C: fa+;
//! ```
//!
//! Node predicates use the [`crate::predicate::Predicate::parse`] syntax;
//! edge constraints use the [`rpq_regex::FRegex::parse`] syntax. Statements
//! end with `;` (a newline also terminates a statement). [`format_pq`]
//! prints a query back in this syntax; parsing its output round-trips.

use crate::pq::Pq;
use crate::predicate::{PredParseError, Predicate};
use rpq_graph::{Alphabet, Schema};
use rpq_regex::{FRegex, ParseError};
use std::collections::HashMap;
use std::fmt;

/// Why a query text failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// A statement is neither `node …` nor `edge …`.
    BadStatement(usize, String),
    /// Node declared twice.
    DuplicateNode(usize, String),
    /// Edge references an undeclared node.
    UnknownNode(usize, String),
    /// The predicate after `:` failed to parse.
    BadPredicate(usize, PredParseError),
    /// The regex after `:` failed to parse.
    BadRegex(usize, ParseError),
    /// `edge` without `->`.
    MissingArrow(usize, String),
    /// Edge without a constraint (every PQ edge carries one).
    MissingConstraint(usize, String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::BadStatement(l, s) => write!(f, "line {l}: unrecognized statement {s:?}"),
            LangError::DuplicateNode(l, n) => write!(f, "line {l}: node {n:?} declared twice"),
            LangError::UnknownNode(l, n) => write!(f, "line {l}: unknown node {n:?}"),
            LangError::BadPredicate(l, e) => write!(f, "line {l}: bad predicate: {e}"),
            LangError::BadRegex(l, e) => write!(f, "line {l}: bad edge constraint: {e}"),
            LangError::MissingArrow(l, s) => write!(f, "line {l}: edge needs '->': {s:?}"),
            LangError::MissingConstraint(l, s) => {
                write!(f, "line {l}: edge needs a ': <regex>' constraint: {s:?}")
            }
        }
    }
}

impl std::error::Error for LangError {}

/// Parse a query text against a graph vocabulary.
pub fn parse_pq(input: &str, schema: &Schema, alphabet: &Alphabet) -> Result<Pq, LangError> {
    let mut pq = Pq::new();
    let mut ids: HashMap<String, usize> = HashMap::new();

    for (lineno, raw_line) in input.lines().enumerate() {
        let line = lineno + 1;
        let uncommented = raw_line.split('#').next().unwrap_or("");
        for stmt in uncommented.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("node ") {
                let (name, pred_src) = match rest.split_once(':') {
                    Some((n, p)) => (n.trim(), p.trim()),
                    None => (rest.trim(), ""),
                };
                if ids.contains_key(name) {
                    return Err(LangError::DuplicateNode(line, name.to_owned()));
                }
                let pred = Predicate::parse(pred_src, schema)
                    .map_err(|e| LangError::BadPredicate(line, e))?;
                let id = pq.add_node(name, pred);
                ids.insert(name.to_owned(), id);
            } else if let Some(rest) = stmt.strip_prefix("edge ") {
                let (endpoints, regex_src) = match rest.split_once(':') {
                    Some((e, r)) => (e.trim(), r.trim()),
                    None => return Err(LangError::MissingConstraint(line, rest.to_owned())),
                };
                let (from, to) = endpoints
                    .split_once("->")
                    .map(|(a, b)| (a.trim(), b.trim()))
                    .ok_or_else(|| LangError::MissingArrow(line, endpoints.to_owned()))?;
                let &fid = ids
                    .get(from)
                    .ok_or_else(|| LangError::UnknownNode(line, from.to_owned()))?;
                let &tid = ids
                    .get(to)
                    .ok_or_else(|| LangError::UnknownNode(line, to.to_owned()))?;
                let regex =
                    FRegex::parse(regex_src, alphabet).map_err(|e| LangError::BadRegex(line, e))?;
                pq.add_edge(fid, tid, regex);
            } else {
                return Err(LangError::BadStatement(line, stmt.to_owned()));
            }
        }
    }
    Ok(pq)
}

/// Print a query in the language's syntax (round-trips through
/// [`parse_pq`]).
pub fn format_pq(pq: &Pq, schema: &Schema, alphabet: &Alphabet) -> String {
    let mut out = String::new();
    for n in pq.nodes() {
        if n.pred.is_trivial() {
            out.push_str(&format!("node {};\n", n.label));
        } else {
            out.push_str(&format!("node {}: {};\n", n.label, n.pred.display(schema)));
        }
    }
    for e in pq.edges() {
        out.push_str(&format!(
            "edge {} -> {}: {};\n",
            pq.node(e.from).label,
            pq.node(e.to).label,
            e.regex.display(alphabet)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_match::JoinMatch;
    use crate::reach::MatrixReach;
    use rpq_graph::gen::essembly;
    use rpq_graph::DistanceMatrix;

    const Q2_TEXT: &str = r#"
        # the paper's Q2 (Fig. 1)
        node B: job = "doctor" && dsp = "cloning";
        node C: job = "biologist" && sp = "cloning";
        node D: uid = "Alice001";
        edge B -> C: fn;
        edge C -> B: fn;
        edge C -> C: fa+;
        edge B -> D: fn;
        edge C -> D: fa^2 sa^2;
    "#;

    #[test]
    fn parse_q2_and_evaluate() {
        let g = essembly();
        let pq = parse_pq(Q2_TEXT, g.schema(), g.alphabet()).unwrap();
        assert_eq!(pq.node_count(), 3);
        assert_eq!(pq.edge_count(), 5);
        let m = DistanceMatrix::build(&g);
        let res = JoinMatch::eval(&pq, &g, &mut MatrixReach::new(&m));
        assert_eq!(res.size(), 8); // Example 2.3's table
    }

    #[test]
    fn roundtrip() {
        let g = essembly();
        let pq = parse_pq(Q2_TEXT, g.schema(), g.alphabet()).unwrap();
        let text = format_pq(&pq, g.schema(), g.alphabet());
        let again = parse_pq(&text, g.schema(), g.alphabet()).unwrap();
        assert_eq!(pq, again);
    }

    #[test]
    fn nodes_without_predicates_and_inline_statements() {
        let g = essembly();
        let pq = parse_pq(
            "node A; node B; edge A -> B: fa; edge B -> A: fn^3",
            g.schema(),
            g.alphabet(),
        )
        .unwrap();
        assert_eq!(pq.node_count(), 2);
        assert!(pq.node(0).pred.is_trivial());
        assert_eq!(pq.edge(1).regex.len(), 1);
    }

    #[test]
    fn errors_are_located() {
        let g = essembly();
        let err = |t: &str| parse_pq(t, g.schema(), g.alphabet()).unwrap_err();
        assert!(matches!(err("frob A"), LangError::BadStatement(1, _)));
        assert!(matches!(
            err("node A;\nnode A;"),
            LangError::DuplicateNode(2, _)
        ));
        assert!(matches!(
            err("node A;\nedge A -> Z: fa;"),
            LangError::UnknownNode(2, _)
        ));
        assert!(matches!(
            err("node A: bogus = 1;"),
            LangError::BadPredicate(1, _)
        ));
        assert!(matches!(
            err("node A;\nnode B;\nedge A -> B: zz;"),
            LangError::BadRegex(3, _)
        ));
        assert!(matches!(
            err("node A;\nedge A B: fa;"),
            LangError::MissingArrow(2, _)
        ));
        assert!(matches!(
            err("node A;\nedge A -> A"),
            LangError::MissingConstraint(2, _)
        ));
        // display formatting smoke test
        assert!(err("frob A").to_string().contains("line 1"));
    }

    #[test]
    fn comments_ignored() {
        let g = essembly();
        let pq = parse_pq(
            "# heading\nnode A: job = \"doctor\"; # trailing\n\n# edge X -> Y: zz\n",
            g.schema(),
            g.alphabet(),
        )
        .unwrap();
        assert_eq!(pq.node_count(), 1);
        assert_eq!(pq.edge_count(), 0);
    }
}
