//! Graph pattern queries (PQs) and their revised-simulation semantics (§2).
//!
//! A PQ is a directed graph whose nodes carry predicates and whose edges
//! carry F expressions — i.e. every edge is an embedded RQ. The result
//! `Qp(G)` is the **maximum** set `{(e, Se)}` such that every pair in `Se`
//! is an RQ match of `e`, every matched node can extend along *all* the
//! out-edges of its query node (recursively), and no `Se` is empty.
//! Prop. 2.1 shows this maximum is unique; operationally it is the greatest
//! fixpoint computed by [`Pq::eval_naive`] (the reference implementation
//! the fast algorithms of §5 are tested against).

use crate::predicate::Predicate;
use crate::reach::product_reach_set;
use crate::rq::matches_of;
use rpq_graph::{Graph, NodeId};
use rpq_regex::{FRegex, Nfa};

/// A pattern node: predicate plus a debug label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PqNode {
    /// Display label (no semantics).
    pub label: String,
    /// Search condition `f_v(u)`.
    pub pred: Predicate,
}

/// A pattern edge `(from, to)` constrained by `regex`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PqEdge {
    /// Source query-node index.
    pub from: usize,
    /// Target query-node index.
    pub to: usize,
    /// The embedded RQ's edge constraint.
    pub regex: FRegex,
}

/// A graph pattern query `Qp = (Vp, Ep, f_v, f_e)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pq {
    nodes: Vec<PqNode>,
    edges: Vec<PqEdge>,
    out: Vec<Vec<usize>>, // out-edge indices per node
    inc: Vec<Vec<usize>>, // in-edge indices per node
}

impl Pq {
    /// Empty pattern.
    pub fn new() -> Self {
        Pq::default()
    }

    /// Add a query node; returns its index.
    pub fn add_node(&mut self, label: &str, pred: Predicate) -> usize {
        self.nodes.push(PqNode {
            label: label.to_owned(),
            pred,
        });
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Add a query edge; returns its index.
    ///
    /// # Panics
    /// If `from`/`to` are out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, regex: FRegex) -> usize {
        assert!(from < self.nodes.len() && to < self.nodes.len());
        let id = self.edges.len();
        self.edges.push(PqEdge { from, to, regex });
        self.out[from].push(id);
        self.inc[to].push(id);
        id
    }

    /// Number of query nodes `|Vp|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of query edges `|Ep|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `|Q| = |Vp| + |Ep|`, the minimization metric of §3.2.
    pub fn size(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }

    /// The query node at `u`.
    pub fn node(&self, u: usize) -> &PqNode {
        &self.nodes[u]
    }

    /// The query edge at `e`.
    pub fn edge(&self, e: usize) -> &PqEdge {
        &self.edges[e]
    }

    /// All query nodes.
    pub fn nodes(&self) -> &[PqNode] {
        &self.nodes
    }

    /// All query edges.
    pub fn edges(&self) -> &[PqEdge] {
        &self.edges
    }

    /// Indices of edges leaving `u`.
    pub fn out_edges(&self, u: usize) -> &[usize] {
        &self.out[u]
    }

    /// Indices of edges entering `u`.
    pub fn in_edges(&self, u: usize) -> &[usize] {
        &self.inc[u]
    }

    /// Does the query graph contain a directed cycle (self-loops count)?
    ///
    /// A *shape signal* for the engine's PQ planner: §5.2 reports the
    /// split-based algorithm ahead of the join-based one on larger and
    /// cyclic patterns (cyclic components force `JoinMatch` to iterate a
    /// whole SCC to its fixpoint, while `SplitMatch`'s partition blocks
    /// shrink monotonically across the pattern). O(|Vp| + |Ep|), via the
    /// same SCC condensation the refinement loop orders components with:
    /// cyclic iff some component has ≥ 2 nodes or some edge is a self-loop.
    pub fn has_cycle(&self) -> bool {
        let (_, comps) = rpq_graph::algo::condensation(self.nodes.len(), |u| {
            self.out[u]
                .iter()
                .map(|&e| self.edges[e].to)
                .collect::<Vec<_>>()
                .into_iter()
        });
        comps.iter().any(|c| c.len() > 1) || self.edges.iter().any(|e| e.from == e.to)
    }

    /// Single-edge PQ from an RQ — "RQs are a special case of PQs" (§2).
    pub fn from_rq(rq: &crate::rq::Rq) -> Self {
        let mut pq = Pq::new();
        let a = pq.add_node("u1", rq.from.clone());
        let b = pq.add_node("u2", rq.to.clone());
        pq.add_edge(a, b, rq.regex.clone());
        pq
    }

    /// The dummy-node rewrite of §4/§5.1: every multi-atom edge is split
    /// into a chain of single-atom edges through fresh unconstrained nodes.
    /// Original node indices are preserved; dummies are appended.
    pub fn normalize(&self) -> Pq {
        let mut out = Pq::new();
        for n in &self.nodes {
            out.add_node(&n.label, n.pred.clone());
        }
        for e in &self.edges {
            let atoms = e.regex.atoms();
            let mut cur = e.from;
            for (i, atom) in atoms.iter().enumerate() {
                let tgt = if i + 1 == atoms.len() {
                    e.to
                } else {
                    out.add_node(&format!("dummy({},{i})", e.from), Predicate::always_true())
                };
                out.add_edge(cur, tgt, FRegex::new(vec![*atom]));
                cur = tgt;
            }
        }
        out
    }

    /// Reference semantics: the greatest fixpoint, computed naively.
    ///
    /// Exponentially simpler than `JoinMatch`/`SplitMatch` but asymptotically
    /// slower; used as the test oracle and for small graphs.
    pub fn eval_naive(&self, g: &Graph) -> PqResult {
        // candidate matches per query node
        let mut mats: Vec<Vec<NodeId>> =
            self.nodes.iter().map(|n| matches_of(g, &n.pred)).collect();
        // reach sets per (edge, source node), computed once
        let nfas: Vec<Nfa> = self
            .edges
            .iter()
            .map(|e| Nfa::from_regex(&e.regex))
            .collect();
        let mut reach: Vec<std::collections::HashMap<NodeId, Vec<NodeId>>> =
            vec![std::collections::HashMap::new(); self.edges.len()];

        loop {
            let mut changed = false;
            for (ei, e) in self.edges.iter().enumerate() {
                let target_mask = {
                    let mut mask = vec![false; g.node_count()];
                    for &y in &mats[e.to] {
                        mask[y.index()] = true;
                    }
                    mask
                };
                let (from, _) = (e.from, e.to);
                let mut keep = Vec::with_capacity(mats[from].len());
                for &x in &mats[from] {
                    let targets = reach[ei]
                        .entry(x)
                        .or_insert_with(|| product_reach_set(g, &nfas[ei], x));
                    if targets.iter().any(|&y| target_mask[y.index()]) {
                        keep.push(x);
                    } else {
                        changed = true;
                    }
                }
                mats[from] = keep;
            }
            if !changed {
                break;
            }
        }

        if mats.iter().any(|m| m.is_empty()) {
            return PqResult::empty(self);
        }
        // assemble Se per edge
        let mut edge_matches = Vec::with_capacity(self.edges.len());
        for (ei, e) in self.edges.iter().enumerate() {
            let target_mask = {
                let mut mask = vec![false; g.node_count()];
                for &y in &mats[e.to] {
                    mask[y.index()] = true;
                }
                mask
            };
            let mut pairs = Vec::new();
            for &x in &mats[e.from] {
                let targets = reach[ei]
                    .entry(x)
                    .or_insert_with(|| product_reach_set(g, &nfas[ei], x));
                pairs.extend(
                    targets
                        .iter()
                        .filter(|y| target_mask[y.index()])
                        .map(|&y| (x, y)),
                );
            }
            pairs.sort_unstable();
            edge_matches.push(pairs);
        }
        for m in &mut mats {
            m.sort_unstable();
        }
        PqResult {
            node_matches: mats,
            edge_matches,
        }
    }
}

/// Result of a PQ: per-edge match sets `Se` plus the per-node match sets
/// they induce. An empty result (condition (3) of the semantics) has all
/// sets empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PqResult {
    pub(crate) node_matches: Vec<Vec<NodeId>>,
    pub(crate) edge_matches: Vec<Vec<(NodeId, NodeId)>>,
}

impl PqResult {
    /// The all-empty result for `pq`.
    pub fn empty(pq: &Pq) -> Self {
        PqResult {
            node_matches: vec![Vec::new(); pq.node_count()],
            edge_matches: vec![Vec::new(); pq.edge_count()],
        }
    }

    /// Number of query nodes this result covers.
    pub fn node_count(&self) -> usize {
        self.node_matches.len()
    }

    /// Number of query edges this result covers.
    pub fn edge_count(&self) -> usize {
        self.edge_matches.len()
    }

    /// Matches of query node `u`, sorted.
    pub fn node_matches(&self, u: usize) -> &[NodeId] {
        &self.node_matches[u]
    }

    /// Matches `Se` of query edge `e`, sorted.
    pub fn edge_matches(&self, e: usize) -> &[(NodeId, NodeId)] {
        &self.edge_matches[e]
    }

    /// `Qp(G) = ∅`?
    pub fn is_empty(&self) -> bool {
        self.edge_matches.iter().any(|m| m.is_empty())
            || self.node_matches.iter().any(|m| m.is_empty())
    }

    /// The paper's result size `Σ_e |Se|`.
    pub fn size(&self) -> usize {
        self.edge_matches.iter().map(Vec::len).sum()
    }

    /// Distinct `(query node, data node)` match pairs — the `#matches`
    /// measure of §6 Exp-1.
    pub fn match_pair_count(&self) -> usize {
        self.node_matches.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::gen::essembly;

    /// The paper's Q2 (Fig. 1, Example 2.3).
    pub(crate) fn q2(g: &Graph) -> Pq {
        let mut pq = Pq::new();
        let b = pq.add_node(
            "B",
            Predicate::parse("job = \"doctor\" && dsp = \"cloning\"", g.schema()).unwrap(),
        );
        let c = pq.add_node(
            "C",
            Predicate::parse("job = \"biologist\" && sp = \"cloning\"", g.schema()).unwrap(),
        );
        let d = pq.add_node(
            "D",
            Predicate::parse("uid = \"Alice001\"", g.schema()).unwrap(),
        );
        let re = |s: &str| FRegex::parse(s, g.alphabet()).unwrap();
        pq.add_edge(b, c, re("fn")); // edge 0: (B,C)
        pq.add_edge(c, b, re("fn")); // edge 1: (C,B)
        pq.add_edge(c, c, re("fa+")); // edge 2: (C,C)
        pq.add_edge(b, d, re("fn")); // edge 3: (B,D)
        pq.add_edge(c, d, re("fa^2 sa^2")); // edge 4: (C,D)
        pq
    }

    /// Example 2.3's result table, exactly.
    #[test]
    fn example_2_3_naive() {
        let g = essembly();
        let pq = q2(&g);
        let res = pq.eval_naive(&g);
        let n = |l: &str| g.node_by_label(l).unwrap();
        assert!(!res.is_empty());
        assert_eq!(
            res.edge_matches(0),
            &[(n("B1"), n("C3")), (n("B2"), n("C3"))],
            "(B,C)"
        );
        assert_eq!(
            res.edge_matches(1),
            &[(n("C3"), n("B1")), (n("C3"), n("B2"))],
            "(C,B)"
        );
        assert_eq!(res.edge_matches(2), &[(n("C3"), n("C3"))], "(C,C)");
        assert_eq!(
            res.edge_matches(3),
            &[(n("B1"), n("D1")), (n("B2"), n("D1"))],
            "(B,D)"
        );
        assert_eq!(res.edge_matches(4), &[(n("C3"), n("D1"))], "(C,D)");
        // node matches: B → {B1,B2}, C → {C3}, D → {D1}
        assert_eq!(res.node_matches(0), &[n("B1"), n("B2")]);
        assert_eq!(res.node_matches(1), &[n("C3")]);
        assert_eq!(res.node_matches(2), &[n("D1")]);
        assert_eq!(res.size(), 8);
        assert_eq!(res.match_pair_count(), 4);
    }

    #[test]
    fn unsatisfiable_edge_empties_result() {
        let g = essembly();
        let mut pq = q2(&g);
        // add an edge D --sn--> B: D1's only sn-successor is H1 (physician)
        let re = FRegex::parse("sn", g.alphabet()).unwrap();
        pq.add_edge(2, 0, re);
        let res = pq.eval_naive(&g);
        assert!(res.is_empty());
        assert_eq!(res.size(), 0);
    }

    #[test]
    fn normalize_shapes() {
        let g = essembly();
        let pq = q2(&g);
        let norm = pq.normalize();
        // edges 0,1,3 single-atom stay; edge 2 single-atom (fa+);
        // edge 4 (fa^2 sa^2) splits into 2 atoms with 1 dummy
        assert_eq!(norm.node_count(), pq.node_count() + 1);
        assert_eq!(norm.edge_count(), pq.edge_count() + 1);
        assert!(norm.edges().iter().all(|e| e.regex.len() == 1));
        // original node indices preserved
        for u in 0..pq.node_count() {
            assert_eq!(norm.node(u).pred, pq.node(u).pred);
        }
    }

    #[test]
    fn from_rq_roundtrip() {
        let g = essembly();
        let rq = crate::rq::Rq::new(
            Predicate::parse("job = \"biologist\"", g.schema()).unwrap(),
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
            FRegex::parse("fa^2 fn", g.alphabet()).unwrap(),
        );
        let pq = Pq::from_rq(&rq);
        assert_eq!(pq.node_count(), 2);
        assert_eq!(pq.edge_count(), 1);
        let res = pq.eval_naive(&g);
        let rq_pairs = rq.eval_bfs(&g).pairs();
        assert_eq!(res.edge_matches(0), rq_pairs.as_slice());
    }

    #[test]
    fn cycle_detection() {
        let g = essembly();
        // q2 has the B↔C 2-cycle and the C self-loop
        assert!(q2(&g).has_cycle());
        // a pure chain is acyclic
        let mut chain = Pq::new();
        let a = chain.add_node("a", Predicate::always_true());
        let b = chain.add_node("b", Predicate::always_true());
        let c = chain.add_node("c", Predicate::always_true());
        let re = FRegex::parse("fa", g.alphabet()).unwrap();
        chain.add_edge(a, b, re.clone());
        chain.add_edge(b, c, re.clone());
        assert!(!chain.has_cycle());
        // a self-loop alone is a cycle
        chain.add_edge(c, c, re);
        assert!(chain.has_cycle());
        assert!(!Pq::new().has_cycle());
    }

    #[test]
    fn single_node_pattern() {
        let g = essembly();
        let mut pq = Pq::new();
        pq.add_node(
            "B",
            Predicate::parse("job = \"doctor\"", g.schema()).unwrap(),
        );
        let res = pq.eval_naive(&g);
        assert_eq!(res.node_matches(0).len(), 2);
        assert!(!res.is_empty());
    }
}
