//! Regex-constrained reachability backends — the **one** layer both query
//! classes evaluate through.
//!
//! Both PQ evaluation algorithms (§5) and RQ evaluation (§4) reduce to one
//! primitive: *does a nonempty path from `x` to `y` spell a word of
//! `L(fe)`?* The paper gives two ways to answer it, reflected here as
//! implementations of [`ReachEngine`]:
//!
//! * [`ProbeReach`] — backed by **any** distance index implementing
//!   [`DistProbe`]: the dense per-color [`DistanceMatrix`] (O(1) atom
//!   tests, the regime under the engine's matrix node limit) or the pruned
//!   2-hop labels of `rpq_index::HopLabels` (label-merge tests, the regime
//!   beyond it). Because atom tests are cheap on both, callers should
//!   *normalize* queries (split every edge into single-atom edges with
//!   dummy nodes) and get the paper's per-edge refinement; the bulk
//!   [`ReachEngine::sources_reaching_atom`] additionally lets index
//!   backends aggregate the target side once per `Join` step and spread
//!   large source sets over worker threads
//!   ([`ProbeReach::with_workers`]).
//! * [`CachedReach`] — no index: each pair test runs a bi-directional BFS
//!   over the (data node × NFA state) product space, memoized in a
//!   hand-rolled LRU cache, exactly the "distance cache using hashmap as
//!   indices" of §4. The final fallback while an index build is in flight
//!   or over budget.
//!
//! [`MatrixReach`] survives as an alias for `ProbeReach<DistanceMatrix>`:
//! the unification of this layer means `JoinMatch`/`SplitMatch` run
//! *unchanged* over matrix or hop labels — the planner picks the backend,
//! the algorithms stay the same.
//!
//! The free functions [`product_reach_set`] and [`product_pair_reaches`]
//! are the underlying product-space searches, usable on their own (they
//! also serve as the oracle in tests).

use rpq_graph::cache::LruCache;
use rpq_graph::{DistanceMatrix, Graph, NodeId};
use rpq_index::DistProbe;
use rpq_regex::{Atom, FRegex, Nfa, Quant};
use std::collections::{HashMap, HashSet, VecDeque};

/// All nodes `y` such that `(x, y) ⊨ re`, by forward BFS over the
/// (node × NFA state) product. O(states · (|V| + |E|)).
pub fn product_reach_set(g: &Graph, nfa: &Nfa, x: NodeId) -> Vec<NodeId> {
    let states = nfa.state_count();
    let mut visited = vec![false; g.node_count() * states];
    let mut hit = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    visited[x.index() * states + nfa.start() as usize] = true;
    queue.push_back((x, nfa.start()));
    while let Some((u, s)) = queue.pop_front() {
        for e in g.out_edges(u) {
            for t in nfa.successors(s, e.color) {
                let slot = e.node.index() * states + t as usize;
                if !visited[slot] {
                    visited[slot] = true;
                    if nfa.is_accepting(t) {
                        hit[e.node.index()] = true;
                    }
                    queue.push_back((e.node, t));
                }
            }
        }
    }
    hit.iter()
        .enumerate()
        .filter(|(_, &h)| h)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

/// Single-pair test `(x, y) ⊨ re` by **bi-directional** search over the
/// product space (§4): a forward frontier from `(x, start)` and a backward
/// frontier from `{(y, accept)}`; the smaller frontier expands each round.
pub fn product_pair_reaches(g: &Graph, nfa: &Nfa, x: NodeId, y: NodeId) -> bool {
    let mut fwd: HashSet<(NodeId, u32)> = HashSet::new();
    let mut bwd: HashSet<(NodeId, u32)> = HashSet::new();
    let mut fq: Vec<(NodeId, u32)> = Vec::new();
    let mut bq: Vec<(NodeId, u32)> = Vec::new();

    fwd.insert((x, nfa.start()));
    fq.push((x, nfa.start()));
    for a in nfa.accepting_states() {
        bwd.insert((y, a));
        bq.push((y, a));
    }

    while !fq.is_empty() && !bq.is_empty() {
        if fq.len() <= bq.len() {
            let mut next = Vec::new();
            for &(u, s) in &fq {
                for e in g.out_edges(u) {
                    for t in nfa.successors(s, e.color) {
                        let pair = (e.node, t);
                        if bwd.contains(&pair) {
                            return true;
                        }
                        if fwd.insert(pair) {
                            next.push(pair);
                        }
                    }
                }
            }
            fq = next;
        } else {
            let mut next = Vec::new();
            for &(v, t) in &bq {
                for e in g.in_edges(v) {
                    for s in nfa.predecessors(t, e.color) {
                        let pair = (e.node, s);
                        if fwd.contains(&pair) {
                            return true;
                        }
                        if bwd.insert(pair) {
                            next.push(pair);
                        }
                    }
                }
            }
            bq = next;
        }
    }
    false
}

/// A backend answering regex-constrained reachability tests.
///
/// `&mut self` because the cached backend memoizes.
pub trait ReachEngine {
    /// Should PQ algorithms normalize queries (single-atom edges with
    /// dummy nodes) before refinement? True exactly when single-atom tests
    /// are cheap index probes, i.e. for the [`ProbeReach`] backends (§5.1:
    /// "if one wants to use a distance matrix … Qp is normalized").
    fn prefers_normalized(&self) -> bool;

    /// Is there a nonempty path `x → y` whose colors spell a word in
    /// `L(re)`?
    fn reaches(&mut self, g: &Graph, x: NodeId, y: NodeId, re: &FRegex) -> bool;

    /// Atom fast path: `(x, y) ⊨ c^k / c / c+`.
    fn reaches_atom(&mut self, g: &Graph, x: NodeId, y: NodeId, atom: &Atom) -> bool {
        self.reaches(g, x, y, &FRegex::new(vec![*atom]))
    }

    /// Bulk `Join`-step primitive: `out[i]` is true iff some `y ∈ targets`
    /// satisfies `(sources[i], y) ⊨ atom`. The default short-circuits
    /// pairwise [`reaches_atom`](ReachEngine::reaches_atom) probes (right
    /// for the memoizing cached backend); index backends override it so a
    /// whole refinement step is answered from label/row scans instead of
    /// per-pair probes — and, for [`ProbeReach::with_workers`], spread
    /// across threads.
    fn sources_reaching_atom(
        &mut self,
        g: &Graph,
        sources: &[NodeId],
        targets: &[NodeId],
        atom: &Atom,
    ) -> Vec<bool> {
        sources
            .iter()
            .map(|&x| targets.iter().any(|&y| self.reaches_atom(g, x, y, atom)))
            .collect()
    }

    /// All `y` with `(x, y) ⊨ re` — the per-source enumeration PQ result
    /// assembly is built from. The default runs the forward
    /// product-automaton search ([`product_reach_set`], the only option
    /// without an index); [`ProbeReach`] overrides it with per-atom
    /// frontier stepping over bounded neighborhood scans, so assembly on
    /// index backends never touches the product space.
    fn reach_set(&mut self, g: &Graph, x: NodeId, re: &FRegex) -> Vec<NodeId> {
        product_reach_set(g, &Nfa::from_regex(re), x)
    }
}

/// Index-backed engine over any [`DistProbe`] — the unified replacement
/// for the former matrix-only backend. Atom tests are direct index probes;
/// multi-atom expressions fall back to frontier stepping with bounded
/// neighborhood scans (the paper's dummy-node decomposition, evaluated
/// in-place), so both the dense matrix and the pruned 2-hop labels serve
/// `JoinMatch`/`SplitMatch` through one code path.
///
/// The probe itself is shared immutably (`&P`): one index can back any
/// number of concurrently running engines, which is what lets a single
/// large PQ be refined by several batch workers at once
/// ([`ProbeReach::with_workers`]). The only per-engine state is a reusable
/// dedup scratch mask for frontier sweeps (kept all-false between calls),
/// so result assembly over thousands of sources doesn't re-zero an
/// O(|V|) buffer per source.
#[derive(Debug)]
pub struct ProbeReach<'a, P: DistProbe + ?Sized> {
    probe: &'a P,
    workers: usize,
    scratch: Vec<bool>,
}

/// Below this many sources a bulk refinement step is not worth spreading
/// over threads (spawn cost dominates the label scans).
const PAR_SOURCE_THRESHOLD: usize = 512;

impl<'a, P: DistProbe + ?Sized> ProbeReach<'a, P> {
    /// Wrap a pre-built index (a [`DistanceMatrix`] or
    /// `rpq_index::HopLabels`).
    pub fn new(probe: &'a P) -> Self {
        Self::with_workers(probe, 1)
    }

    /// Like [`new`](ProbeReach::new), but bulk refinement steps over large
    /// source sets are chunked across up to `workers` scoped threads
    /// (clamped to ≥ 1). Serving layers pass their idle batch-worker count
    /// here so one big PQ in a small batch still uses the whole machine.
    pub fn with_workers(probe: &'a P, workers: usize) -> Self {
        ProbeReach {
            probe,
            workers: workers.max(1),
            scratch: Vec::new(),
        }
    }

    /// Access the underlying index.
    pub fn probe(&self) -> &'a P {
        self.probe
    }
}

/// Matrix-backed engine — the historical name, now just [`ProbeReach`]
/// over the dense [`DistanceMatrix`].
pub type MatrixReach<'a> = ProbeReach<'a, DistanceMatrix>;

impl<P: DistProbe + ?Sized> ProbeReach<'_, P> {
    /// Advance a frontier through `atoms` one at a time — the paper's
    /// dummy-node decomposition evaluated in place, using bounded
    /// neighborhood scans (row scans on the matrix, inverted hub lists on
    /// labels — never per-pair probes against all of V). Returns the set
    /// of nodes reachable from `x` through every atom, i.e. exactly
    /// `{ y : (x, y) ⊨ atoms }` under the nonempty-path semantics
    /// ([`DistProbe::for_each_reaching_within`] is the per-atom step).
    /// Each step costs scan-output work, not O(|V|): the reusable scratch
    /// mask only dedups, and is restored to all-false via the nodes
    /// actually collected.
    fn frontier_sweep(&mut self, g: &Graph, x: NodeId, atoms: &[Atom]) -> Vec<NodeId> {
        if self.scratch.len() < g.node_count() {
            self.scratch.resize(g.node_count(), false);
        }
        let probe = self.probe;
        let mask = &mut self.scratch;
        let mut frontier: Vec<NodeId> = vec![x];
        for atom in atoms {
            let mut next: Vec<NodeId> = Vec::new();
            for &w in &frontier {
                probe.for_each_reaching_within(g, w, atom.color, atom.quant.max(), &mut |z| {
                    if !mask[z.index()] {
                        mask[z.index()] = true;
                        next.push(z);
                    }
                });
            }
            for &z in &next {
                mask[z.index()] = false;
            }
            if next.is_empty() {
                return next;
            }
            frontier = next;
        }
        frontier
    }
}

impl<P: DistProbe + Sync + ?Sized> ReachEngine for ProbeReach<'_, P> {
    fn prefers_normalized(&self) -> bool {
        true
    }

    fn reaches(&mut self, g: &Graph, x: NodeId, y: NodeId, re: &FRegex) -> bool {
        let atoms = re.atoms();
        if atoms.len() == 1 {
            return self.reaches_atom(g, x, y, &atoms[0]);
        }
        // sweep through all but the last atom, then one bulk test
        let frontier = self.frontier_sweep(g, x, &atoms[..atoms.len() - 1]);
        if frontier.is_empty() {
            return false;
        }
        let last = &atoms[atoms.len() - 1];
        self.probe
            .sources_reaching_within(g, &frontier, &[y], last.color, last.quant.max())
            .iter()
            .any(|&b| b)
    }

    fn reach_set(&mut self, g: &Graph, x: NodeId, re: &FRegex) -> Vec<NodeId> {
        self.frontier_sweep(g, x, re.atoms())
    }

    fn reaches_atom(&mut self, g: &Graph, x: NodeId, y: NodeId, atom: &Atom) -> bool {
        self.probe
            .reaches_within(g, x, y, atom.color, atom.quant.max())
    }

    fn sources_reaching_atom(
        &mut self,
        g: &Graph,
        sources: &[NodeId],
        targets: &[NodeId],
        atom: &Atom,
    ) -> Vec<bool> {
        let max_len = atom.quant.max();
        let probe = self.probe;
        // chunk the source side across scoped threads. Each chunk redoes
        // the backend's target-side aggregation, so a chunk must carry
        // enough sources to amortize it: at least the flat threshold, and
        // at least a quarter of the target count (the fold is linear in
        // targets) — this bounds the redundant aggregation work at a
        // small constant factor of one fold however many workers run.
        let min_chunk = PAR_SOURCE_THRESHOLD.max(targets.len() / 4);
        let workers = self.workers.min(sources.len().div_ceil(min_chunk));
        if workers <= 1 {
            return probe.sources_reaching_within(g, sources, targets, atom.color, max_len);
        }
        let chunk = sources.len().div_ceil(workers);
        let mut out = Vec::with_capacity(sources.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = sources
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        probe.sources_reaching_within(g, part, targets, atom.color, max_len)
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("refinement worker panicked"));
            }
        });
        out
    }
}

/// LRU-cached runtime engine: pair tests run the bi-directional product
/// search; results are memoized per `(x, y, regex)`.
pub struct CachedReach {
    nfas: Vec<Nfa>,
    ids: HashMap<FRegex, u32>,
    results: LruCache<(NodeId, NodeId, u32), bool>,
    atom_ids: HashMap<Atom, u32>,
}

impl CachedReach {
    /// Default LRU capacity, tuned for the paper's workloads (millions of
    /// pair probes against graphs of a few thousand nodes).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Engine with an LRU of `capacity` memoized pair answers.
    pub fn new(capacity: usize) -> Self {
        CachedReach {
            nfas: Vec::new(),
            ids: HashMap::new(),
            results: LruCache::new(capacity),
            atom_ids: HashMap::new(),
        }
    }

    /// Default capacity ([`DEFAULT_CAPACITY`](CachedReach::DEFAULT_CAPACITY)).
    pub fn with_default_capacity() -> Self {
        CachedReach::new(Self::DEFAULT_CAPACITY)
    }

    /// The configured LRU capacity.
    pub fn capacity(&self) -> usize {
        self.results.capacity()
    }

    fn intern(&mut self, re: &FRegex) -> u32 {
        if let Some(&id) = self.ids.get(re) {
            return id;
        }
        let id = self.nfas.len() as u32;
        self.nfas.push(Nfa::from_regex(re));
        self.ids.insert(re.clone(), id);
        id
    }

    /// `(hits, misses)` of the underlying cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.results.stats()
    }

    fn probe(&mut self, g: &Graph, x: NodeId, y: NodeId, id: u32) -> bool {
        if let Some(&v) = self.results.get(&(x, y, id)) {
            return v;
        }
        let answer = product_pair_reaches(g, &self.nfas[id as usize], x, y);
        self.results.insert((x, y, id), answer);
        answer
    }
}

impl ReachEngine for CachedReach {
    fn prefers_normalized(&self) -> bool {
        false
    }

    fn reaches(&mut self, g: &Graph, x: NodeId, y: NodeId, re: &FRegex) -> bool {
        let id = self.intern(re);
        self.probe(g, x, y, id)
    }

    fn reaches_atom(&mut self, g: &Graph, x: NodeId, y: NodeId, atom: &Atom) -> bool {
        let id = if let Some(&id) = self.atom_ids.get(atom) {
            id
        } else {
            let id = self.intern(&FRegex::new(vec![*atom]));
            self.atom_ids.insert(*atom, id);
            id
        };
        self.probe(g, x, y, id)
    }

    fn reach_set(&mut self, g: &Graph, x: NodeId, re: &FRegex) -> Vec<NodeId> {
        // reuse the interned NFA instead of recompiling per source
        let id = self.intern(re);
        product_reach_set(g, &self.nfas[id as usize], x)
    }
}

/// Plain forward product BFS pair test — the unindexed, uncached baseline
/// ("BFS" in Fig. 10(b)).
pub fn product_pair_reaches_forward(g: &Graph, nfa: &Nfa, x: NodeId, y: NodeId) -> bool {
    let states = nfa.state_count();
    let mut visited = vec![false; g.node_count() * states];
    let mut queue = VecDeque::new();
    visited[x.index() * states + nfa.start() as usize] = true;
    queue.push_back((x, nfa.start()));
    while let Some((u, s)) = queue.pop_front() {
        for e in g.out_edges(u) {
            for t in nfa.successors(s, e.color) {
                if e.node == y && nfa.is_accepting(t) {
                    return true;
                }
                let slot = e.node.index() * states + t as usize;
                if !visited[slot] {
                    visited[slot] = true;
                    queue.push_back((e.node, t));
                }
            }
        }
    }
    false
}

/// Quantifier helper: total hop budget of a regex (`None` if unbounded),
/// used by the bounded-simulation baseline.
pub fn total_bound(re: &FRegex) -> Option<u32> {
    re.atoms().iter().try_fold(0u32, |acc, a| match a.quant {
        Quant::One => Some(acc + 1),
        Quant::AtMost(k) => Some(acc + k),
        Quant::Plus => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::{Color, GraphBuilder, WILDCARD};

    /// The Essembly graph from Fig. 1.
    fn g() -> Graph {
        rpq_graph::gen::essembly()
    }

    fn re(g: &Graph, s: &str) -> FRegex {
        FRegex::parse(s, g.alphabet()).unwrap()
    }

    #[test]
    fn product_set_q1_paths() {
        let g = g();
        let q1 = re(&g, "fa^2 fn");
        let nfa = Nfa::from_regex(&q1);
        let c2 = g.node_by_label("C2").unwrap();
        let set = product_reach_set(&g, &nfa, c2);
        let b1 = g.node_by_label("B1").unwrap();
        let b2 = g.node_by_label("B2").unwrap();
        assert!(set.contains(&b1));
        assert!(set.contains(&b2));
        // C3 has no fa-then-fn continuation
        let c3 = g.node_by_label("C3").unwrap();
        let set3 = product_reach_set(&g, &nfa, c3);
        assert!(!set3.contains(&b1));
    }

    #[test]
    fn engines_agree_with_oracle() {
        let g = g();
        let regexes = [
            re(&g, "fa"),
            re(&g, "fa^2 fn"),
            re(&g, "fa+"),
            re(&g, "fa^2 sa^2"),
            re(&g, "fn _+"),
            re(&g, "_^3"),
        ];
        let matrix = DistanceMatrix::build(&g);
        let labels = rpq_index::HopLabels::build(&g);
        let mut mx = MatrixReach::new(&matrix);
        let mut hop = ProbeReach::new(&labels);
        let mut cached = CachedReach::new(1024);
        for r in &regexes {
            let nfa = Nfa::from_regex(r);
            for x in g.nodes() {
                for y in g.nodes() {
                    let oracle = product_pair_reaches_forward(&g, &nfa, x, y);
                    assert_eq!(
                        product_pair_reaches(&g, &nfa, x, y),
                        oracle,
                        "bidir {x:?}->{y:?} {r:?}"
                    );
                    assert_eq!(
                        mx.reaches(&g, x, y, r),
                        oracle,
                        "matrix {}->{} via {}",
                        g.label(x),
                        g.label(y),
                        r.display(g.alphabet())
                    );
                    assert_eq!(
                        hop.reaches(&g, x, y, r),
                        oracle,
                        "hop labels {x:?}->{y:?} {r:?}"
                    );
                    assert_eq!(cached.reaches(&g, x, y, r), oracle, "cached {x:?}->{y:?}");
                    // twice: exercise the cache-hit path
                    assert_eq!(cached.reaches(&g, x, y, r), oracle);
                }
            }
        }
        let (hits, misses) = cached.cache_stats();
        assert!(hits >= misses, "expected cache hits on repeat probes");
    }

    #[test]
    fn parallel_bulk_matches_sequential() {
        // the chunked multi-worker path must agree with one-shot bulk and
        // with pairwise probes, on both index backends
        let g = rpq_graph::gen::synthetic(1500, 6000, 1, 3, 13);
        let matrix = DistanceMatrix::build(&g);
        let labels = rpq_index::HopLabels::build(&g);
        let sources: Vec<NodeId> = g.nodes().collect();
        let targets: Vec<NodeId> = g.nodes().filter(|n| n.index() % 7 == 0).collect();
        for atom in [
            Atom::new(Color(0), Quant::One),
            Atom::new(Color(1), Quant::AtMost(3)),
            Atom::new(WILDCARD, Quant::Plus),
        ] {
            let want: Vec<bool> = sources
                .iter()
                .map(|&x| {
                    targets
                        .iter()
                        .any(|&y| MatrixReach::new(&matrix).reaches_atom(&g, x, y, &atom))
                })
                .collect();
            for workers in [1usize, 4] {
                let got_m = ProbeReach::with_workers(&matrix, workers)
                    .sources_reaching_atom(&g, &sources, &targets, &atom);
                assert_eq!(got_m, want, "matrix, {workers} workers, {atom:?}");
                let got_h = ProbeReach::with_workers(&labels, workers)
                    .sources_reaching_atom(&g, &sources, &targets, &atom);
                assert_eq!(got_h, want, "labels, {workers} workers, {atom:?}");
            }
        }
    }

    #[test]
    fn nonempty_path_semantics_at_same_node() {
        // x -c-> x self-loop vs. isolated y
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        let c = b.color("c");
        b.add_edge(x, x, c);
        b.add_edge(x, y, c);
        let g = b.build();
        let matrix = DistanceMatrix::build(&g);
        let mut mx = MatrixReach::new(&matrix);
        let mut cd = CachedReach::new(64);
        let rc = FRegex::parse("c+", g.alphabet()).unwrap();
        assert!(mx.reaches(&g, x, x, &rc));
        assert!(cd.reaches(&g, x, x, &rc));
        assert!(!mx.reaches(&g, y, y, &rc));
        assert!(!cd.reaches(&g, y, y, &rc));
    }

    #[test]
    fn multi_atom_through_cycle() {
        // ring with two colors; regex must thread through the boundary
        let mut b = GraphBuilder::new();
        let ns: Vec<_> = (0..5).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let r = b.color("r");
        let s = b.color("s");
        b.add_edge(ns[0], ns[1], r);
        b.add_edge(ns[1], ns[2], r);
        b.add_edge(ns[2], ns[3], s);
        b.add_edge(ns[3], ns[4], s);
        let g = b.build();
        let matrix = DistanceMatrix::build(&g);
        let mut mx = MatrixReach::new(&matrix);
        let re = FRegex::parse("r^2 s^2", g.alphabet()).unwrap();
        assert!(mx.reaches(&g, ns[0], ns[4], &re));
        assert!(mx.reaches(&g, ns[0], ns[3], &re));
        assert!(!mx.reaches(&g, ns[0], ns[2], &re)); // needs at least one s
        assert!(mx.reaches(&g, ns[1], ns[3], &re));
    }

    #[test]
    fn wildcard_atom_reach() {
        let g = g();
        let matrix = DistanceMatrix::build(&g);
        let mut mx = MatrixReach::new(&matrix);
        let d1 = g.node_by_label("D1").unwrap();
        let h1 = g.node_by_label("H1").unwrap();
        let w = FRegex::new(vec![Atom::new(WILDCARD, Quant::AtMost(2))]);
        assert!(mx.reaches(&g, d1, h1, &w));
    }

    #[test]
    fn total_bound_helper() {
        let g = g();
        assert_eq!(total_bound(&re(&g, "fa^2 fn")), Some(3));
        assert_eq!(total_bound(&re(&g, "fa")), Some(1));
        assert_eq!(total_bound(&re(&g, "fa^2 fn+")), None);
    }
}
