//! Regex-constrained reachability backends.
//!
//! Both PQ evaluation algorithms (§5) and RQ evaluation (§4) reduce to one
//! primitive: *does a nonempty path from `x` to `y` spell a word of
//! `L(fe)`?* The paper gives two ways to answer it, reflected here as
//! implementations of [`ReachEngine`]:
//!
//! * [`MatrixReach`] — backed by the pre-computed per-color
//!   [`DistanceMatrix`]; single-atom tests are O(1), so callers that can
//!   *normalize* queries (split every edge into single-atom edges with
//!   dummy nodes) get the paper's O(|V|²)-per-edge refinement.
//! * [`CachedReach`] — no index: each pair test runs a bi-directional BFS
//!   over the (data node × NFA state) product space, memoized in a
//!   hand-rolled LRU cache, exactly the "distance cache using hashmap as
//!   indices" of §4.
//!
//! The free functions [`product_reach_set`] and [`product_pair_reaches`]
//! are the underlying product-space searches, usable on their own (they
//! also serve as the oracle in tests).

use rpq_graph::cache::LruCache;
use rpq_graph::{DistanceMatrix, Graph, NodeId};
use rpq_regex::{Atom, FRegex, Nfa, Quant};
use std::collections::{HashMap, HashSet, VecDeque};

/// All nodes `y` such that `(x, y) ⊨ re`, by forward BFS over the
/// (node × NFA state) product. O(states · (|V| + |E|)).
pub fn product_reach_set(g: &Graph, nfa: &Nfa, x: NodeId) -> Vec<NodeId> {
    let states = nfa.state_count();
    let mut visited = vec![false; g.node_count() * states];
    let mut hit = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    visited[x.index() * states + nfa.start() as usize] = true;
    queue.push_back((x, nfa.start()));
    while let Some((u, s)) = queue.pop_front() {
        for e in g.out_edges(u) {
            for t in nfa.successors(s, e.color) {
                let slot = e.node.index() * states + t as usize;
                if !visited[slot] {
                    visited[slot] = true;
                    if nfa.is_accepting(t) {
                        hit[e.node.index()] = true;
                    }
                    queue.push_back((e.node, t));
                }
            }
        }
    }
    hit.iter()
        .enumerate()
        .filter(|(_, &h)| h)
        .map(|(i, _)| NodeId(i as u32))
        .collect()
}

/// Single-pair test `(x, y) ⊨ re` by **bi-directional** search over the
/// product space (§4): a forward frontier from `(x, start)` and a backward
/// frontier from `{(y, accept)}`; the smaller frontier expands each round.
pub fn product_pair_reaches(g: &Graph, nfa: &Nfa, x: NodeId, y: NodeId) -> bool {
    let mut fwd: HashSet<(NodeId, u32)> = HashSet::new();
    let mut bwd: HashSet<(NodeId, u32)> = HashSet::new();
    let mut fq: Vec<(NodeId, u32)> = Vec::new();
    let mut bq: Vec<(NodeId, u32)> = Vec::new();

    fwd.insert((x, nfa.start()));
    fq.push((x, nfa.start()));
    for a in nfa.accepting_states() {
        bwd.insert((y, a));
        bq.push((y, a));
    }

    while !fq.is_empty() && !bq.is_empty() {
        if fq.len() <= bq.len() {
            let mut next = Vec::new();
            for &(u, s) in &fq {
                for e in g.out_edges(u) {
                    for t in nfa.successors(s, e.color) {
                        let pair = (e.node, t);
                        if bwd.contains(&pair) {
                            return true;
                        }
                        if fwd.insert(pair) {
                            next.push(pair);
                        }
                    }
                }
            }
            fq = next;
        } else {
            let mut next = Vec::new();
            for &(v, t) in &bq {
                for e in g.in_edges(v) {
                    for s in nfa.predecessors(t, e.color) {
                        let pair = (e.node, s);
                        if fwd.contains(&pair) {
                            return true;
                        }
                        if bwd.insert(pair) {
                            next.push(pair);
                        }
                    }
                }
            }
            bq = next;
        }
    }
    false
}

/// A backend answering regex-constrained reachability tests.
///
/// `&mut self` because the cached backend memoizes.
pub trait ReachEngine {
    /// Should PQ algorithms normalize queries (single-atom edges with
    /// dummy nodes) before refinement? True exactly when single-atom tests
    /// are O(1), i.e. for the matrix backend (§5.1: "if one wants to use a
    /// distance matrix … Qp is normalized").
    fn prefers_normalized(&self) -> bool;

    /// Is there a nonempty path `x → y` whose colors spell a word in
    /// `L(re)`?
    fn reaches(&mut self, g: &Graph, x: NodeId, y: NodeId, re: &FRegex) -> bool;

    /// Atom fast path: `(x, y) ⊨ c^k / c / c+`.
    fn reaches_atom(&mut self, g: &Graph, x: NodeId, y: NodeId, atom: &Atom) -> bool {
        self.reaches(g, x, y, &FRegex::new(vec![*atom]))
    }
}

/// Matrix-backed engine (O(1) atom tests).
#[derive(Debug)]
pub struct MatrixReach<'a> {
    matrix: &'a DistanceMatrix,
}

impl<'a> MatrixReach<'a> {
    /// Wrap a pre-built matrix (see [`DistanceMatrix::build`]).
    pub fn new(matrix: &'a DistanceMatrix) -> Self {
        MatrixReach { matrix }
    }

    /// Access the underlying matrix.
    pub fn matrix(&self) -> &DistanceMatrix {
        self.matrix
    }
}

impl ReachEngine for MatrixReach<'_> {
    fn prefers_normalized(&self) -> bool {
        true
    }

    fn reaches(&mut self, g: &Graph, x: NodeId, y: NodeId, re: &FRegex) -> bool {
        let atoms = re.atoms();
        if atoms.len() == 1 {
            return self.reaches_atom(g, x, y, &atoms[0]);
        }
        // frontier stepping: decompose as the paper's dummy-node rewrite
        // does, one atom at a time, using O(1) matrix probes
        let mut frontier: Vec<NodeId> = vec![x];
        for (i, atom) in atoms.iter().enumerate() {
            if i + 1 == atoms.len() {
                return frontier.iter().any(|&w| {
                    self.matrix
                        .reaches_within(g, w, y, atom.color, atom.quant.max())
                });
            }
            let next: Vec<NodeId> = g
                .nodes()
                .filter(|&z| {
                    frontier.iter().any(|&w| {
                        self.matrix
                            .reaches_within(g, w, z, atom.color, atom.quant.max())
                    })
                })
                .collect();
            if next.is_empty() {
                return false;
            }
            frontier = next;
        }
        unreachable!("F expressions are nonempty")
    }

    fn reaches_atom(&mut self, g: &Graph, x: NodeId, y: NodeId, atom: &Atom) -> bool {
        self.matrix
            .reaches_within(g, x, y, atom.color, atom.quant.max())
    }
}

/// LRU-cached runtime engine: pair tests run the bi-directional product
/// search; results are memoized per `(x, y, regex)`.
pub struct CachedReach {
    nfas: Vec<Nfa>,
    ids: HashMap<FRegex, u32>,
    results: LruCache<(NodeId, NodeId, u32), bool>,
    atom_ids: HashMap<Atom, u32>,
}

impl CachedReach {
    /// Engine with an LRU of `capacity` memoized pair answers.
    pub fn new(capacity: usize) -> Self {
        CachedReach {
            nfas: Vec::new(),
            ids: HashMap::new(),
            results: LruCache::new(capacity),
            atom_ids: HashMap::new(),
        }
    }

    /// Default capacity tuned for the paper's workloads (millions of pair
    /// probes against graphs of a few thousand nodes).
    pub fn with_default_capacity() -> Self {
        CachedReach::new(1 << 20)
    }

    fn intern(&mut self, re: &FRegex) -> u32 {
        if let Some(&id) = self.ids.get(re) {
            return id;
        }
        let id = self.nfas.len() as u32;
        self.nfas.push(Nfa::from_regex(re));
        self.ids.insert(re.clone(), id);
        id
    }

    /// `(hits, misses)` of the underlying cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.results.stats()
    }

    fn probe(&mut self, g: &Graph, x: NodeId, y: NodeId, id: u32) -> bool {
        if let Some(&v) = self.results.get(&(x, y, id)) {
            return v;
        }
        let answer = product_pair_reaches(g, &self.nfas[id as usize], x, y);
        self.results.insert((x, y, id), answer);
        answer
    }
}

impl ReachEngine for CachedReach {
    fn prefers_normalized(&self) -> bool {
        false
    }

    fn reaches(&mut self, g: &Graph, x: NodeId, y: NodeId, re: &FRegex) -> bool {
        let id = self.intern(re);
        self.probe(g, x, y, id)
    }

    fn reaches_atom(&mut self, g: &Graph, x: NodeId, y: NodeId, atom: &Atom) -> bool {
        let id = if let Some(&id) = self.atom_ids.get(atom) {
            id
        } else {
            let id = self.intern(&FRegex::new(vec![*atom]));
            self.atom_ids.insert(*atom, id);
            id
        };
        self.probe(g, x, y, id)
    }
}

/// Plain forward product BFS pair test — the unindexed, uncached baseline
/// ("BFS" in Fig. 10(b)).
pub fn product_pair_reaches_forward(g: &Graph, nfa: &Nfa, x: NodeId, y: NodeId) -> bool {
    let states = nfa.state_count();
    let mut visited = vec![false; g.node_count() * states];
    let mut queue = VecDeque::new();
    visited[x.index() * states + nfa.start() as usize] = true;
    queue.push_back((x, nfa.start()));
    while let Some((u, s)) = queue.pop_front() {
        for e in g.out_edges(u) {
            for t in nfa.successors(s, e.color) {
                if e.node == y && nfa.is_accepting(t) {
                    return true;
                }
                let slot = e.node.index() * states + t as usize;
                if !visited[slot] {
                    visited[slot] = true;
                    queue.push_back((e.node, t));
                }
            }
        }
    }
    false
}

/// Quantifier helper: total hop budget of a regex (`None` if unbounded),
/// used by the bounded-simulation baseline.
pub fn total_bound(re: &FRegex) -> Option<u32> {
    re.atoms().iter().try_fold(0u32, |acc, a| match a.quant {
        Quant::One => Some(acc + 1),
        Quant::AtMost(k) => Some(acc + k),
        Quant::Plus => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::{GraphBuilder, WILDCARD};

    /// The Essembly graph from Fig. 1.
    fn g() -> Graph {
        rpq_graph::gen::essembly()
    }

    fn re(g: &Graph, s: &str) -> FRegex {
        FRegex::parse(s, g.alphabet()).unwrap()
    }

    #[test]
    fn product_set_q1_paths() {
        let g = g();
        let q1 = re(&g, "fa^2 fn");
        let nfa = Nfa::from_regex(&q1);
        let c2 = g.node_by_label("C2").unwrap();
        let set = product_reach_set(&g, &nfa, c2);
        let b1 = g.node_by_label("B1").unwrap();
        let b2 = g.node_by_label("B2").unwrap();
        assert!(set.contains(&b1));
        assert!(set.contains(&b2));
        // C3 has no fa-then-fn continuation
        let c3 = g.node_by_label("C3").unwrap();
        let set3 = product_reach_set(&g, &nfa, c3);
        assert!(!set3.contains(&b1));
    }

    #[test]
    fn engines_agree_with_oracle() {
        let g = g();
        let regexes = [
            re(&g, "fa"),
            re(&g, "fa^2 fn"),
            re(&g, "fa+"),
            re(&g, "fa^2 sa^2"),
            re(&g, "fn _+"),
            re(&g, "_^3"),
        ];
        let matrix = DistanceMatrix::build(&g);
        let mut mx = MatrixReach::new(&matrix);
        let mut cached = CachedReach::new(1024);
        for r in &regexes {
            let nfa = Nfa::from_regex(r);
            for x in g.nodes() {
                for y in g.nodes() {
                    let oracle = product_pair_reaches_forward(&g, &nfa, x, y);
                    assert_eq!(
                        product_pair_reaches(&g, &nfa, x, y),
                        oracle,
                        "bidir {x:?}->{y:?} {r:?}"
                    );
                    assert_eq!(
                        mx.reaches(&g, x, y, r),
                        oracle,
                        "matrix {}->{} via {}",
                        g.label(x),
                        g.label(y),
                        r.display(g.alphabet())
                    );
                    assert_eq!(cached.reaches(&g, x, y, r), oracle, "cached {x:?}->{y:?}");
                    // twice: exercise the cache-hit path
                    assert_eq!(cached.reaches(&g, x, y, r), oracle);
                }
            }
        }
        let (hits, misses) = cached.cache_stats();
        assert!(hits >= misses, "expected cache hits on repeat probes");
    }

    #[test]
    fn nonempty_path_semantics_at_same_node() {
        // x -c-> x self-loop vs. isolated y
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        let c = b.color("c");
        b.add_edge(x, x, c);
        b.add_edge(x, y, c);
        let g = b.build();
        let matrix = DistanceMatrix::build(&g);
        let mut mx = MatrixReach::new(&matrix);
        let mut cd = CachedReach::new(64);
        let rc = FRegex::parse("c+", g.alphabet()).unwrap();
        assert!(mx.reaches(&g, x, x, &rc));
        assert!(cd.reaches(&g, x, x, &rc));
        assert!(!mx.reaches(&g, y, y, &rc));
        assert!(!cd.reaches(&g, y, y, &rc));
    }

    #[test]
    fn multi_atom_through_cycle() {
        // ring with two colors; regex must thread through the boundary
        let mut b = GraphBuilder::new();
        let ns: Vec<_> = (0..5).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let r = b.color("r");
        let s = b.color("s");
        b.add_edge(ns[0], ns[1], r);
        b.add_edge(ns[1], ns[2], r);
        b.add_edge(ns[2], ns[3], s);
        b.add_edge(ns[3], ns[4], s);
        let g = b.build();
        let matrix = DistanceMatrix::build(&g);
        let mut mx = MatrixReach::new(&matrix);
        let re = FRegex::parse("r^2 s^2", g.alphabet()).unwrap();
        assert!(mx.reaches(&g, ns[0], ns[4], &re));
        assert!(mx.reaches(&g, ns[0], ns[3], &re));
        assert!(!mx.reaches(&g, ns[0], ns[2], &re)); // needs at least one s
        assert!(mx.reaches(&g, ns[1], ns[3], &re));
    }

    #[test]
    fn wildcard_atom_reach() {
        let g = g();
        let matrix = DistanceMatrix::build(&g);
        let mut mx = MatrixReach::new(&matrix);
        let d1 = g.node_by_label("D1").unwrap();
        let h1 = g.node_by_label("H1").unwrap();
        let w = FRegex::new(vec![Atom::new(WILDCARD, Quant::AtMost(2))]);
        assert!(mx.reaches(&g, d1, h1, &w));
    }

    #[test]
    fn total_bound_helper() {
        let g = g();
        assert_eq!(total_bound(&re(&g, "fa^2 fn")), Some(3));
        assert_eq!(total_bound(&re(&g, "fa")), Some(1));
        assert_eq!(total_bound(&re(&g, "fa^2 fn+")), None);
    }
}
