//! Node search conditions.
//!
//! A query node carries a predicate: a conjunction of atomic formulas
//! `A op a` with `op ∈ {<, ≤, =, ≠, >, ≥}` (§2). A data node `v` *matches*
//! a query node `u` (written `v ∼ u`) if every atom holds on `f_A(v)`.
//!
//! [`Predicate::implies`] is the syntactic implication test from the proof
//! of Prop. 3.3, used by the containment analyses: `p.implies(q)` holds iff
//! every atom of `q` is implied by the bounds/equalities/inequalities `p`
//! places on the same attribute. It is sound, and complete for the
//! case analysis the paper defines (it deliberately does not do
//! integer-gap reasoning such as `A>3 ∧ A<5 ⟹ A=4`, nor detect
//! unsatisfiable antecedents).

use rpq_graph::{AttrId, AttrValue, Attrs, Schema};
use std::fmt;

/// Comparison operator of an atomic formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CompOp {
    /// Apply the operator to ordered values.
    #[inline]
    pub fn eval(self, lhs: &AttrValue, rhs: &AttrValue) -> bool {
        match self {
            CompOp::Lt => lhs < rhs,
            CompOp::Le => lhs <= rhs,
            CompOp::Eq => lhs == rhs,
            CompOp::Ne => lhs != rhs,
            CompOp::Gt => lhs > rhs,
            CompOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One atomic formula `A op a`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PredAtom {
    /// The attribute `A`.
    pub attr: AttrId,
    /// The comparison.
    pub op: CompOp,
    /// The constant `a`.
    pub value: AttrValue,
}

/// A conjunction of atomic formulas. The empty conjunction is `true` — the
/// predicate of the paper's *dummy nodes*, which "bear no condition".
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Predicate {
    atoms: Vec<PredAtom>,
}

impl Predicate {
    /// The trivial predicate (matches every node).
    pub fn always_true() -> Self {
        Predicate::default()
    }

    /// Build from atoms.
    pub fn new(atoms: Vec<PredAtom>) -> Self {
        Predicate { atoms }
    }

    /// Convenience: single equality `A = a`.
    pub fn eq(attr: AttrId, value: AttrValue) -> Self {
        Predicate::new(vec![PredAtom {
            attr,
            op: CompOp::Eq,
            value,
        }])
    }

    /// Add one more conjunct (builder style).
    pub fn and(mut self, attr: AttrId, op: CompOp, value: AttrValue) -> Self {
        self.atoms.push(PredAtom { attr, op, value });
        self
    }

    /// The conjuncts.
    pub fn atoms(&self) -> &[PredAtom] {
        &self.atoms
    }

    /// True for the empty conjunction.
    pub fn is_trivial(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Number of conjuncts (the experiment parameter `|pred|`).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if there are no conjuncts.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Does the node tuple `attrs` satisfy every conjunct (`v ∼ u`)?
    ///
    /// A missing attribute, or one from the other value domain, fails the
    /// conjunct — the paper requires "there exists an attribute A in
    /// `f_A(v)`" with the stated comparison.
    pub fn matches(&self, attrs: &Attrs) -> bool {
        self.atoms.iter().all(|a| match attrs.get(a.attr) {
            Some(v) if v.same_domain(&a.value) => a.op.eval(v, &a.value),
            _ => false,
        })
    }

    /// Syntactic implication: does `self ⟹ other` hold (every node matching
    /// `self` matches `other`)?
    ///
    /// This is the paper's `u ⊢ w` once lifted to nodes: `u ⊢ w` iff
    /// `pred(u).implies(pred(w))`.
    pub fn implies(&self, other: &Predicate) -> bool {
        other.atoms.iter().all(|a| self.implies_atom(a))
    }

    /// Case analysis from the proof of Prop. 3.3. All bounds are derived
    /// from `self`'s conjuncts on the same attribute and domain.
    fn implies_atom(&self, goal: &PredAtom) -> bool {
        // derived bounds from self on goal.attr (same domain only)
        let mut eq: Option<&AttrValue> = None;
        let mut lo: Option<(&AttrValue, bool)> = None; // (bound, strict)
        let mut hi: Option<(&AttrValue, bool)> = None;
        let mut ne_exact = false;
        for a in &self.atoms {
            if a.attr != goal.attr || !a.value.same_domain(&goal.value) {
                continue;
            }
            match a.op {
                CompOp::Eq => {
                    eq = Some(&a.value);
                    tighten_lo(&mut lo, &a.value, false);
                    tighten_hi(&mut hi, &a.value, false);
                }
                CompOp::Ge => tighten_lo(&mut lo, &a.value, false),
                CompOp::Gt => tighten_lo(&mut lo, &a.value, true),
                CompOp::Le => tighten_hi(&mut hi, &a.value, false),
                CompOp::Lt => tighten_hi(&mut hi, &a.value, true),
                CompOp::Ne => {
                    if a.value == goal.value {
                        ne_exact = true;
                    }
                }
            }
        }
        let g = &goal.value;
        match goal.op {
            // Case (a): A = a implied iff the derived bounds pin A to a,
            // or A = a appears verbatim.
            CompOp::Eq => eq == Some(g) || (lo == Some((g, false)) && hi == Some((g, false))),
            // Case (b): A ≤ a implied iff some upper bound is at most a.
            CompOp::Le => match (eq, hi) {
                (Some(e), _) if e <= g => true,
                (_, Some((h, _))) => h <= g,
                _ => false,
            },
            // Case (c): strict/other inequalities, analogous.
            CompOp::Lt => match (eq, hi) {
                (Some(e), _) if e < g => true,
                (_, Some((h, strict))) => h < g || (h == g && strict),
                _ => false,
            },
            CompOp::Ge => match (eq, lo) {
                (Some(e), _) if e >= g => true,
                (_, Some((l, _))) => l >= g,
                _ => false,
            },
            CompOp::Gt => match (eq, lo) {
                (Some(e), _) if e > g => true,
                (_, Some((l, strict))) => l > g || (l == g && strict),
                _ => false,
            },
            // Case (d): A ≠ a implied iff A = e with e ≠ a, or A ≠ a
            // appears, or the bounds exclude a.
            CompOp::Ne => {
                ne_exact
                    || matches!(eq, Some(e) if e != g)
                    || matches!(lo, Some((l, strict)) if l > g || (l == g && strict))
                    || matches!(hi, Some((h, strict)) if h < g || (h == g && strict))
            }
        }
    }

    /// Render with attribute names from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        DisplayPred { p: self, schema }
    }
}

fn tighten_lo<'a>(lo: &mut Option<(&'a AttrValue, bool)>, v: &'a AttrValue, strict: bool) {
    let better = match *lo {
        None => true,
        Some((cur, cur_strict)) => v > cur || (v == cur && strict && !cur_strict),
    };
    if better {
        *lo = Some((v, strict));
    }
}

fn tighten_hi<'a>(hi: &mut Option<(&'a AttrValue, bool)>, v: &'a AttrValue, strict: bool) {
    let better = match *hi {
        None => true,
        Some((cur, cur_strict)) => v < cur || (v == cur && strict && !cur_strict),
    };
    if better {
        *hi = Some((v, strict));
    }
}

struct DisplayPred<'a> {
    p: &'a Predicate,
    schema: &'a Schema,
}

impl fmt::Display for DisplayPred<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.p.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.p.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{} {} {}", self.schema.name(a.attr), a.op, a.value)?;
        }
        Ok(())
    }
}

/// Why a predicate string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredParseError {
    /// Attribute name not in the schema.
    UnknownAttr(String),
    /// Conjunct without a recognizable operator.
    NoOperator(String),
    /// Right-hand side was neither an integer nor a quoted string.
    BadValue(String),
}

impl fmt::Display for PredParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredParseError::UnknownAttr(a) => write!(f, "unknown attribute {a:?}"),
            PredParseError::NoOperator(c) => write!(f, "no comparison operator in {c:?}"),
            PredParseError::BadValue(v) => write!(f, "bad constant {v:?}"),
        }
    }
}

impl std::error::Error for PredParseError {}

impl Predicate {
    /// Parse `"job = \"doctor\" && age > 300"` against `schema`. Integer
    /// constants are bare; string constants are double-quoted. The empty
    /// string parses to the trivial predicate.
    pub fn parse(input: &str, schema: &Schema) -> Result<Self, PredParseError> {
        let mut atoms = Vec::new();
        for conjunct in input.split("&&") {
            let conjunct = conjunct.trim();
            if conjunct.is_empty() {
                continue;
            }
            // longest operators first
            let op_table = [
                ("<=", CompOp::Le),
                (">=", CompOp::Ge),
                ("!=", CompOp::Ne),
                ("<", CompOp::Lt),
                (">", CompOp::Gt),
                ("=", CompOp::Eq),
            ];
            let (idx, opstr, op) = op_table
                .iter()
                .filter_map(|&(s, o)| conjunct.find(s).map(|i| (i, s, o)))
                .min_by_key(|&(i, s, _)| (i, std::cmp::Reverse(s.len())))
                .ok_or_else(|| PredParseError::NoOperator(conjunct.to_owned()))?;
            let name = conjunct[..idx].trim();
            let rhs = conjunct[idx + opstr.len()..].trim();
            let attr = schema
                .get(name)
                .ok_or_else(|| PredParseError::UnknownAttr(name.to_owned()))?;
            let value = if let Some(stripped) = rhs.strip_prefix('"') {
                let inner = stripped
                    .strip_suffix('"')
                    .ok_or_else(|| PredParseError::BadValue(rhs.to_owned()))?;
                AttrValue::Str(inner.to_owned())
            } else {
                rhs.parse::<i64>()
                    .map(AttrValue::Int)
                    .map_err(|_| PredParseError::BadValue(rhs.to_owned()))?
            };
            atoms.push(PredAtom { attr, op, value });
        }
        Ok(Predicate::new(atoms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.intern("job");
        s.intern("age");
        s.intern("view");
        s
    }

    fn attrs(s: &Schema, job: &str, age: i64) -> Attrs {
        Attrs::from_pairs(vec![
            (s.get("job").unwrap(), AttrValue::Str(job.into())),
            (s.get("age").unwrap(), AttrValue::Int(age)),
        ])
    }

    #[test]
    fn parse_and_match() {
        let s = schema();
        let p = Predicate::parse("job = \"doctor\" && age > 300", &s).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.matches(&attrs(&s, "doctor", 400)));
        assert!(!p.matches(&attrs(&s, "doctor", 300)));
        assert!(!p.matches(&attrs(&s, "biologist", 400)));
    }

    #[test]
    fn parse_all_ops_and_errors() {
        let s = schema();
        for (txt, op) in [
            ("age < 5", CompOp::Lt),
            ("age <= 5", CompOp::Le),
            ("age = 5", CompOp::Eq),
            ("age != 5", CompOp::Ne),
            ("age > 5", CompOp::Gt),
            ("age >= 5", CompOp::Ge),
        ] {
            let p = Predicate::parse(txt, &s).unwrap();
            assert_eq!(p.atoms()[0].op, op, "{txt}");
        }
        assert!(matches!(
            Predicate::parse("bogus = 1", &s),
            Err(PredParseError::UnknownAttr(_))
        ));
        assert!(matches!(
            Predicate::parse("age 5", &s),
            Err(PredParseError::NoOperator(_))
        ));
        assert!(matches!(
            Predicate::parse("age = abc", &s),
            Err(PredParseError::BadValue(_))
        ));
        assert!(matches!(
            Predicate::parse("job = \"unclosed", &s),
            Err(PredParseError::BadValue(_))
        ));
        assert!(Predicate::parse("", &s).unwrap().is_trivial());
    }

    #[test]
    fn trivial_matches_everything() {
        let s = schema();
        let t = Predicate::always_true();
        assert!(t.matches(&attrs(&s, "x", 0)));
        assert!(t.matches(&Attrs::new()));
    }

    #[test]
    fn missing_or_mistyped_attr_fails() {
        let s = schema();
        let p = Predicate::parse("view > 10", &s).unwrap();
        assert!(!p.matches(&attrs(&s, "doctor", 400)));
        // age is Int; a string comparison on it must fail, not panic
        let q = Predicate::parse("age = \"old\"", &s).unwrap();
        assert!(!q.matches(&attrs(&s, "doctor", 400)));
    }

    #[test]
    fn implication_equalities() {
        let s = schema();
        let p = Predicate::parse("job = \"doctor\" && age = 10", &s).unwrap();
        let q = Predicate::parse("job = \"doctor\"", &s).unwrap();
        assert!(p.implies(&q));
        assert!(!q.implies(&p));
        // everything implies the trivial predicate
        assert!(p.implies(&Predicate::always_true()));
        assert!(q.implies(&q));
    }

    #[test]
    fn implication_bounds() {
        let s = schema();
        let imp = |a: &str, b: &str| {
            Predicate::parse(a, &s)
                .unwrap()
                .implies(&Predicate::parse(b, &s).unwrap())
        };
        assert!(imp("age > 10", "age > 5"));
        assert!(imp("age > 10", "age >= 10"));
        assert!(imp("age >= 10", "age > 9"));
        assert!(!imp("age >= 10", "age > 10"));
        assert!(imp("age < 3", "age <= 3"));
        assert!(imp("age <= 3", "age < 4"));
        assert!(!imp("age < 5", "age < 4"));
        assert!(imp("age = 7", "age >= 7"));
        assert!(imp("age = 7", "age <= 7"));
        assert!(imp("age = 7", "age > 6"));
        assert!(imp("age >= 7 && age <= 7", "age = 7"));
        assert!(!imp("age >= 6 && age <= 8", "age = 7"));
    }

    #[test]
    fn implication_ne() {
        let s = schema();
        let imp = |a: &str, b: &str| {
            Predicate::parse(a, &s)
                .unwrap()
                .implies(&Predicate::parse(b, &s).unwrap())
        };
        assert!(imp("age != 5", "age != 5"));
        assert!(imp("age = 4", "age != 5"));
        assert!(!imp("age = 5", "age != 5"));
        assert!(imp("age > 5", "age != 5"));
        assert!(imp("age < 5", "age != 5"));
        assert!(imp("age >= 6", "age != 5"));
        assert!(!imp("age >= 5", "age != 5"));
    }

    #[test]
    fn implication_strings() {
        let s = schema();
        let p = Predicate::parse("job = \"doctor\"", &s).unwrap();
        let q = Predicate::parse("job != \"biologist\"", &s).unwrap();
        assert!(p.implies(&q));
        let r = Predicate::parse("job >= \"d\"", &s).unwrap();
        assert!(p.implies(&r)); // "doctor" >= "d" lexicographically
    }

    #[test]
    fn implication_is_sound_on_samples() {
        // brute-force soundness: whenever implies() says yes, every matching
        // tuple of p matches q
        let s = schema();
        let age = s.get("age").unwrap();
        let preds: Vec<Predicate> = [
            "age > 3",
            "age >= 3",
            "age < 7",
            "age <= 7",
            "age = 5",
            "age != 5",
            "age > 3 && age < 7",
            "age >= 5 && age <= 5",
            "",
        ]
        .iter()
        .map(|t| Predicate::parse(t, &s).unwrap())
        .collect();
        for p in &preds {
            for q in &preds {
                if p.implies(q) {
                    for v in -1..12i64 {
                        let a = Attrs::from_pairs(vec![(age, AttrValue::Int(v))]);
                        if p.matches(&a) {
                            assert!(q.matches(&a), "unsound: {:?} implies {:?} but v={v}", p, q);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn display() {
        let s = schema();
        let p = Predicate::parse("job = \"doctor\" && age > 300", &s).unwrap();
        assert_eq!(p.display(&s).to_string(), "job = \"doctor\" && age > 300");
        assert_eq!(Predicate::always_true().display(&s).to_string(), "true");
    }
}
