//! Query canonicalization: the normal forms the engine's semantic cache
//! and standing-query dedup key on.
//!
//! Two cooperating layers:
//!
//! * **Regex canonicalization** — every edge constraint is rewritten into
//!   the run-normal form of [`rpq_regex::canon`], so syntactic spellings
//!   of one language (`a^2 a` vs `a a^2`) become structurally equal and
//!   collapse onto one memo key / one plan. [`canonical_rq`] and
//!   [`canonical_pq`] are *shape-preserving*: they touch only the regexes,
//!   never the node/edge structure, so results stay bit-identical to the
//!   submitted query's shape.
//! * **Pattern canonicalization** — [`standing_form`] additionally runs
//!   the paper's `minPQs` minimization (§3.2), producing the form standing
//!   queries are deduplicated under, and [`pq_isomorphism`] decides
//!   whether two patterns are the same query up to node renumbering and
//!   display labels, returning the witnessing node mapping so one
//!   incrementally-maintained match set can serve both registrants.

use crate::minimize::minimize;
use crate::pq::Pq;
use crate::rq::Rq;
use rpq_regex::canon::canonicalize;
use rpq_regex::FRegex;

/// The RQ with its regex in run-normal canonical form. Language- and
/// therefore answer-preserving; predicates are untouched.
pub fn canonical_rq(rq: &Rq) -> Rq {
    Rq::new(rq.from.clone(), rq.to.clone(), canonicalize(&rq.regex))
}

/// The PQ with every edge regex in run-normal canonical form. The node
/// and edge structure (and therefore the shape of [`crate::pq::PqResult`])
/// is preserved exactly; only regex spellings change.
pub fn canonical_pq(pq: &Pq) -> Pq {
    let mut out = Pq::new();
    for n in pq.nodes() {
        out.add_node(&n.label, n.pred.clone());
    }
    for e in pq.edges() {
        out.add_edge(e.from, e.to, canonicalize(&e.regex));
    }
    out
}

/// The standing-query dedup form: edge regexes canonicalized, then the
/// pattern minimized by the paper's cubic `minPQs` (§3.2). Two queries
/// whose standing forms are isomorphic (see [`pq_isomorphism`]) denote
/// the same standing query and may share one incremental matcher.
pub fn standing_form(pq: &Pq) -> Pq {
    minimize(&canonical_pq(pq))
}

/// Are `a` and `b` the same pattern under the *identity* node mapping,
/// ignoring display labels and regex spelling? Requires equal predicates
/// per node index and, per edge index, equal endpoints and language-equal
/// (canonical) regexes. This is the cheap membership test the snapshot
/// uses to serve a standing answer for a syntactic variant: because node
/// and edge indices coincide, the maintained result is bit-identical in
/// the variant's shape.
pub fn pq_same_shape(a: &Pq, b: &Pq) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.nodes()
            .iter()
            .zip(b.nodes())
            .all(|(x, y)| x.pred == y.pred)
        && a.edges().iter().zip(b.edges()).all(|(x, y)| {
            x.from == y.from
                && x.to == y.to
                && rpq_regex::canon::equivalent_canonical(&x.regex, &y.regex)
        })
}

/// A pattern isomorphism from `a` onto `b`: a node bijection `κ` with
/// equal predicates (`pred_a(u) = pred_b(κ(u))`) under which the edge
/// multisets correspond with language-equal regexes. Returns `κ` as
/// `map[u] = κ(u)`, or `None` if no isomorphism exists. Labels carry no
/// semantics and are ignored.
///
/// Backtracking search with predicate/degree pruning — exponential in the
/// worst case but instantaneous on query-sized patterns (a handful of
/// nodes), which is the only place it runs.
pub fn pq_isomorphism(a: &Pq, b: &Pq) -> Option<Vec<usize>> {
    let n = a.node_count();
    if n != b.node_count() || a.edge_count() != b.edge_count() {
        return None;
    }
    let ca: Vec<FRegex> = a.edges().iter().map(|e| canonicalize(&e.regex)).collect();
    let cb: Vec<FRegex> = b.edges().iter().map(|e| canonicalize(&e.regex)).collect();
    let mut map = vec![usize::MAX; n];
    let mut used = vec![false; n];
    if assign(a, b, &ca, &cb, 0, &mut map, &mut used) {
        Some(map)
    } else {
        None
    }
}

fn assign(
    a: &Pq,
    b: &Pq,
    ca: &[FRegex],
    cb: &[FRegex],
    u: usize,
    map: &mut Vec<usize>,
    used: &mut Vec<bool>,
) -> bool {
    if u == a.node_count() {
        return edges_correspond(a, b, ca, cb, map);
    }
    for w in 0..b.node_count() {
        if used[w]
            || a.node(u).pred != b.node(w).pred
            || a.out_edges(u).len() != b.out_edges(w).len()
            || a.in_edges(u).len() != b.in_edges(w).len()
        {
            continue;
        }
        map[u] = w;
        used[w] = true;
        if assign(a, b, ca, cb, u + 1, map, used) {
            return true;
        }
        used[w] = false;
        map[u] = usize::MAX;
    }
    false
}

/// Under a full node assignment, do the edge multisets correspond with
/// language-equal constraints?
fn edges_correspond(a: &Pq, b: &Pq, ca: &[FRegex], cb: &[FRegex], map: &[usize]) -> bool {
    let mut unmatched: Vec<usize> = (0..b.edge_count()).collect();
    for (i, e) in a.edges().iter().enumerate() {
        let (f, t) = (map[e.from], map[e.to]);
        let Some(pos) = unmatched.iter().position(|&j| {
            let be = b.edge(j);
            be.from == f && be.to == t && cb[j] == ca[i]
        }) else {
            return false;
        };
        unmatched.swap_remove(pos);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain::pq_equivalent;
    use crate::predicate::Predicate;
    use rpq_graph::{Alphabet, Schema};

    fn vocab() -> (Schema, Alphabet) {
        let mut schema = Schema::new();
        schema.intern("t");
        (schema, Alphabet::from_names(["c", "d"]))
    }

    #[test]
    fn canonical_rq_unifies_spellings() {
        let (schema, al) = vocab();
        let p = Predicate::parse("t = 1", &schema).unwrap();
        let mk = |re: &str| {
            Rq::new(
                p.clone(),
                Predicate::always_true(),
                FRegex::parse(re, &al).unwrap(),
            )
        };
        assert_eq!(canonical_rq(&mk("c^2 c")), canonical_rq(&mk("c c^2")));
        assert_ne!(canonical_rq(&mk("c^2 c")), canonical_rq(&mk("c^2")));
    }

    #[test]
    fn canonical_pq_preserves_shape() {
        let (schema, al) = vocab();
        let p = Predicate::parse("t = 1", &schema).unwrap();
        let mut q = Pq::new();
        let a = q.add_node("A", p.clone());
        let b = q.add_node("B", p);
        q.add_edge(a, b, FRegex::parse("c+ c", &al).unwrap());
        let c = canonical_pq(&q);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.edge_count(), 1);
        assert_eq!(c.edge(0).regex, FRegex::parse("c c+", &al).unwrap());
        assert_eq!(c.node(0).label, "A");
        assert!(pq_equivalent(&c, &q));
        assert!(pq_same_shape(&c, &q));
    }

    #[test]
    fn same_shape_ignores_labels_and_spelling_only() {
        let (schema, al) = vocab();
        let p = Predicate::parse("t = 1", &schema).unwrap();
        let mk = |labels: (&str, &str), re: &str| {
            let mut q = Pq::new();
            let a = q.add_node(labels.0, p.clone());
            let b = q.add_node(labels.1, Predicate::always_true());
            q.add_edge(a, b, FRegex::parse(re, &al).unwrap());
            q
        };
        assert!(pq_same_shape(
            &mk(("x", "y"), "c^2 c"),
            &mk(("u", "v"), "c c^2")
        ));
        // different language is a different query
        assert!(!pq_same_shape(
            &mk(("x", "y"), "c^2"),
            &mk(("x", "y"), "c^3")
        ));
    }

    #[test]
    fn isomorphism_finds_node_renumbering() {
        let (schema, al) = vocab();
        let p1 = Predicate::parse("t = 1", &schema).unwrap();
        let p2 = Predicate::parse("t = 2", &schema).unwrap();
        let re = |s: &str| FRegex::parse(s, &al).unwrap();
        // a: node0 = p1, node1 = p2, edge 0→1
        let mut a = Pq::new();
        let a0 = a.add_node("A", p1.clone());
        let a1 = a.add_node("B", p2.clone());
        a.add_edge(a0, a1, re("c^2 c"));
        // b: nodes swapped, labels different, regex respelled
        let mut b = Pq::new();
        let b0 = b.add_node("X", p2);
        let b1 = b.add_node("Y", p1);
        b.add_edge(b1, b0, re("c c^2"));
        let map = pq_isomorphism(&a, &b).expect("isomorphic");
        assert_eq!(map, vec![1, 0]);
        // an extra edge breaks it
        b.add_edge(0, 0, re("d"));
        assert!(pq_isomorphism(&a, &b).is_none());
    }

    #[test]
    fn isomorphism_respects_edge_multiplicity() {
        let (schema, al) = vocab();
        let p = Predicate::parse("t = 1", &schema).unwrap();
        let re = |s: &str| FRegex::parse(s, &al).unwrap();
        let mk = |res: &[&str]| {
            let mut q = Pq::new();
            let x = q.add_node("x", p.clone());
            let y = q.add_node("y", p.clone());
            for r in res {
                q.add_edge(x, y, re(r));
            }
            q
        };
        // parallel edges must match as a multiset
        assert!(pq_isomorphism(&mk(&["c", "d"]), &mk(&["d", "c"])).is_some());
        assert!(pq_isomorphism(&mk(&["c", "c"]), &mk(&["c", "d"])).is_none());
    }

    #[test]
    fn standing_form_drops_redundancy() {
        // Fig. 3 shape: two edges to equivalent sink nodes where one
        // contains the other — minimize folds them together
        let (schema, al) = vocab();
        let bp = Predicate::parse("t = 1", &schema).unwrap();
        let cp = Predicate::parse("t = 2", &schema).unwrap();
        let re = |s: &str| FRegex::parse(s, &al).unwrap();
        let mut q = Pq::new();
        let b = q.add_node("B", bp);
        let c1 = q.add_node("C1", cp.clone());
        let c2 = q.add_node("C2", cp.clone());
        let c3 = q.add_node("C3", cp);
        q.add_edge(b, c1, re("c"));
        q.add_edge(b, c2, re("c^2"));
        q.add_edge(b, c3, re("c^3"));
        let form = standing_form(&q);
        assert!(form.size() < q.size(), "redundant middle edge dropped");
        assert!(pq_equivalent(&form, &q));
    }
}
