//! The revised query-to-query similarity of §3.1.
//!
//! For PQs `Q1 = (V1, E1)` and `Q2 = (V2, E2)`, the paper writes `Q1 ⊴ Q2`
//! ("Q2 is similar to Q1") when there is a relation `Sr ⊆ V1 × V2` with
//!
//! 1. for every `(u1, w1) ∈ Sr`: (a) `w1 ⊢ u1` (every node matching `w1`'s
//!    predicate matches `u1`'s), and (b) every edge `e = (u1, u2) ∈ E1` has
//!    an edge `e' = (w1, w2) ∈ E2` with `(u2, w2) ∈ Sr` and `e' ⊨ e`
//!    (`L(f_{e'}) ⊆ L(f_e)`);
//! 2. every edge `e' = (w, w') ∈ E2` has a witness `e = (u, u') ∈ E1` with
//!    `(u, w) ∈ Sr`, `(u', w') ∈ Sr` and `e' ⊨ e`.
//!
//! Condition (1) is coinductive (closed under union), so a maximum relation
//! exists and is computed by fixpoint refinement — the standard simulation
//! computation \[HHK95\] specialized to predicates and regex containment.
//! Condition (2) is then a check on that maximum (any witness inside a
//! smaller `Sr` is also inside the maximum).
//!
//! By Lemma 3.1, `Q1 ⊑ Q2` (containment) iff `Q2 ⊴ Q1`.

use crate::pq::Pq;
use rpq_regex::canon::contains_fast;
use rpq_regex::FRegex;

/// `e' ⊨ e` — the edge-constraint containment `L(f_{e'}) ⊆ L(f_e)`, decided
/// by the paper's linear scan extended with the run-level interval check
/// of [`rpq_regex::canon`] (still sound and linear; additionally sees
/// containments across respelled same-color runs such as `a a ⊨ a^2`, so
/// similarity — and everything built on it: containment, equivalence,
/// minimization — identifies syntactic variants of one language).
#[inline]
pub fn edge_entails(e_prime: &FRegex, e: &FRegex) -> bool {
    contains_fast(e_prime, e)
}

/// The maximum relation `Sr ⊆ V1 × V2` satisfying condition (1) of the
/// revised similarity; `sr[u1][w1]` is true iff `(u1, w1) ∈ Sr`.
pub fn revised_similarity(q1: &Pq, q2: &Pq) -> Vec<Vec<bool>> {
    let (n1, n2) = (q1.node_count(), q2.node_count());
    // (1)(a): w1 ⊢ u1, i.e. pred(w1) ⟹ pred(u1)
    let mut sr: Vec<Vec<bool>> = (0..n1)
        .map(|u| {
            (0..n2)
                .map(|w| q2.node(w).pred.implies(&q1.node(u).pred))
                .collect()
        })
        .collect();
    // pre-compute edge entailment e' ⊨ e for all (e' ∈ E2, e ∈ E1)
    let entails: Vec<Vec<bool>> = q2
        .edges()
        .iter()
        .map(|e2| {
            q1.edges()
                .iter()
                .map(|e1| edge_entails(&e2.regex, &e1.regex))
                .collect()
        })
        .collect();
    // (1)(b): refine to fixpoint
    let mut changed = true;
    while changed {
        changed = false;
        for u1 in 0..n1 {
            for w1 in 0..n2 {
                if !sr[u1][w1] {
                    continue;
                }
                let ok = q1.out_edges(u1).iter().all(|&ei| {
                    let e = q1.edge(ei);
                    q2.out_edges(w1).iter().any(|&ej| {
                        let ep = q2.edge(ej);
                        sr[e.to][ep.to] && entails[ej][ei]
                    })
                });
                if !ok {
                    sr[u1][w1] = false;
                    changed = true;
                }
            }
        }
    }
    sr
}

/// The full revised similarity `Q1 ⊴ Q2` (conditions (1) **and** (2)).
pub fn revised_similar(q1: &Pq, q2: &Pq) -> bool {
    let sr = revised_similarity(q1, q2);
    // condition (2): every E2 edge has a witness in E1
    q2.edges().iter().all(|e2| {
        q1.edges().iter().any(|e1| {
            sr[e1.from][e2.from] && sr[e1.to][e2.to] && edge_entails(&e2.regex, &e1.regex)
        })
    })
}

/// Simulation-equivalence classes of the nodes of `q` (used by `minPQs`):
/// `u ≡ w` iff `(u, w)` and `(w, u)` are both in the maximum self-similarity
/// of `q`. Returns `(class_of, classes)`.
pub fn equivalence_classes(q: &Pq) -> (Vec<usize>, Vec<Vec<usize>>) {
    let sr = revised_similarity(q, q);
    let n = q.node_count();
    let mut class_of = vec![usize::MAX; n];
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for u in 0..n {
        if class_of[u] != usize::MAX {
            continue;
        }
        let cid = classes.len();
        let mut members = vec![u];
        class_of[u] = cid;
        for w in u + 1..n {
            if class_of[w] == usize::MAX && sr[u][w] && sr[w][u] {
                class_of[w] = cid;
                members.push(w);
            }
        }
        classes.push(members);
    }
    (class_of, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use rpq_graph::{Alphabet, Schema};
    use rpq_regex::FRegex;

    /// Build the Fig. 3 queries: all B-nodes share one predicate, all
    /// C-nodes another; h1 ⊆ h2 ⊆ h3 as languages.
    fn fig3() -> (Pq, Pq, Pq) {
        let mut schema = Schema::new();
        schema.intern("t");
        let al = Alphabet::from_names(["c"]);
        let bp = Predicate::parse("t = \"B\"", &schema).unwrap();
        let cp = Predicate::parse("t = \"C\"", &schema).unwrap();
        let h1 = FRegex::parse("c", &al).unwrap();
        let h2 = FRegex::parse("c^2", &al).unwrap();
        let h3 = FRegex::parse("c^3", &al).unwrap();

        let mut q1 = Pq::new();
        let b1 = q1.add_node("B1", bp.clone());
        let c1 = q1.add_node("C1", cp.clone());
        let c2 = q1.add_node("C2", cp.clone());
        let c3 = q1.add_node("C3", cp.clone());
        q1.add_edge(b1, c1, h1.clone());
        q1.add_edge(b1, c2, h2.clone());
        q1.add_edge(b1, c3, h3.clone());

        let mut q2 = Pq::new();
        let b2 = q2.add_node("B2", bp.clone());
        let c4 = q2.add_node("C4", cp.clone());
        q2.add_edge(b2, c4, h1.clone());

        let mut q3 = Pq::new();
        let b3 = q3.add_node("B3", bp);
        let c5 = q3.add_node("C5", cp.clone());
        let c6 = q3.add_node("C6", cp);
        q3.add_edge(b3, c5, h1);
        q3.add_edge(b3, c6, h3);

        (q1, q2, q3)
    }

    /// Example 3.2: Q1 ⊴ Q2 with Sr = {(B1,B2), (C1,C4), (C2,C4), (C3,C4)}.
    #[test]
    fn example_3_2_similarity() {
        let (q1, q2, _) = fig3();
        let sr = revised_similarity(&q1, &q2);
        assert!(sr[0][0], "(B1,B2)");
        assert!(sr[1][1] && sr[2][1] && sr[3][1], "(Ci,C4)");
        assert!(!sr[0][1] && !sr[1][0], "cross-type pairs excluded");
        assert!(revised_similar(&q1, &q2));
    }

    /// Example 3.1 via Lemma 3.1: Qa ⊑ Qb iff Qb ⊴ Qa.
    #[test]
    fn example_3_1_containments() {
        let (q1, q2, q3) = fig3();
        // (1) Q2 ⊑ Q1
        assert!(revised_similar(&q1, &q2));
        // (2) Q2 ⊑ Q3
        assert!(revised_similar(&q3, &q2));
        // (3) Q3 ⊑ Q1
        assert!(revised_similar(&q1, &q3));
        // (4) Q1 ⊑ Q3
        assert!(revised_similar(&q3, &q1));
        // and Q1 ⋢ Q2: Q2's single h1 edge cannot witness Q1's h3 edge
        assert!(!revised_similar(&q2, &q1));
    }

    #[test]
    fn self_similarity_contains_identity() {
        let (q1, _, _) = fig3();
        let sr = revised_similarity(&q1, &q1);
        for (u, row) in sr.iter().enumerate() {
            assert!(row[u], "identity pair {u}");
        }
        assert!(revised_similar(&q1, &q1));
    }

    #[test]
    fn equivalence_classes_fig3() {
        let (q1, _, _) = fig3();
        // C1 ⊆ C2 ⊆ C3 by edge strength but B1 has edges: C's have no
        // out-edges and identical predicates → all C's are equivalent
        let (class_of, classes) = equivalence_classes(&q1);
        assert_eq!(classes.len(), 2);
        assert_eq!(class_of[1], class_of[2]);
        assert_eq!(class_of[2], class_of[3]);
        assert_ne!(class_of[0], class_of[1]);
    }

    #[test]
    fn predicate_strength_breaks_similarity() {
        let mut schema = Schema::new();
        schema.intern("x");
        let al = Alphabet::from_names(["c"]);
        let strong = Predicate::parse("x > 10", &schema).unwrap();
        let weak = Predicate::parse("x > 5", &schema).unwrap();
        let h = FRegex::parse("c", &al).unwrap();
        let mk = |p: &Predicate| {
            let mut q = Pq::new();
            let a = q.add_node("a", p.clone());
            let b = q.add_node("b", Predicate::always_true());
            q.add_edge(a, b, h.clone());
            q
        };
        let qs = mk(&strong);
        let qw = mk(&weak);
        // Qs ⊑ Qw (strong sources are weak sources): needs Qw ⊴ Qs
        assert!(revised_similar(&qw, &qs));
        assert!(!revised_similar(&qs, &qw));
    }
}
