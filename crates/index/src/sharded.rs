//! The sharded distance backend: per-shard [`HopLabels`] stitched through
//! boundary [`OverlayLayer`](crate::overlay) labels — a [`DistProbe`]
//! whose *build* never holds more than one shard's index in flight.
//!
//! # Construction
//!
//! [`ShardedLabels::build_with`] partitions the graph (or accepts a
//! prebuilt [`ShardedGraph`]), then
//!
//! 1. builds one [`HopLabels`] **per shard, in parallel**, each over that
//!    shard's local graph and each under the *per-shard* byte budget
//!    ([`ShardedConfig::shard_budget_bytes`]) — this is the memory cap the
//!    whole design exists for: no single build ever needs the footprint of
//!    a whole-graph labeling;
//! 2. derives the per-layer weighted **overlay** over boundary nodes (cut
//!    edges at weight 1 + intra-shard boundary-to-boundary closures read
//!    off the per-shard labels) and labels it with pruned Dijkstra.
//!
//! # Probing (the exactness argument)
//!
//! Every global path either stays inside one shard or uses ≥ 1 cut edge.
//! In the second case it decomposes as
//! `u ⇝ b₁ (intra-shard) · b₁ ⇝ b₂ (overlay) · b₂ ⇝ v (intra-shard)`
//! where `b₁` is the source of the first cut edge and `b₂` the target of
//! the last: the prefix and suffix use no cut edge, so they live in one
//! shard each, and the middle alternates cut edges with intra-shard
//! boundary segments — each dominated by its overlay closure edge.
//! Hence
//!
//! ```text
//! dist(u, v) = min( local(u, v) if shard(u) = shard(v),
//!                   min over b₁ ∈ B(shard(u)), b₂ ∈ B(shard(v)) of
//!                       local(u, b₁) + overlay(b₁, b₂) + local(b₂, v) )
//! ```
//!
//! and every term of the stitched minimum is realized by a real path, so
//! probes are **exact** — bit-identical to a whole-graph index (the parity
//! suite in `tests/sharded.rs` pins this against both the matrix and
//! unsharded hop labels). Note the same-shard case still takes the
//! stitched minimum too: the shortest path between two nodes of one shard
//! may leave the shard and return.
//!
//! The stitched minimum is never evaluated pairwise: the source side is
//! folded over overlay hubs once ([`OverlayLayer::aggregate_out`]), the
//! target side once, and bulk PQ refinement
//! ([`DistProbe::sources_reaching_within`]) pushes the same aggregation
//! through the per-shard labels ([`HopLabels::in_aggregate`]), so a whole
//! `Join`-step costs label-linear work, exactly like the unsharded
//! backend.

use crate::labels::{HopBuildError, HopConfig, HopLabels, Top2};
use crate::overlay::{OverlayEdge, OverlayLayer};
use crate::probe::DistProbe;
use rpq_graph::{Color, Graph, NodeId, ShardedGraph, INFINITY, WILDCARD};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DIST_CAP: u16 = u16::MAX - 1;

/// Tuning knobs for [`ShardedLabels::build_with`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards to partition into (clamped to `1..=|V|`).
    pub shards: usize,
    /// Byte budget for **each** per-shard label build (`0` = unlimited).
    /// A concrete color layer exceeding it fails the whole build
    /// ([`HopBuildError::OverBudget`]); a wildcard layer exceeding it is
    /// dropped shard-locally, which drops wildcard coverage of the whole
    /// sharded index ([`ShardedLabels::has_layer`]).
    pub shard_budget_bytes: usize,
    /// Build the wildcard (`_`) layers (per shard and on the overlay).
    pub wildcard_layer: bool,
    /// Worker threads for the parallel per-shard builds; `0` means one
    /// per shard.
    pub build_workers: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            shard_budget_bytes: 0,
            wildcard_layer: true,
            build_workers: 0,
        }
    }
}

/// Build/shape statistics of a [`ShardedLabels`], for logs, benches and
/// the budget assertions of the scale suite.
#[derive(Debug, Clone)]
pub struct ShardedStats {
    /// Number of shards.
    pub shards: usize,
    /// Nodes covered.
    pub nodes: usize,
    /// Boundary nodes (= overlay size).
    pub boundary_nodes: usize,
    /// Cross-shard edges.
    pub cut_edges: usize,
    /// Fraction of edges cut by the partition.
    pub edge_cut_ratio: f64,
    /// Estimated resident bytes of each shard's label index.
    pub shard_bytes: Vec<usize>,
    /// Estimated resident bytes of the overlay labels (all layers).
    pub overlay_bytes: usize,
    /// Whether wildcard probes are covered.
    pub wildcard: bool,
}

impl ShardedStats {
    /// The largest single-shard label footprint — the number the
    /// per-shard budget caps.
    pub fn max_shard_bytes(&self) -> usize {
        self.shard_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Total footprint: every shard plus the overlay.
    pub fn total_bytes(&self) -> usize {
        self.shard_bytes.iter().sum::<usize>() + self.overlay_bytes
    }
}

impl std::fmt::Display for ShardedStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shards / {} nodes: {} boundary, {} cut ({:.1}%), max shard {} KiB, overlay {} KiB{}",
            self.shards,
            self.nodes,
            self.boundary_nodes,
            self.cut_edges,
            100.0 * self.edge_cut_ratio,
            self.max_shard_bytes() / 1024,
            self.overlay_bytes / 1024,
            if self.wildcard { "" } else { ", no wildcard" }
        )
    }
}

/// One shard's boundary-to-boundary closure rows for one layer, keyed by
/// *positions* into that shard's boundary list (stable across repairs
/// that leave the shard untouched): `(i, j, dist)`.
type ShardClosure = Vec<(u32, u32, u16)>;

/// Per-shard 2-hop labels plus boundary-overlay labels, composed into one
/// exact global [`DistProbe`]. See the module docs for the construction
/// and the exactness argument.
#[derive(Debug)]
pub struct ShardedLabels {
    sharded: Arc<ShardedGraph>,
    /// `Arc` so [`ShardedLabels::repair`] carries untouched shards forward
    /// without copying their label arrays.
    shard_labels: Vec<Arc<HopLabels>>,
    /// `overlay[c]` for concrete color `c`; `overlay[colors]` = wildcard.
    /// `None` = layer uncoverable (a shard dropped its wildcard layer).
    overlay: Vec<Option<OverlayLayer>>,
    /// `closures[layer][shard]`: the boundary closure rows each overlay
    /// layer was built from, retained so a repair recomputes only the
    /// rows of shards whose labels or boundary set actually changed.
    /// `None` where the layer was not built.
    closures: Vec<Vec<Option<ShardClosure>>>,
    colors: usize,
    n: usize,
}

impl ShardedLabels {
    /// Partition `g` into `shards` pieces and build with no budget.
    /// Cannot fail.
    pub fn build(g: &Arc<Graph>, shards: usize) -> Self {
        Self::build_with(
            g,
            &ShardedConfig {
                shards,
                ..ShardedConfig::default()
            },
            None,
        )
        .expect("unbudgeted, uncancelled build cannot fail")
    }

    /// Partition and build under `config`, checking `cancel` between
    /// landmarks of every per-shard build.
    pub fn build_with(
        g: &Arc<Graph>,
        config: &ShardedConfig,
        cancel: Option<&AtomicBool>,
    ) -> Result<Self, HopBuildError> {
        let sharded = Arc::new(ShardedGraph::new(Arc::clone(g), config.shards));
        Self::build_on(sharded, config, cancel)
    }

    /// Build over a prebuilt partition (custom partitioners, tests).
    pub fn build_on(
        sharded: Arc<ShardedGraph>,
        config: &ShardedConfig,
        cancel: Option<&AtomicBool>,
    ) -> Result<Self, HopBuildError> {
        let k = sharded.k();
        let hop_config = HopConfig {
            landmarks: 0, // exactness is non-negotiable here
            budget_bytes: config.shard_budget_bytes,
            wildcard_layer: config.wildcard_layer,
        };

        // scatter: per-shard label builds across the build worker set —
        // each shard's build is independent and individually budgeted
        let workers = if config.build_workers == 0 {
            k.max(1)
        } else {
            config.build_workers.max(1)
        };
        let mut results: Vec<Option<Result<Arc<HopLabels>, HopBuildError>>> =
            (0..k).map(|_| None).collect();
        std::thread::scope(|s| {
            let chunk = k.div_ceil(workers);
            for (w, slot_chunk) in results.chunks_mut(chunk.max(1)).enumerate() {
                let sharded = &sharded;
                let hop_config = &hop_config;
                s.spawn(move || {
                    for (i, slot) in slot_chunk.iter_mut().enumerate() {
                        // a superseded build stops *between* shards too,
                        // not only at the landmark checkpoints inside one
                        // shard's build — retirement latency stays bounded
                        // even when individual shards build fast
                        if cancelled(cancel) {
                            *slot = Some(Err(HopBuildError::Cancelled));
                            continue;
                        }
                        let shard = sharded.shard(w * chunk + i);
                        *slot =
                            Some(HopLabels::build_with(shard, hop_config, cancel).map(Arc::new));
                    }
                });
            }
        });
        let mut shard_labels = Vec::with_capacity(k);
        for r in results {
            shard_labels.push(r.expect("every shard built")?);
        }

        let graph = sharded.graph();
        let colors = graph.alphabet().len();
        let (overlay, closures) = Self::build_overlays(
            &sharded,
            &shard_labels,
            colors,
            config.wildcard_layer,
            |_layer, _shard| None,
            cancel,
        )?;

        Ok(ShardedLabels {
            n: graph.node_count(),
            colors,
            sharded,
            shard_labels,
            overlay,
            closures,
        })
    }

    /// Gather step shared by [`build_on`](ShardedLabels::build_on) and
    /// [`repair`](ShardedLabels::repair): one overlay layer per color
    /// (+ wildcard), built in parallel — cut edges at weight 1 plus
    /// per-shard boundary closures. `reuse` may return a previously
    /// computed closure for a `(layer, shard)` whose rows are known to be
    /// unchanged; everything else is recomputed from the shard labels.
    /// The cancel flag is honored between closure shards and between the
    /// overlay labeling's Dijkstra sources: on a poor partition the
    /// closure is the dominant build cost, and a superseded build must
    /// not burn it on an index nobody will read.
    #[allow(clippy::type_complexity)]
    fn build_overlays(
        sharded: &Arc<ShardedGraph>,
        shard_labels: &[Arc<HopLabels>],
        colors: usize,
        wildcard: bool,
        reuse: impl Fn(usize, usize) -> Option<ShardClosure> + Sync,
        cancel: Option<&AtomicBool>,
    ) -> Result<(Vec<Option<OverlayLayer>>, Vec<Vec<Option<ShardClosure>>>), HopBuildError> {
        let k = sharded.k();
        let b = sharded.boundary_globals().len();

        // overlay id of each shard's boundary list, aligned by position
        let boundary_ov: Vec<Vec<u32>> = (0..k)
            .map(|s| {
                sharded
                    .boundary_locals(s)
                    .iter()
                    .map(|&l| {
                        sharded
                            .overlay_index(sharded.partition().to_global(s, l))
                            .expect("boundary node has an overlay id")
                    })
                    .collect()
            })
            .collect();

        let wildcard_ok = wildcard && shard_labels.iter().all(|l| l.has_layer(WILDCARD));
        let layer_colors: Vec<Option<Color>> = (0..colors)
            .map(|c| Some(Color(c as u8)))
            .chain(std::iter::once(wildcard_ok.then_some(WILDCARD)))
            .collect();
        let mut built: Vec<Option<(OverlayLayer, Vec<ShardClosure>)>> =
            (0..=colors).map(|_| None).collect();
        std::thread::scope(|s| {
            for (li, (slot, &layer_color)) in built.iter_mut().zip(&layer_colors).enumerate() {
                let Some(color) = layer_color else { continue };
                let boundary_ov = &boundary_ov;
                let reuse = &reuse;
                s.spawn(move || {
                    let mut shard_closures: Vec<ShardClosure> = Vec::with_capacity(k);
                    for (shard, labels) in shard_labels.iter().enumerate().take(k) {
                        if cancelled(cancel) {
                            return;
                        }
                        shard_closures.push(
                            reuse(li, shard)
                                .unwrap_or_else(|| shard_closure(sharded, labels, shard, color)),
                        );
                    }
                    let mut edges: Vec<OverlayEdge> = Vec::new();
                    for &(u, v, ec) in sharded.cut_edges() {
                        if color.admits(ec) {
                            let ou = sharded
                                .overlay_index(u)
                                .expect("cut endpoints are boundary");
                            let ov = sharded
                                .overlay_index(v)
                                .expect("cut endpoints are boundary");
                            edges.push((ou, ov, 1));
                        }
                    }
                    for (shard, rows) in shard_closures.iter().enumerate() {
                        for &(i, j, d) in rows {
                            edges.push((
                                boundary_ov[shard][i as usize],
                                boundary_ov[shard][j as usize],
                                d,
                            ));
                        }
                    }
                    if let Some(layer) = OverlayLayer::build_with(b, &edges, cancel) {
                        *slot = Some((layer, shard_closures));
                    }
                });
            }
        });
        if cancelled(cancel) {
            return Err(HopBuildError::Cancelled);
        }

        let mut overlay = Vec::with_capacity(colors + 1);
        let mut closures = Vec::with_capacity(colors + 1);
        for slot in built {
            match slot {
                Some((layer, rows)) => {
                    overlay.push(Some(layer));
                    closures.push(rows.into_iter().map(Some).collect());
                }
                None => {
                    overlay.push(None);
                    closures.push(vec![None; k]);
                }
            }
        }
        Ok((overlay, closures))
    }

    /// Repair this index after `changes` were applied to the graph it was
    /// built on, yielding `new_sharded` — shard-local work instead of a
    /// whole-index rebuild.
    ///
    /// `new_sharded` must partition the updated graph with the **same
    /// shard count and node assignment** as this index, except for shards
    /// listed in `rebuild_shards` (a drift-rebalancing move-set), whose
    /// membership may differ. Changes are `(from, to, color)` in global
    /// ids, both inserts and deletes.
    ///
    /// Per shard:
    /// * an **intra-shard** change triggers [`HopLabels::repair`] on that
    ///   shard's labels (falling back to a shard-local rebuild when more
    ///   than half its landmarks are dirty or the repaired labels outgrow
    ///   the per-shard budget, where a freshly pruned build might not);
    /// * shards in `rebuild_shards` are rebuilt from scratch;
    /// * every other shard's labels are carried forward by reference.
    ///
    /// The overlay layers are then relabeled from the new cut-edge set
    /// (**cross-shard** changes enter here, at weight 1) plus the boundary
    /// closures — recomputing only the closure rows of shards whose labels
    /// or boundary set changed and reusing the retained rows of untouched
    /// shards. The result answers every probe identically to
    /// [`build_on`](ShardedLabels::build_on) over `new_sharded`.
    pub fn repair(
        &self,
        new_sharded: Arc<ShardedGraph>,
        changes: &[(NodeId, NodeId, Color)],
        rebuild_shards: &[usize],
        config: &ShardedConfig,
        cancel: Option<&AtomicBool>,
    ) -> Result<ShardedRepair, HopBuildError> {
        let k = self.sharded.k();
        assert_eq!(new_sharded.k(), k, "repair cannot change the shard count");
        assert_eq!(
            new_sharded.graph().node_count(),
            self.n,
            "updates must preserve the node set"
        );

        #[derive(Clone, Copy, PartialEq)]
        enum Action {
            Carry,
            Repair,
            Rebuild,
        }
        let part = new_sharded.partition();
        let mut action = vec![Action::Carry; k];
        for &s in rebuild_shards {
            action[s] = Action::Rebuild;
        }
        let mut intra: Vec<Vec<(NodeId, NodeId, Color)>> = vec![Vec::new(); k];
        for &(u, v, c) in changes {
            let (su, lu) = part.to_local(u);
            let (sv, lv) = part.to_local(v);
            if su == sv {
                intra[su].push((lu, lv, c));
                if action[su] == Action::Carry {
                    action[su] = Action::Repair;
                }
            }
            // cross-shard changes only alter cut edges, which the overlay
            // relabeling below reads fresh off `new_sharded`
        }

        let hop_config = HopConfig {
            landmarks: 0,
            budget_bytes: config.shard_budget_bytes,
            wildcard_layer: config.wildcard_layer,
        };

        // scatter: per-shard repair/rebuild across the worker set;
        // carried shards cost one reference count
        struct ShardResult {
            labels: Arc<HopLabels>,
            invalidated: usize,
            repaired: bool,
            rebuilt: bool,
        }
        let workers = if config.build_workers == 0 {
            k.max(1)
        } else {
            config.build_workers.max(1)
        };
        let t0 = Instant::now();
        let mut results: Vec<Option<Result<ShardResult, HopBuildError>>> =
            (0..k).map(|_| None).collect();
        std::thread::scope(|scope| {
            let chunk = k.div_ceil(workers);
            for (w, slot_chunk) in results.chunks_mut(chunk.max(1)).enumerate() {
                let new_sharded = &new_sharded;
                let hop_config = &hop_config;
                let action = &action;
                let intra = &intra;
                let old = &self.shard_labels;
                scope.spawn(move || {
                    for (i, slot) in slot_chunk.iter_mut().enumerate() {
                        let s = w * chunk + i;
                        if cancelled(cancel) {
                            *slot = Some(Err(HopBuildError::Cancelled));
                            continue;
                        }
                        *slot =
                            Some(match action[s] {
                                Action::Carry => Ok(ShardResult {
                                    labels: Arc::clone(&old[s]),
                                    invalidated: 0,
                                    repaired: false,
                                    rebuilt: false,
                                }),
                                Action::Repair => {
                                    let ts = Instant::now();
                                    let shard_g = new_sharded.shard(s);
                                    let limit = (old[s].node_count() / 2).max(1);
                                    match old[s].repair(
                                        shard_g,
                                        &intra[s],
                                        hop_config.budget_bytes,
                                        limit,
                                        cancel,
                                    ) {
                                        Ok(r) => {
                                            rpq_trace::tracer().record_span(
                                                "index",
                                                "shard-repair",
                                                ts.elapsed(),
                                                &format!(
                                                    "shard={s} invalidated={}",
                                                    r.landmarks_invalidated
                                                ),
                                            );
                                            Ok(ShardResult {
                                                labels: Arc::new(r.labels),
                                                invalidated: r.landmarks_invalidated,
                                                repaired: true,
                                                rebuilt: false,
                                            })
                                        }
                                        // over half the shard's landmarks are
                                        // dirty, or the repaired labels outgrew
                                        // the budget a freshly pruned build
                                        // might fit — rebuild shard-locally
                                        Err(
                                            HopBuildError::RepairTooBroad { .. }
                                            | HopBuildError::OverBudget { .. },
                                        ) => HopLabels::build_with(shard_g, hop_config, cancel)
                                            .map(|l| ShardResult {
                                                labels: Arc::new(l),
                                                invalidated: 0,
                                                repaired: false,
                                                rebuilt: true,
                                            }),
                                        Err(e) => Err(e),
                                    }
                                }
                                Action::Rebuild => {
                                    let ts = Instant::now();
                                    HopLabels::build_with(new_sharded.shard(s), hop_config, cancel)
                                        .map(|l| {
                                            rpq_trace::tracer().record_span(
                                                "index",
                                                "shard-rebuild",
                                                ts.elapsed(),
                                                &format!("shard={s} bytes={}", l.bytes()),
                                            );
                                            ShardResult {
                                                labels: Arc::new(l),
                                                invalidated: 0,
                                                repaired: false,
                                                rebuilt: true,
                                            }
                                        })
                                }
                            });
                    }
                });
            }
        });
        let mut shard_labels = Vec::with_capacity(k);
        let (mut repaired, mut rebuilt, mut invalidated) = (0usize, 0usize, 0usize);
        for r in results {
            let r = r.expect("every shard handled")?;
            repaired += usize::from(r.repaired);
            rebuilt += usize::from(r.rebuilt);
            invalidated += r.invalidated;
            shard_labels.push(r.labels);
        }

        // closure rows are reusable only where nothing underneath moved:
        // same labels *and* the same boundary list (a cross-shard insert
        // can promote a node to boundary in an otherwise untouched shard)
        let t_scattered = Instant::now();
        let reusable: Vec<bool> = (0..k)
            .map(|s| {
                action[s] == Action::Carry
                    && new_sharded.boundary_locals(s) == self.sharded.boundary_locals(s)
            })
            .collect();
        let (overlay, closures) = Self::build_overlays(
            &new_sharded,
            &shard_labels,
            self.colors,
            config.wildcard_layer,
            |layer, shard| {
                if reusable[shard] {
                    self.closures[layer][shard].clone()
                } else {
                    None
                }
            },
            cancel,
        )?;

        let t_overlaid = Instant::now();
        let tracer = rpq_trace::tracer();
        if tracer.enabled() {
            tracer.record_span(
                "index",
                "sharded-repair",
                t_overlaid - t0,
                &format!(
                    "carried={} repaired={repaired} rebuilt={rebuilt} invalidated={invalidated}",
                    k - repaired - rebuilt
                ),
            );
        }
        Ok(ShardedRepair {
            labels: ShardedLabels {
                n: self.n,
                colors: self.colors,
                sharded: new_sharded,
                shard_labels,
                overlay,
                closures,
            },
            shards_carried: k - repaired - rebuilt,
            shards_repaired: repaired,
            shards_rebuilt: rebuilt,
            landmarks_invalidated: invalidated,
            phases: vec![
                ("scatter", t_scattered - t0),
                ("overlay", t_overlaid - t_scattered),
            ],
        })
    }

    /// The partitioned storage this index serves.
    pub fn sharded_graph(&self) -> &Arc<ShardedGraph> {
        &self.sharded
    }

    /// The label index of shard `s`.
    pub fn shard_labels(&self, s: usize) -> &HopLabels {
        &self.shard_labels[s]
    }

    /// Is `color` (possibly wildcard) answerable? False only when a
    /// shard's wildcard layer was dropped on budget.
    pub fn has_layer(&self, color: Color) -> bool {
        self.overlay_layer(color).is_some() && self.shard_labels.iter().all(|l| l.has_layer(color))
    }

    /// Build/shape statistics.
    pub fn stats(&self) -> ShardedStats {
        let sg_stats = self.sharded.stats();
        ShardedStats {
            shards: self.sharded.k(),
            nodes: self.n,
            boundary_nodes: sg_stats.boundary_nodes,
            cut_edges: sg_stats.cut_edges,
            edge_cut_ratio: sg_stats.edge_cut_ratio(),
            shard_bytes: self.shard_labels.iter().map(|l| l.bytes()).collect(),
            overlay_bytes: self.overlay.iter().flatten().map(OverlayLayer::bytes).sum(),
            wildcard: self.has_layer(WILDCARD),
        }
    }

    fn overlay_layer(&self, color: Color) -> Option<&OverlayLayer> {
        let idx = if color.is_wildcard() {
            self.colors
        } else {
            debug_assert!((color.0 as usize) < self.colors, "color outside alphabet");
            color.0 as usize
        };
        self.overlay[idx].as_ref()
    }

    fn overlay_or_panic(&self, color: Color) -> &OverlayLayer {
        self.overlay_layer(color).unwrap_or_else(|| {
            panic!("sharded layer for {color:?} was not built (check has_layer first)")
        })
    }

    /// `(shard, local)` of a global node.
    #[inline]
    fn to_local(&self, v: NodeId) -> (usize, NodeId) {
        self.sharded.partition().to_local(v)
    }

    /// Distances from `v` to every boundary node of its own shard, as
    /// overlay-id seeds for [`OverlayLayer::aggregate_out`]. Empty when
    /// the shard touches no cut edge.
    fn exits_of(&self, shard: usize, local: NodeId, color: Color) -> Vec<(u32, u16)> {
        let labels: &HopLabels = &self.shard_labels[shard];
        self.sharded
            .boundary_locals(shard)
            .iter()
            .filter_map(|&b| {
                let d = DistProbe::dist(labels, local, b, color);
                (d != INFINITY).then(|| {
                    let g = self.sharded.partition().to_global(shard, b);
                    (self.sharded.overlay_index(g).expect("boundary"), d)
                })
            })
            .collect()
    }

    /// Mirror of [`exits_of`](ShardedLabels::exits_of): distances from
    /// every boundary node of `v`'s shard to `v`.
    fn entries_of(&self, shard: usize, local: NodeId, color: Color) -> Vec<(u32, u16)> {
        let labels: &HopLabels = &self.shard_labels[shard];
        self.sharded
            .boundary_locals(shard)
            .iter()
            .filter_map(|&b| {
                let d = DistProbe::dist(labels, b, local, color);
                (d != INFINITY).then(|| {
                    let g = self.sharded.partition().to_global(shard, b);
                    (self.sharded.overlay_index(g).expect("boundary"), d)
                })
            })
            .collect()
    }
}

/// What a [`ShardedLabels::repair`] did, shard by shard — the cost-model
/// and metrics view of an incremental index maintenance step.
#[derive(Debug)]
pub struct ShardedRepair {
    /// The repaired index — probe-identical to a from-scratch build over
    /// the same sharded graph.
    pub labels: ShardedLabels,
    /// Shards whose labels were carried forward by reference.
    pub shards_carried: usize,
    /// Shards repaired in place via [`HopLabels::repair`].
    pub shards_repaired: usize,
    /// Shards rebuilt from scratch (rebalancing move-sets, or repairs
    /// that fell back).
    pub shards_rebuilt: usize,
    /// Landmarks re-run across all repaired shards.
    pub landmarks_invalidated: usize,
    /// Wall-clock phase breakdown: `scatter` (per-shard carry / repair /
    /// rebuild across the worker set) and `overlay` (cut-edge + boundary
    /// closure relabeling). The live-update layer bubbles these into its
    /// `IndexMaintenance::phases` accounting.
    pub phases: Vec<(&'static str, Duration)>,
}

fn cancelled(cancel: Option<&AtomicBool>) -> bool {
    cancel.is_some_and(|f| f.load(std::sync::atomic::Ordering::Relaxed))
}

/// One shard's closure rows for one layer: every ordered boundary pair
/// with a finite intra-shard distance, keyed by boundary-list positions.
fn shard_closure(
    sharded: &ShardedGraph,
    labels: &HopLabels,
    shard: usize,
    color: Color,
) -> ShardClosure {
    let locals = sharded.boundary_locals(shard);
    let mut rows = ShardClosure::new();
    for (i, &b1) in locals.iter().enumerate() {
        for (j, &b2) in locals.iter().enumerate() {
            if i == j {
                continue;
            }
            let d = DistProbe::dist(labels, b1, b2, color);
            if d != INFINITY {
                rows.push((i as u32, j as u32, d));
            }
        }
    }
    rows
}

impl DistProbe for ShardedLabels {
    fn node_count(&self) -> usize {
        self.n
    }

    fn dist(&self, from: NodeId, to: NodeId, color: Color) -> u16 {
        if from == to {
            return 0;
        }
        let (sf, lf) = self.to_local(from);
        let (st, lt) = self.to_local(to);
        let mut best = if sf == st {
            let d = DistProbe::dist(self.shard_labels[sf].as_ref(), lf, lt, color);
            if d == INFINITY {
                u32::MAX
            } else {
                d as u32
            }
        } else {
            u32::MAX
        };
        // the stitched path: u ⇝ boundary(sf) ⇝ overlay ⇝ boundary(st) ⇝ v
        let layer = self.overlay_or_panic(color);
        if layer.hubs() > 0 {
            let exits = self.exits_of(sf, lf, color);
            if !exits.is_empty() {
                let entries = self.entries_of(st, lt, color);
                if !entries.is_empty() {
                    let mut agg_out = Vec::new();
                    let mut agg_in = Vec::new();
                    layer.aggregate_out(&exits, &mut agg_out);
                    layer.aggregate_in(&entries, &mut agg_in);
                    best = best.min(OverlayLayer::combine(&agg_out, &agg_in));
                }
            }
        }
        if best == u32::MAX {
            INFINITY
        } else {
            best.min(DIST_CAP as u32) as u16
        }
    }

    fn for_each_within(&self, from: NodeId, color: Color, max: u16, f: &mut dyn FnMut(NodeId)) {
        let (sf, lf) = self.to_local(from);
        let part = self.sharded.partition();
        // local part: everything reachable without leaving the shard
        self.shard_labels[sf].for_each_within(lf, color, max, &mut |z| {
            f(part.to_global(sf, z));
        });
        // stitched part: out through the boundary, across the overlay,
        // down into every shard (including sf again — a globally shorter
        // leave-and-return path may beat the local one; the callback
        // contract tolerates the duplicates)
        let layer = self.overlay_or_panic(color);
        if layer.hubs() == 0 || max == 0 {
            return;
        }
        let exits: Vec<(u32, u16)> = self
            .exits_of(sf, lf, color)
            .into_iter()
            .filter(|&(_, d)| d <= max)
            .collect();
        if exits.is_empty() {
            return;
        }
        let mut agg_out = Vec::new();
        layer.aggregate_out(&exits, &mut agg_out);
        for (oi, &bg) in self.sharded.boundary_globals().iter().enumerate() {
            let a = layer.dist_to(&agg_out, oi as u32);
            // a == 0 only for `from` itself (every segment would be empty)
            if a == 0 || a > max as u32 {
                continue;
            }
            if bg != from {
                f(bg);
            }
            let rem = max - a as u16;
            if rem == 0 {
                continue;
            }
            let (sb, lb) = self.to_local(bg);
            self.shard_labels[sb].for_each_within(lb, color, rem, &mut |z| {
                let zg = part.to_global(sb, z);
                if zg != from {
                    f(zg);
                }
            });
        }
    }

    /// Bulk refinement without pairwise stitches: per-shard target
    /// aggregation, folded over the overlay once, then pushed back
    /// through each source shard's labels as a weighted boundary set —
    /// label-linear end to end, like the unsharded [`HopLabels`]
    /// override. The stitched pipeline runs on origin-tracked `Top2`
    /// values: a plain per-hub minimum forgets *which* target produced
    /// it, so a boundary source that is itself a target would mask every
    /// other witness behind its own zero-length path — the runner-up
    /// over a distinct origin survives all three aggregation levels and
    /// restores the diagonal-excluded answer at the end.
    fn sources_reaching_within(
        &self,
        g: &Graph,
        sources: &[NodeId],
        targets: &[NodeId],
        color: Color,
        max_len: Option<u32>,
    ) -> Vec<bool> {
        let budget = max_len.unwrap_or(u32::MAX);
        if budget == 0 || targets.is_empty() {
            return vec![false; sources.len()];
        }
        let k = self.sharded.k();
        let part = self.sharded.partition();
        let layer = self.overlay_or_panic(color);

        let mut is_target = vec![false; self.n];
        let mut targets_local2: Vec<Vec<(NodeId, Top2)>> = vec![Vec::new(); k];
        for &y in targets {
            is_target[y.index()] = true;
            let (s, l) = part.to_local(y);
            targets_local2[s].push((l, Top2::leaf(0, y.0)));
        }
        // per-shard "distance into the local target set" aggregation —
        // origin-tracked, serving both the pure-local witness (min /
        // excluding for the diagonal) and the stitched pipeline
        let target_agg2: Vec<Option<crate::labels::InSetAgg2>> = (0..k)
            .map(|s| {
                (!targets_local2[s].is_empty())
                    .then(|| self.shard_labels[s].in_aggregate2(color, &targets_local2[s]))
            })
            .collect();

        // overlay fold of the target side: for each boundary node b₂ of a
        // target-bearing shard, its local cost into the target set
        let mut entry_seeds: Vec<(u32, Top2)> = Vec::new();
        for (s, slot) in target_agg2.iter().enumerate() {
            let Some(agg2) = slot else {
                continue;
            };
            for &b in self.sharded.boundary_locals(s) {
                let t2 = self.shard_labels[s].dist_into2(b, agg2);
                if !t2.is_none() {
                    let bg = part.to_global(s, b);
                    entry_seeds.push((self.sharded.overlay_index(bg).expect("boundary"), t2));
                }
            }
        }
        // per-source-shard: fold "boundary exit → overlay → target" costs
        // back into that shard's label space as a weighted boundary set
        let stitch_agg: Vec<Option<crate::labels::InSetAgg2>> = if layer.hubs() == 0
            || entry_seeds.is_empty()
        {
            (0..k).map(|_| None).collect()
        } else {
            let mut agg_in = Vec::new();
            layer.aggregate_in2(&entry_seeds, &mut agg_in);
            (0..k)
                .map(|s| {
                    let seeds: Vec<(NodeId, Top2)> = self
                        .sharded
                        .boundary_locals(s)
                        .iter()
                        .filter_map(|&b| {
                            let bg = part.to_global(s, b);
                            let oi = self.sharded.overlay_index(bg).expect("boundary");
                            let cost = layer.dist_from2(oi, &agg_in);
                            (!cost.is_none()).then_some((b, cost))
                        })
                        .collect();
                    (!seeds.is_empty()).then(|| self.shard_labels[s].in_aggregate2(color, &seeds))
                })
                .collect()
        };

        sources
            .iter()
            .map(|&x| {
                let (s, l) = part.to_local(x);
                let diagonal = is_target[x.index()];
                // purely local witness (diagonal-safe via the tracked
                // runner-up origin)
                if let Some(agg) = &target_agg2[s] {
                    let t2 = self.shard_labels[s].dist_into2(l, agg);
                    let d = if diagonal {
                        t2.excluding(x.0)
                    } else {
                        t2.min()
                    };
                    if d != INFINITY && (d as u32) <= budget {
                        return true;
                    }
                }
                // stitched witness to a target other than x — paths back
                // to x itself (the diagonal) are the cycle check's job
                if let Some(agg) = &stitch_agg[s] {
                    let t2 = self.shard_labels[s].dist_into2(l, agg);
                    let d = if diagonal {
                        t2.excluding(x.0)
                    } else {
                        t2.min()
                    };
                    if d != INFINITY && (d as u32) <= budget {
                        return true;
                    }
                }
                // nonempty-path diagonal: x ∈ targets answered by a cycle
                diagonal && self.has_cycle_within(g, x, color, max_len)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::gen::{clustered, essembly, synthetic};
    use rpq_graph::{DistanceMatrix, GraphBuilder, Partition};

    fn all_colors(g: &Graph) -> Vec<Color> {
        let mut cs: Vec<Color> = g.alphabet().colors().collect();
        cs.push(WILDCARD);
        cs
    }

    fn assert_probe_parity(g: &Arc<Graph>, labels: &ShardedLabels) {
        let m = DistanceMatrix::build(g);
        for c in all_colors(g) {
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        DistProbe::dist(labels, u, v, c),
                        m.dist(u, v, c),
                        "dist({u:?},{v:?},{c:?})"
                    );
                }
                for max in [0u16, 1, 2, 5, DIST_CAP] {
                    let mut want = vec![false; g.node_count()];
                    DistProbe::for_each_within(&m, u, c, max, &mut |z| want[z.index()] = true);
                    let mut got = vec![false; g.node_count()];
                    labels.for_each_within(u, c, max, &mut |z| got[z.index()] = true);
                    assert_eq!(got, want, "scan from {u:?} color {c:?} max {max}");
                }
            }
        }
    }

    #[test]
    fn parity_on_synthetic_graphs() {
        for (seed, k) in [(5u64, 2usize), (9, 3), (23, 4)] {
            let g = Arc::new(synthetic(40, 150, 2, 3, seed));
            let labels = ShardedLabels::build(&g, k);
            assert_eq!(labels.sharded_graph().k(), k);
            assert_probe_parity(&g, &labels);
        }
    }

    #[test]
    fn parity_on_clustered_and_essembly() {
        let g = Arc::new(clustered(80, 320, 4, 2, 3, 80, 3));
        assert_probe_parity(&g, &ShardedLabels::build(&g, 4));
        let e = Arc::new(essembly());
        assert_probe_parity(&e, &ShardedLabels::build(&e, 3));
    }

    #[test]
    fn parity_with_every_edge_cut() {
        // even/odd partition of a two-color ring with chords: the local
        // graphs are edgeless, the overlay carries everything
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..12).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let r = b.color("r");
        let s = b.color("s");
        for i in 0..12 {
            b.add_edge(
                nodes[i],
                nodes[(i + 1) % 12],
                if i % 2 == 0 { r } else { s },
            );
            b.add_edge(nodes[i], nodes[(i + 5) % 12], r);
        }
        let g = Arc::new(b.build());
        let shard_of: Vec<u32> = (0..12).map(|v| (v % 2) as u32).collect();
        let sg = Arc::new(ShardedGraph::with_partition(
            Arc::clone(&g),
            Partition::from_shard_of(shard_of, 2),
        ));
        assert_eq!(sg.cut_edges().len(), g.edge_count(), "degenerate cut");
        let labels =
            ShardedLabels::build_on(Arc::clone(&sg), &ShardedConfig::default(), None).unwrap();
        assert_probe_parity(&g, &labels);
    }

    #[test]
    fn bulk_matches_pairwise_and_matrix() {
        for (seed, k) in [(11u64, 2usize), (29, 3), (77, 4)] {
            let g = Arc::new(synthetic(50, 200, 2, 3, seed));
            let m = DistanceMatrix::build(&g);
            let labels = ShardedLabels::build(&g, k);
            let nodes: Vec<NodeId> = g.nodes().collect();
            let every_3rd: Vec<NodeId> = nodes.iter().copied().step_by(3).collect();
            let subsets: [(&[NodeId], &[NodeId]); 5] = [
                (&nodes[0..20], &nodes[25..45]),
                (&nodes[10..35], &nodes[20..30]),
                (&nodes[0..50], &nodes[0..50]),
                (&nodes[7..8], &nodes[7..8]),
                (&nodes[0..50], &every_3rd),
            ];
            for c in all_colors(&g) {
                for (sources, targets) in subsets {
                    for max in [None, Some(0u32), Some(1), Some(2), Some(7)] {
                        let got = labels.sources_reaching_within(&g, sources, targets, c, max);
                        let want = m.sources_reaching_within(&g, sources, targets, c, max);
                        assert_eq!(got, want, "bulk({c:?}, within {max:?}, seed {seed}, k {k})");
                    }
                }
            }
        }
    }

    #[test]
    fn reaches_and_cycles_agree_with_matrix() {
        let g = Arc::new(synthetic(36, 140, 2, 2, 13));
        let m = DistanceMatrix::build(&g);
        let labels = ShardedLabels::build(&g, 3);
        for c in all_colors(&g) {
            for u in g.nodes() {
                for v in g.nodes() {
                    for max in [None, Some(0u32), Some(1), Some(3)] {
                        assert_eq!(
                            labels.reaches_within(&g, u, v, c, max),
                            m.reaches_within(&g, u, v, c, max),
                            "reaches {u:?}->{v:?} {c:?} within {max:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn per_shard_budget_is_enforced() {
        let g = Arc::new(synthetic(120, 480, 2, 3, 8));
        let tiny = ShardedConfig {
            shards: 3,
            shard_budget_bytes: 1,
            ..ShardedConfig::default()
        };
        assert!(matches!(
            ShardedLabels::build_with(&g, &tiny, None),
            Err(HopBuildError::OverBudget { budget: 1, .. })
        ));
        // a budget fitting the concrete layers but not the per-shard
        // wildcard layer drops wildcard coverage of the whole index
        let full = ShardedLabels::build(&g, 3);
        let concrete_max = (0..3)
            .map(|s| {
                let cfg = HopConfig {
                    wildcard_layer: false,
                    ..HopConfig::default()
                };
                HopLabels::build_with(full.sharded_graph().shard(s), &cfg, None)
                    .unwrap()
                    .bytes()
            })
            .max()
            .unwrap();
        let mid = ShardedConfig {
            shards: 3,
            shard_budget_bytes: concrete_max + 64,
            ..ShardedConfig::default()
        };
        let labels = ShardedLabels::build_with(&g, &mid, None).expect("concrete layers fit");
        assert!(!labels.has_layer(WILDCARD));
        assert!(!labels.stats().wildcard);
        for c in g.alphabet().colors() {
            assert!(labels.has_layer(c));
        }
        let stats = labels.stats();
        for &bytes in &stats.shard_bytes {
            assert!(
                bytes <= mid.shard_budget_bytes,
                "{bytes} over per-shard budget"
            );
        }
        // concrete probes stay exact
        let m = DistanceMatrix::build(&g);
        for u in g.nodes().take(30) {
            for v in g.nodes().take(30) {
                assert_eq!(
                    DistProbe::dist(&labels, u, v, Color(0)),
                    m.dist(u, v, Color(0))
                );
            }
        }
    }

    fn lcg(s: &mut u64) -> u64 {
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *s >> 33
    }

    /// Apply pseudo-random edge flips, returning the new graph and the
    /// effective change list.
    fn random_mutation_round(
        g: &Graph,
        count: usize,
        seed: u64,
    ) -> (Arc<Graph>, Vec<(NodeId, NodeId, Color)>) {
        let n = g.node_count() as u64;
        let m = g.alphabet().len() as u64;
        let mut b = GraphBuilder::from_graph(g);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut eff = Vec::new();
        for _ in 0..count {
            let u = NodeId((lcg(&mut s) % n) as u32);
            let v = NodeId((lcg(&mut s) % n) as u32);
            let c = Color((lcg(&mut s) % m) as u8);
            let applied = match lcg(&mut s) % 2 {
                0 => b.insert_edge(u, v, c) || b.remove_edge(u, v, c),
                _ => b.remove_edge(u, v, c) || b.insert_edge(u, v, c),
            };
            if applied {
                eff.push((u, v, c));
            }
        }
        (Arc::new(b.build()), eff)
    }

    fn shard_of_vec(sg: &ShardedGraph) -> Vec<u32> {
        let part = sg.partition();
        (0..sg.graph().node_count())
            .map(|v| part.to_local(NodeId(v as u32)).0 as u32)
            .collect()
    }

    /// Rebuild a ShardedGraph over `g2` with the same node assignment.
    fn same_partition(sg: &ShardedGraph, g2: Arc<Graph>) -> Arc<ShardedGraph> {
        let shard_of = shard_of_vec(sg);
        Arc::new(ShardedGraph::with_partition(
            g2,
            Partition::from_shard_of(shard_of, sg.k()),
        ))
    }

    #[test]
    fn repair_matches_rebuild_after_updates() {
        for (seed, k) in [(5u64, 2usize), (9, 3), (23, 4)] {
            let g = Arc::new(synthetic(40, 150, 2, 3, seed));
            let labels = ShardedLabels::build(&g, k);
            let (g2, eff) = random_mutation_round(&g, 12, seed ^ 0xFACE);
            assert!(!eff.is_empty());
            let sg2 = same_partition(labels.sharded_graph(), Arc::clone(&g2));
            let r = labels
                .repair(sg2, &eff, &[], &ShardedConfig::default(), None)
                .unwrap();
            assert_eq!(
                r.shards_carried + r.shards_repaired + r.shards_rebuilt,
                k,
                "every shard accounted for"
            );
            assert_probe_parity(&g2, &r.labels);
        }
    }

    #[test]
    fn intra_shard_change_touches_one_shard() {
        let g = Arc::new(synthetic(40, 150, 2, 2, 31));
        let k = 4;
        let labels = ShardedLabels::build(&g, k);
        let part = labels.sharded_graph().partition();
        // two distinct nodes of shard 0, as global ids
        let (u, v) = {
            let mut it = g.nodes().filter(|&v| part.to_local(v).0 == 0);
            (it.next().unwrap(), it.next().unwrap())
        };
        let c = Color(0);
        let mut b = GraphBuilder::from_graph(&g);
        let applied = b.insert_edge(u, v, c) || b.remove_edge(u, v, c);
        assert!(applied);
        let g2 = Arc::new(b.build());
        let sg2 = same_partition(labels.sharded_graph(), Arc::clone(&g2));
        let r = labels
            .repair(sg2, &[(u, v, c)], &[], &ShardedConfig::default(), None)
            .unwrap();
        assert_eq!(r.shards_repaired + r.shards_rebuilt, 1);
        assert_eq!(r.shards_carried, k - 1);
        assert_probe_parity(&g2, &r.labels);
    }

    #[test]
    fn cross_shard_change_carries_every_shard() {
        let g = Arc::new(synthetic(40, 150, 2, 2, 17));
        let k = 3;
        let labels = ShardedLabels::build(&g, k);
        let part = labels.sharded_graph().partition();
        let u = g.nodes().find(|&v| part.to_local(v).0 == 0).unwrap();
        let v = g.nodes().find(|&v| part.to_local(v).0 == 1).unwrap();
        let c = Color(1);
        let mut b = GraphBuilder::from_graph(&g);
        let applied = b.insert_edge(u, v, c) || b.remove_edge(u, v, c);
        assert!(applied);
        let g2 = Arc::new(b.build());
        let sg2 = same_partition(labels.sharded_graph(), Arc::clone(&g2));
        let r = labels
            .repair(sg2, &[(u, v, c)], &[], &ShardedConfig::default(), None)
            .unwrap();
        // only the overlay moves: every shard's labels carried by reference
        assert_eq!(r.shards_carried, k);
        assert_eq!(r.landmarks_invalidated, 0);
        assert_probe_parity(&g2, &r.labels);
    }

    #[test]
    fn repair_with_every_edge_cut_partition() {
        // degenerate partition: every edge is cut, local graphs edgeless,
        // all changes flow through the overlay relabeling
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..12).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let r = b.color("r");
        let s = b.color("s");
        for i in 0..12 {
            b.add_edge(
                nodes[i],
                nodes[(i + 1) % 12],
                if i % 2 == 0 { r } else { s },
            );
        }
        let g = Arc::new(b.build());
        let shard_of: Vec<u32> = (0..12).map(|v| (v % 2) as u32).collect();
        let sg = Arc::new(ShardedGraph::with_partition(
            Arc::clone(&g),
            Partition::from_shard_of(shard_of, 2),
        ));
        let labels =
            ShardedLabels::build_on(Arc::clone(&sg), &ShardedConfig::default(), None).unwrap();
        // delete one ring edge, insert a chord — both cross-shard
        let mut gb = GraphBuilder::from_graph(&g);
        assert!(gb.remove_edge(nodes[0], nodes[1], r));
        assert!(gb.insert_edge(nodes[2], nodes[9], s));
        let g2 = Arc::new(gb.build());
        let sg2 = same_partition(&sg, Arc::clone(&g2));
        let rep = labels
            .repair(
                sg2,
                &[(nodes[0], nodes[1], r), (nodes[2], nodes[9], s)],
                &[],
                &ShardedConfig::default(),
                None,
            )
            .unwrap();
        assert_probe_parity(&g2, &rep.labels);
    }

    #[test]
    fn repair_rebuilds_shards_whose_membership_moved() {
        let g = Arc::new(synthetic(36, 140, 2, 2, 41));
        let k = 3;
        let labels = ShardedLabels::build(&g, k);
        // move one node from its shard into another: both shards must be
        // rebuilt (local id spaces shift), the rest carried
        let mut shard_of = shard_of_vec(labels.sharded_graph());
        let moved = shard_of.iter().position(|&s| s == 0).unwrap();
        shard_of[moved] = 1;
        let sg2 = Arc::new(ShardedGraph::with_partition(
            Arc::clone(&g),
            Partition::from_shard_of(shard_of, k),
        ));
        let r = labels
            .repair(sg2, &[], &[0, 1], &ShardedConfig::default(), None)
            .unwrap();
        assert_eq!(r.shards_rebuilt, 2);
        assert_eq!(r.shards_carried, k - 2);
        assert_probe_parity(&g, &r.labels);
    }

    #[test]
    fn repair_cancel_aborts() {
        let g = Arc::new(synthetic(40, 150, 2, 2, 3));
        let labels = ShardedLabels::build(&g, 3);
        let (g2, eff) = random_mutation_round(&g, 6, 77);
        let sg2 = same_partition(labels.sharded_graph(), g2);
        let flag = AtomicBool::new(true);
        assert!(matches!(
            labels.repair(sg2, &eff, &[], &ShardedConfig::default(), Some(&flag)),
            Err(HopBuildError::Cancelled)
        ));
    }

    #[test]
    fn cancel_aborts() {
        let g = Arc::new(synthetic(80, 240, 1, 2, 4));
        let flag = AtomicBool::new(true);
        assert!(matches!(
            ShardedLabels::build_with(&g, &ShardedConfig::default(), Some(&flag)),
            Err(HopBuildError::Cancelled)
        ));
    }

    #[test]
    fn single_shard_and_stats() {
        let g = Arc::new(synthetic(30, 90, 1, 2, 2));
        let labels = ShardedLabels::build(&g, 1);
        assert_probe_parity(&g, &labels);
        let stats = labels.stats();
        assert_eq!(stats.shards, 1);
        assert_eq!(stats.cut_edges, 0);
        assert_eq!(stats.boundary_nodes, 0);
        assert_eq!(
            stats.overlay_bytes + stats.shard_bytes[0],
            stats.total_bytes()
        );
        assert!(stats.wildcard);
        let line = labels.stats().to_string();
        assert!(line.contains("1 shards"), "{line}");
        assert!(labels.shard_labels(0).is_exact());
    }
}
