//! Exact 2-hop distance labels over the **boundary overlay** of a
//! sharded graph.
//!
//! The overlay is a small *weighted* digraph per color layer: its nodes
//! are the boundary nodes of a [`ShardedGraph`](rpq_graph::ShardedGraph)
//! (endpoints of cut edges), its edges are
//!
//! * every cut edge admitted by the layer's color, with weight 1, and
//! * a *closure* edge `b1 → b2` of weight `d` for every boundary pair of
//!   one shard with intra-shard distance `d` under the layer's color
//!   (read off that shard's [`HopLabels`](crate::HopLabels)).
//!
//! By construction, the overlay distance between two boundary nodes
//! equals their **global** distance: any global path between boundary
//! nodes alternates cut edges with intra-shard boundary-to-boundary
//! segments, and each segment is dominated by its closure edge; each
//! overlay edge is conversely realized by a real path of its weight.
//!
//! Because edges are weighted, the pruned-**BFS** labeling of
//! [`HopLabels`](crate::HopLabels) does not apply; this module runs the
//! same pruning idea with Dijkstra (the weighted form of Akiba-Iwata-
//! Yoshida's pruned landmark labeling): nodes ranked by overlay degree,
//! and the search from landmark `r` prunes every node whose distance is
//! already covered by higher-ranked hubs. Every node is processed, so
//! probes are exact.
//!
//! Layers are keyed like [`HopLabels`]: one per concrete color plus the
//! wildcard union layer. A layer is absent when its closure could not be
//! computed (a shard's wildcard layer was dropped on budget).

use crate::labels::Top2;
#[cfg(test)]
use rpq_graph::INFINITY;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Distances saturate one below [`INFINITY`], like every probe backend.
const DIST_CAP: u16 = u16::MAX - 1;
const UNSET: u16 = u16::MAX;

/// One weighted overlay edge: `(from, to, weight)` in overlay ids.
pub(crate) type OverlayEdge = (u32, u32, u16);

/// One layer of overlay labels: per-node `Lout`/`Lin` in CSR form, hubs
/// stored as ranks ascending (labels are appended in rank order).
#[derive(Debug, Clone, Default)]
pub(crate) struct OverlayLayer {
    hubs: usize,
    out_offsets: Vec<u32>,
    out_hubs: Vec<u32>,
    out_dists: Vec<u16>,
    in_offsets: Vec<u32>,
    in_hubs: Vec<u32>,
    in_dists: Vec<u16>,
}

impl OverlayLayer {
    /// Build exact labels for the weighted digraph on `b` overlay nodes.
    #[cfg(test)]
    pub(crate) fn build(b: usize, edges: &[OverlayEdge]) -> OverlayLayer {
        Self::build_with(b, edges, None).expect("uncancelled overlay build cannot fail")
    }

    /// [`build`](OverlayLayer::build) with a cancellation flag, checked
    /// between Dijkstra sources: on overlay-heavy partitions the labeling
    /// here is a large share of the whole index build, and a superseded
    /// build must be able to stop mid-overlay, not only at per-shard
    /// landmark checkpoints. Returns `None` when cancelled.
    pub(crate) fn build_with(
        b: usize,
        edges: &[OverlayEdge],
        cancel: Option<&std::sync::atomic::AtomicBool>,
    ) -> Option<OverlayLayer> {
        // CSR adjacency, both directions
        let mut fwd_off = vec![0u32; b + 1];
        let mut bwd_off = vec![0u32; b + 1];
        for &(u, v, _) in edges {
            fwd_off[u as usize + 1] += 1;
            bwd_off[v as usize + 1] += 1;
        }
        for i in 0..b {
            fwd_off[i + 1] += fwd_off[i];
            bwd_off[i + 1] += bwd_off[i];
        }
        let mut fwd = vec![(0u32, 0u16); edges.len()];
        let mut bwd = vec![(0u32, 0u16); edges.len()];
        {
            let mut fc = fwd_off.clone();
            let mut bc = bwd_off.clone();
            for &(u, v, w) in edges {
                fwd[fc[u as usize] as usize] = (v, w);
                fc[u as usize] += 1;
                bwd[bc[v as usize] as usize] = (u, w);
                bc[v as usize] += 1;
            }
        }
        let adj = |off: &[u32], v: usize| -> std::ops::Range<usize> {
            off[v] as usize..off[v + 1] as usize
        };

        // rank by total overlay degree (hubby boundary nodes cover the
        // most cross-shard shortest paths), ties to the lower id
        let mut order: Vec<u32> = (0..b as u32).collect();
        order.sort_unstable_by_key(|&v| {
            let vi = v as usize;
            let deg = (fwd_off[vi + 1] - fwd_off[vi]) + (bwd_off[vi + 1] - bwd_off[vi]);
            (Reverse(deg), v)
        });

        let mut lout: Vec<Vec<(u32, u16)>> = vec![Vec::new(); b];
        let mut lin: Vec<Vec<(u32, u16)>> = vec![Vec::new(); b];
        let mut tmp = vec![UNSET; b];
        let mut dist = vec![UNSET; b];
        let mut touched: Vec<u32> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(u16, u32)>> = BinaryHeap::new();

        // one pruned Dijkstra: from `r` over `list` (forward ⇒ writes
        // Lin, pruned against Lout(r) ⊗ Lin(u); backward is the mirror)
        let pruned_dijkstra =
            |rank: usize,
             r: u32,
             off: &[u32],
             list: &[(u32, u16)],
             seed: &[(u32, u16)],
             side: &mut [Vec<(u32, u16)>],
             tmp: &mut [u16],
             dist: &mut [u16],
             touched: &mut Vec<u32>,
             heap: &mut BinaryHeap<Reverse<(u16, u32)>>| {
                for &(h, d) in seed {
                    tmp[h as usize] = d;
                }
                tmp[rank] = 0;
                heap.clear();
                dist[r as usize] = 0;
                touched.push(r);
                heap.push(Reverse((0, r)));
                while let Some(Reverse((du, u))) = heap.pop() {
                    if du > dist[u as usize] {
                        continue; // stale heap entry
                    }
                    // covered by higher-ranked hubs already?
                    let mut best = u32::MAX;
                    for &(h, dh) in side[u as usize].iter() {
                        let t = tmp[h as usize];
                        if t != UNSET {
                            best = best.min(t as u32 + dh as u32);
                        }
                    }
                    if best <= du as u32 {
                        continue;
                    }
                    side[u as usize].push((rank as u32, du));
                    for i in adj(off, u as usize) {
                        let (v, w) = list[i];
                        let nd = (du as u32 + w as u32).min(DIST_CAP as u32) as u16;
                        if dist[v as usize] == UNSET {
                            dist[v as usize] = nd;
                            touched.push(v);
                            heap.push(Reverse((nd, v)));
                        } else if nd < dist[v as usize] {
                            dist[v as usize] = nd;
                            heap.push(Reverse((nd, v)));
                        }
                    }
                }
                for &t in touched.iter() {
                    dist[t as usize] = UNSET;
                }
                touched.clear();
                for &(h, _) in seed {
                    tmp[h as usize] = UNSET;
                }
                tmp[rank] = UNSET;
            };

        for (rank, &r) in order.iter().enumerate() {
            if cancel.is_some_and(|f| f.load(std::sync::atomic::Ordering::Relaxed)) {
                return None;
            }
            let seed: Vec<(u32, u16)> = lout[r as usize].clone();
            pruned_dijkstra(
                rank,
                r,
                &fwd_off,
                &fwd,
                &seed,
                &mut lin,
                &mut tmp,
                &mut dist,
                &mut touched,
                &mut heap,
            );
            let seed: Vec<(u32, u16)> = lin[r as usize].clone();
            pruned_dijkstra(
                rank,
                r,
                &bwd_off,
                &bwd,
                &seed,
                &mut lout,
                &mut tmp,
                &mut dist,
                &mut touched,
                &mut heap,
            );
        }

        let mut layer = OverlayLayer {
            hubs: b,
            ..OverlayLayer::default()
        };
        let pack = |labels: &[Vec<(u32, u16)>],
                    offsets: &mut Vec<u32>,
                    hubs: &mut Vec<u32>,
                    dists: &mut Vec<u16>| {
            offsets.reserve(b + 1);
            offsets.push(0);
            for l in labels {
                for &(h, d) in l {
                    hubs.push(h);
                    dists.push(d);
                }
                offsets.push(hubs.len() as u32);
            }
        };
        pack(
            &lout,
            &mut layer.out_offsets,
            &mut layer.out_hubs,
            &mut layer.out_dists,
        );
        pack(
            &lin,
            &mut layer.in_offsets,
            &mut layer.in_hubs,
            &mut layer.in_dists,
        );
        Some(layer)
    }

    /// Number of hub ranks (= overlay nodes; every node is processed).
    pub(crate) fn hubs(&self) -> usize {
        self.hubs
    }

    fn out_label(&self, v: usize) -> (&[u32], &[u16]) {
        let lo = self.out_offsets[v] as usize;
        let hi = self.out_offsets[v + 1] as usize;
        (&self.out_hubs[lo..hi], &self.out_dists[lo..hi])
    }

    fn in_label(&self, v: usize) -> (&[u32], &[u16]) {
        let lo = self.in_offsets[v] as usize;
        let hi = self.in_offsets[v + 1] as usize;
        (&self.in_hubs[lo..hi], &self.in_dists[lo..hi])
    }

    /// Mirror of [`aggregate_in`](OverlayLayer::aggregate_in) carrying
    /// origin-tracked [`Top2`] costs — the composition-safe form the
    /// sharded bulk refinement stitches through.
    pub(crate) fn aggregate_in2(&self, seeds: &[(u32, Top2)], out: &mut Vec<Top2>) {
        out.clear();
        out.resize(self.hubs, Top2::NONE);
        for (b, t2) in seeds {
            let (hs, ds) = self.in_label(*b as usize);
            for (&h, &d) in hs.iter().zip(ds) {
                out[h as usize].add_shifted(t2, d);
            }
        }
    }

    /// Origin-tracked form of a source-to-set scan: the [`Top2`] of
    /// `min_h dist(v ⇝ h) + agg_in[h]`.
    pub(crate) fn dist_from2(&self, v: u32, agg_in: &[Top2]) -> Top2 {
        let (hs, ds) = self.out_label(v as usize);
        let mut out = Top2::NONE;
        for (&h, &d) in hs.iter().zip(ds) {
            out.add_shifted(&agg_in[h as usize], d);
        }
        out
    }

    /// Point probe: overlay distance `u → v` (= global distance between
    /// the two boundary nodes). [`INFINITY`] when disconnected.
    #[cfg(test)]
    pub(crate) fn dist(&self, u: u32, v: u32) -> u16 {
        if u == v {
            return 0;
        }
        let (oh, od) = self.out_label(u as usize);
        let (ih, id) = self.in_label(v as usize);
        let mut best = u32::MAX;
        let (mut i, mut j) = (0usize, 0usize);
        while i < oh.len() && j < ih.len() {
            match oh[i].cmp(&ih[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    best = best.min(od[i] as u32 + id[j] as u32);
                    i += 1;
                    j += 1;
                }
            }
        }
        if best == u32::MAX {
            INFINITY
        } else {
            best.min(DIST_CAP as u32) as u16
        }
    }

    /// Fold weighted seeds on the **source side** into a per-hub table:
    /// `out[h] = min over (b, w) of w + dist(b ⇝ h)`. `out` is resized
    /// and reset here; `u32::MAX` marks unreached hubs.
    pub(crate) fn aggregate_out(&self, seeds: &[(u32, u16)], out: &mut Vec<u32>) {
        out.clear();
        out.resize(self.hubs, u32::MAX);
        for &(b, w) in seeds {
            let (hs, ds) = self.out_label(b as usize);
            for (&h, &d) in hs.iter().zip(ds) {
                let v = w as u32 + d as u32;
                let slot = &mut out[h as usize];
                if v < *slot {
                    *slot = v;
                }
            }
        }
    }

    /// Mirror of [`aggregate_out`](OverlayLayer::aggregate_out) on the
    /// target side: `out[h] = min over (b, w) of dist(h ⇝ b) + w`.
    pub(crate) fn aggregate_in(&self, seeds: &[(u32, u16)], out: &mut Vec<u32>) {
        out.clear();
        out.resize(self.hubs, u32::MAX);
        for &(b, w) in seeds {
            let (hs, ds) = self.in_label(b as usize);
            for (&h, &d) in hs.iter().zip(ds) {
                let v = d as u32 + w as u32;
                let slot = &mut out[h as usize];
                if v < *slot {
                    *slot = v;
                }
            }
        }
    }

    /// `min_h agg_out[h] + dist(h ⇝ v)` — the distance from an aggregated
    /// source set to overlay node `v`. `u32::MAX` when unreachable.
    pub(crate) fn dist_to(&self, agg_out: &[u32], v: u32) -> u32 {
        let (hs, ds) = self.in_label(v as usize);
        let mut best = u32::MAX;
        for (&h, &d) in hs.iter().zip(ds) {
            let a = agg_out[h as usize];
            if a != u32::MAX {
                best = best.min(a + d as u32);
            }
        }
        best
    }

    /// `min_h dist(v ⇝ h) + agg_in[h]` — the distance from overlay node
    /// `v` into an aggregated target set. `u32::MAX` when unreachable.
    #[cfg(test)]
    pub(crate) fn dist_from(&self, v: u32, agg_in: &[u32]) -> u32 {
        let (hs, ds) = self.out_label(v as usize);
        let mut best = u32::MAX;
        for (&h, &d) in hs.iter().zip(ds) {
            let a = agg_in[h as usize];
            if a != u32::MAX {
                best = best.min(d as u32 + a);
            }
        }
        best
    }

    /// `min_h agg_out[h] + agg_in[h]` — source-set to target-set distance.
    pub(crate) fn combine(agg_out: &[u32], agg_in: &[u32]) -> u32 {
        agg_out
            .iter()
            .zip(agg_in)
            .filter(|&(&a, &b)| a != u32::MAX && b != u32::MAX)
            .map(|(&a, &b)| a + b)
            .min()
            .unwrap_or(u32::MAX)
    }

    /// Estimated resident bytes.
    pub(crate) fn bytes(&self) -> usize {
        (self.out_hubs.len() + self.in_hubs.len()) * 6
            + (self.out_offsets.len() + self.in_offsets.len()) * 4
    }

    /// Total label entries, both directions.
    #[cfg(test)]
    pub(crate) fn entries(&self) -> usize {
        self.out_hubs.len() + self.in_hubs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_stops_between_sources() {
        // the flag is polled before every Dijkstra source, so a pre-set
        // flag aborts before any labeling work
        let edges: Vec<OverlayEdge> = (0..20u32).map(|i| (i, (i + 1) % 20, 1)).collect();
        let flag = std::sync::atomic::AtomicBool::new(true);
        assert!(OverlayLayer::build_with(20, &edges, Some(&flag)).is_none());
        flag.store(false, std::sync::atomic::Ordering::Relaxed);
        assert!(OverlayLayer::build_with(20, &edges, Some(&flag)).is_some());
    }

    /// Dijkstra ground truth over the same weighted edges.
    fn dijkstra_row(b: usize, edges: &[OverlayEdge], src: u32) -> Vec<u16> {
        let mut dist = vec![UNSET; b];
        let mut heap = BinaryHeap::new();
        dist[src as usize] = 0;
        heap.push(Reverse((0u16, src)));
        while let Some(Reverse((du, u))) = heap.pop() {
            if du > dist[u as usize] {
                continue;
            }
            for &(a, v, w) in edges {
                if a != u {
                    continue;
                }
                let nd = (du as u32 + w as u32).min(DIST_CAP as u32) as u16;
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist.iter()
            .map(|&d| if d == UNSET { INFINITY } else { d })
            .collect()
    }

    fn random_edges(b: usize, m: usize, seed: u64) -> Vec<OverlayEdge> {
        // tiny deterministic LCG; weights 1..=9
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        (0..m)
            .map(|_| {
                let u = (next() % b as u64) as u32;
                let v = (next() % b as u64) as u32;
                let w = (next() % 9 + 1) as u16;
                (u, v, w)
            })
            .filter(|&(u, v, _)| u != v)
            .collect()
    }

    #[test]
    fn labels_match_dijkstra() {
        for seed in [3u64, 17, 99] {
            let b = 40;
            let edges = random_edges(b, 140, seed);
            let layer = OverlayLayer::build(b, &edges);
            for u in 0..b as u32 {
                let truth = dijkstra_row(b, &edges, u);
                for v in 0..b as u32 {
                    assert_eq!(layer.dist(u, v), truth[v as usize], "{u}->{v} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn aggregates_match_point_probes() {
        let b = 30;
        let edges = random_edges(b, 100, 7);
        let layer = OverlayLayer::build(b, &edges);
        let seeds: Vec<(u32, u16)> = vec![(1, 0), (4, 3), (9, 1)];
        let mut agg_out = Vec::new();
        let mut agg_in = Vec::new();
        layer.aggregate_out(&seeds, &mut agg_out);
        layer.aggregate_in(&seeds, &mut agg_in);
        for v in 0..b as u32 {
            let want_to = seeds
                .iter()
                .map(|&(s, w)| {
                    let d = layer.dist(s, v);
                    if d == INFINITY {
                        u32::MAX
                    } else {
                        w as u32 + d as u32
                    }
                })
                .min()
                .unwrap();
            assert_eq!(layer.dist_to(&agg_out, v), want_to, "to {v}");
            let want_from = seeds
                .iter()
                .map(|&(t, w)| {
                    let d = layer.dist(v, t);
                    if d == INFINITY {
                        u32::MAX
                    } else {
                        d as u32 + w as u32
                    }
                })
                .min()
                .unwrap();
            assert_eq!(layer.dist_from(v, &agg_in), want_from, "from {v}");
        }
        // set-to-set: min over all (seed, seed) pairs
        let mut want = u32::MAX;
        for &(s, w) in &seeds {
            for &(t, w2) in &seeds {
                let d = layer.dist(s, t);
                if d != INFINITY {
                    want = want.min(w as u32 + d as u32 + w2 as u32);
                }
            }
        }
        assert_eq!(OverlayLayer::combine(&agg_out, &agg_in), want);
        assert!(layer.bytes() > 0);
        assert!(layer.entries() > 0);
        assert_eq!(layer.hubs(), b);
    }

    #[test]
    fn empty_overlay() {
        let layer = OverlayLayer::build(0, &[]);
        assert_eq!(layer.hubs(), 0);
        assert_eq!(layer.entries(), 0);
        assert_eq!(OverlayLayer::combine(&[], &[]), u32::MAX);
    }
}
