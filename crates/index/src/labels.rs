//! Pruned landmark (2-hop) distance labeling: [`HopLabels`].
//!
//! The dense per-color [`DistanceMatrix`](rpq_graph::DistanceMatrix) of §4
//! is the fastest RQ backend but costs O(|Σ|·|V|²) memory, which caps it at
//! a few thousand nodes. This module trades the matrix for *labels*: every
//! node `u` stores, per color layer,
//!
//! * `Lout(u)` — a set of `(hub, dist(u → hub))` entries, and
//! * `Lin(u)` — a set of `(hub, dist(hub → u))` entries,
//!
//! such that for every reachable pair `(u, v)` some shortest path `u ⇝ v`
//! passes through a hub present in both `Lout(u)` and `Lin(v)`. A distance
//! probe is then a merge of two short sorted lists:
//!
//! ```text
//! dist(u, v) = min { d(u → h) + d(h → v) : h ∈ Lout(u) ∩ Lin(v) }
//! ```
//!
//! Labels are built by **pruned BFS** in the style of Akiba, Iwata &
//! Yoshida (SIGMOD'13), adapted to directed, per-color layers: nodes are
//! ranked by (wildcard SCC size, degree) — members of a giant strongly
//! connected component cover the most shortest paths — and processed in
//! rank order; the BFS from landmark `r` prunes every node whose distance
//! is already covered by earlier (higher-ranked) hubs. On hub-heavy graphs
//! the prune fires almost immediately for late landmarks, which is what
//! keeps total label size near-linear in practice while the cover stays
//! **exact**: when every node is processed as a landmark (the default),
//! probes equal BFS ground truth bit-for-bit.
//!
//! One layer is built per concrete color plus one *wildcard* layer over the
//! union of all colors (the `_` of query regexes). The wildcard layer is
//! the densest; when a memory budget is configured and it is exceeded
//! while building the wildcard layer, the concrete layers are kept and
//! wildcard probes are simply reported as uncovered
//! ([`HopLabels::has_layer`]) so the planner can fall back to search for
//! wildcard queries only.

use crate::probe::DistProbe;
use rpq_graph::algo::condensation;
use rpq_graph::{Color, Graph, NodeId, INFINITY};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Distances saturate one below [`INFINITY`], mirroring
/// [`bfs_distances`](rpq_graph::algo::bfs_distances).
const DIST_CAP: u16 = u16::MAX - 1;

/// Unset marker inside the per-landmark scratch table.
const UNSET: u16 = u16::MAX;

/// Tuning knobs for [`HopLabels::build_with`].
#[derive(Debug, Clone)]
pub struct HopConfig {
    /// How many ranked landmarks to process per layer; `0` means *all*
    /// nodes, which is required for exact probes. A smaller count yields a
    /// partial labeling whose probes are **upper bounds** (sound "yes
    /// within k" answers, possibly missed reachability) — useful as a
    /// filter, not for exact serving ([`HopLabels::is_exact`]).
    pub landmarks: usize,
    /// Abort the build once the estimated index footprint exceeds this many
    /// bytes (`0` = unlimited). Exceeding the budget *inside the wildcard
    /// layer* keeps the finished concrete layers and drops only wildcard
    /// coverage.
    pub budget_bytes: usize,
    /// Build the wildcard (`_`) layer over the union of all colors.
    pub wildcard_layer: bool,
}

impl Default for HopConfig {
    fn default() -> Self {
        HopConfig {
            landmarks: 0,
            budget_bytes: 0,
            wildcard_layer: true,
        }
    }
}

/// Why a build did not produce a (full) index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HopBuildError {
    /// The estimated footprint exceeded [`HopConfig::budget_bytes`] while a
    /// concrete color layer was under construction.
    OverBudget {
        /// The configured budget.
        budget: usize,
        /// Estimated bytes at the moment the build gave up.
        reached: usize,
    },
    /// The cancellation flag handed to [`HopLabels::build_with`] was set
    /// (e.g. the graph version this build was for has been superseded).
    Cancelled,
    /// A [`HopLabels::repair`] would have re-run more landmarks than the
    /// caller's limit — the caller should fall back to a full rebuild,
    /// which amortizes better once most of the index is dirty anyway.
    RepairTooBroad {
        /// Landmarks whose pruned BFS trees touch the changed edges,
        /// summed across layers.
        invalidated: usize,
        /// The caller-supplied ceiling that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for HopBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HopBuildError::OverBudget { budget, reached } => {
                write!(f, "hop-label budget exceeded: {reached} > {budget} bytes")
            }
            HopBuildError::Cancelled => write!(f, "hop-label build cancelled"),
            HopBuildError::RepairTooBroad { invalidated, limit } => {
                write!(
                    f,
                    "hop-label repair would invalidate {invalidated} landmarks (limit {limit})"
                )
            }
        }
    }
}

impl std::error::Error for HopBuildError {}

/// One color layer: per-node `Lout`/`Lin` labels in CSR form (hubs stored
/// as *ranks*, ascending, so probes are sorted-merge joins) plus the
/// inverted `Lin` lists used by bounded neighborhood scans.
#[derive(Debug, Clone, Default)]
struct Layer {
    out_offsets: Vec<u32>,
    out_hubs: Vec<u32>,
    out_dists: Vec<u16>,
    in_offsets: Vec<u32>,
    in_hubs: Vec<u32>,
    in_dists: Vec<u16>,
    /// inverted `Lin`: for hub rank `h`, every `(node, dist(h → node))`
    inv_offsets: Vec<u32>,
    inv_nodes: Vec<u32>,
    inv_dists: Vec<u16>,
}

impl Layer {
    fn out_label(&self, v: usize) -> (&[u32], &[u16]) {
        let lo = self.out_offsets[v] as usize;
        let hi = self.out_offsets[v + 1] as usize;
        (&self.out_hubs[lo..hi], &self.out_dists[lo..hi])
    }

    fn in_label(&self, v: usize) -> (&[u32], &[u16]) {
        let lo = self.in_offsets[v] as usize;
        let hi = self.in_offsets[v + 1] as usize;
        (&self.in_hubs[lo..hi], &self.in_dists[lo..hi])
    }

    fn inv_list(&self, hub_rank: usize) -> (&[u32], &[u16]) {
        let lo = self.inv_offsets[hub_rank] as usize;
        let hi = self.inv_offsets[hub_rank + 1] as usize;
        (&self.inv_nodes[lo..hi], &self.inv_dists[lo..hi])
    }

    fn entries(&self) -> usize {
        self.out_hubs.len() + self.in_hubs.len()
    }

    fn bytes(&self) -> usize {
        bytes_for_entries(
            self.out_hubs.len(),
            self.in_hubs.len(),
            self.out_offsets.len(),
        )
    }
}

/// Label entries are `(u32 rank, u16 dist)`; `Lin` entries appear twice
/// (once inverted). Offset arrays add three `u32` per node per layer.
fn bytes_for_entries(out_entries: usize, in_entries: usize, offsets: usize) -> usize {
    (out_entries + 2 * in_entries) * 6 + 3 * offsets * 4
}

/// Aggregate build statistics, for logs and bench reports.
#[derive(Debug, Clone)]
pub struct HopStats {
    /// Nodes the index covers.
    pub nodes: usize,
    /// Concrete color layers built (the alphabet size).
    pub colors: usize,
    /// Whether the wildcard layer was built (vs. dropped on budget).
    pub wildcard: bool,
    /// Landmarks processed per layer.
    pub landmarks: usize,
    /// Strongly connected components of the wildcard graph (ordering
    /// signal: big SCCs breed good hubs).
    pub scc_count: usize,
    /// Total label entries across all layers and both directions.
    pub entries: usize,
    /// Estimated resident bytes of the whole index.
    pub bytes: usize,
}

impl fmt::Display for HopStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let layers = self.colors + usize::from(self.wildcard);
        let per_node = self.entries as f64 / (self.nodes.max(1) * 2 * layers.max(1)) as f64;
        write!(
            f,
            "{} nodes, {} color layers{}, {} sccs, {} entries (avg {:.1}/node/layer/dir), ~{} KiB",
            self.nodes,
            self.colors,
            if self.wildcard { " + wildcard" } else { "" },
            self.scc_count,
            self.entries,
            per_node,
            self.bytes / 1024
        )
    }
}

/// Pruned 2-hop distance labels: one layer per concrete color, plus an
/// optional wildcard layer. Implements [`DistProbe`], so RQ evaluation runs
/// unchanged against it (see `Rq::eval_with_dist` in `rpq-core`).
#[derive(Debug, Clone)]
pub struct HopLabels {
    n: usize,
    colors: usize,
    /// `layers[c]` for concrete color `c`; `layers[colors]` = wildcard
    /// (empty `Option` when dropped on budget or disabled).
    layers: Vec<Option<Layer>>,
    landmarks: usize,
    scc_count: usize,
    /// The frozen landmark ranking (`order[rank] = node`). Kept so
    /// [`HopLabels::repair`] can re-run individual landmarks under the
    /// *same* ranking the original build used — any fixed ranking yields an
    /// exact cover, so repairs never need to re-rank even when degrees or
    /// SCCs shift under updates.
    order: Vec<u32>,
}

impl HopLabels {
    /// Build exact labels with default configuration (all landmarks, no
    /// budget). Cannot fail.
    pub fn build(g: &Graph) -> Self {
        Self::build_with(g, &HopConfig::default(), None)
            .expect("unbudgeted, uncancelled build cannot fail")
    }

    /// Build labels under `config`, checking `cancel` between landmarks so
    /// a superseded build (newer graph version) stops wasting CPU.
    pub fn build_with(
        g: &Graph,
        config: &HopConfig,
        cancel: Option<&AtomicBool>,
    ) -> Result<Self, HopBuildError> {
        let n = g.node_count();
        let m = g.alphabet().len();
        let landmarks = if config.landmarks == 0 {
            n
        } else {
            config.landmarks.min(n)
        };

        let t0 = Instant::now();
        // Landmark order: wildcard SCC size first (nodes inside a giant
        // component lie on the most shortest paths), then total degree.
        let (comp_of, comps) = condensation(n, |v| {
            g.out_edges(NodeId(v as u32)).iter().map(|e| e.node.index())
        });
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&v| {
            let vi = v as usize;
            let scc = comps[comp_of[vi]].len();
            let deg = g.out_degree(NodeId(v)) + g.in_degree(NodeId(v));
            (std::cmp::Reverse(scc), std::cmp::Reverse(deg), v)
        });

        let tracer = rpq_trace::tracer();
        tracer.record_span(
            "index",
            "hop-rank",
            t0.elapsed(),
            &format!("nodes={n} sccs={}", comps.len()),
        );

        let mut builder = LayerBuilder::new(g, &order, landmarks);
        let mut layers: Vec<Option<Layer>> = Vec::with_capacity(m + 1);
        let mut bytes_so_far = 0usize;
        for c in 0..m {
            let tl = Instant::now();
            // a concrete layer over budget fails the whole build: typical
            // queries need every concrete color to be coverable
            let layer =
                builder.build_layer(Color(c as u8), config.budget_bytes, bytes_so_far, cancel)?;
            tracer.record_span(
                "index",
                "hop-layer",
                tl.elapsed(),
                &format!("color={c} bytes={}", layer.bytes()),
            );
            bytes_so_far += layer.bytes();
            layers.push(Some(layer));
        }
        if config.wildcard_layer {
            let tl = Instant::now();
            match builder.build_layer(
                rpq_graph::WILDCARD,
                config.budget_bytes,
                bytes_so_far,
                cancel,
            ) {
                Ok(layer) => {
                    tracer.record_span(
                        "index",
                        "hop-layer",
                        tl.elapsed(),
                        &format!("color=_ bytes={}", layer.bytes()),
                    );
                    layers.push(Some(layer));
                }
                // graceful degradation: keep concrete coverage, drop `_`
                Err(HopBuildError::OverBudget { .. }) => {
                    tracer.record_span(
                        "index",
                        "hop-layer",
                        tl.elapsed(),
                        "color=_ dropped: over budget",
                    );
                    layers.push(None);
                }
                Err(e) => return Err(e),
            }
        } else {
            layers.push(None);
        }

        Ok(HopLabels {
            n,
            colors: m,
            layers,
            landmarks,
            scc_count: comps.len(),
            order,
        })
    }

    /// Repair the labels in place of a full rebuild after `changes` were
    /// applied to the graph this index was built on, yielding `g`.
    ///
    /// An edge change `(u, v)` invalidates only the landmarks whose pruned
    /// BFS trees could have seen it: those that reached `u` or were reached
    /// by `v` in the *old* graph — decided exactly from the old labels
    /// themselves (for inserts the prefix up to the first new edge is an
    /// old-graph path; for deletes the broken path existed in the old
    /// graph; either way the landmark reached the changed tail). Entries of
    /// unaffected landmarks are carried verbatim — their distances cannot
    /// have changed and their pruning certificates transfer (a certificate
    /// hub that were affected would make the pruned landmark affected too,
    /// by reachability transitivity). Affected landmarks are stripped and
    /// their pruned BFS re-run in ascending rank order on the new graph
    /// against the mixed kept/repaired label set, under the **original**
    /// frozen ranking (any fixed ranking yields an exact cover, so no
    /// re-ranking is needed). The repaired index answers every probe
    /// identically to a from-scratch build — it may merely carry a few
    /// redundant entries where updates weakened old pruning decisions.
    ///
    /// `invalidation_limit` (`0` = unlimited) bounds the total landmark
    /// re-runs across layers; beyond it the call fails fast with
    /// [`HopBuildError::RepairTooBroad`] *before* doing any BFS work, so
    /// callers can cheaply decide "repair or rebuild". `budget_bytes`
    /// mirrors [`HopConfig::budget_bytes`]: a concrete layer over budget
    /// fails the repair, a wildcard layer over budget is dropped.
    ///
    /// # Panics
    ///
    /// If this index is not [`exact`](HopLabels::is_exact) (a partial
    /// labeling cannot decide affectedness), or if `g` changed the node
    /// set or alphabet (updates are edge-only).
    pub fn repair(
        &self,
        g: &Graph,
        changes: &[(NodeId, NodeId, Color)],
        budget_bytes: usize,
        invalidation_limit: usize,
        cancel: Option<&AtomicBool>,
    ) -> Result<HopRepair, HopBuildError> {
        assert!(
            self.is_exact(),
            "only exact hop labels can be repaired: partial labels cannot \
             decide which landmarks an edge change touches"
        );
        assert_eq!(g.node_count(), self.n, "updates must preserve the node set");
        assert_eq!(
            g.alphabet().len(),
            self.colors,
            "updates must preserve the alphabet"
        );

        // Phase 1: affected landmark set per layer, and the total up front
        // so the cost model can bail before any BFS runs.
        let t0 = Instant::now();
        let mut affected: Vec<Option<Vec<bool>>> = Vec::with_capacity(self.layers.len());
        let mut invalidated = 0usize;
        for (li, layer) in self.layers.iter().enumerate() {
            let Some(layer) = layer else {
                affected.push(None);
                continue;
            };
            let lc = self.layer_color(li);
            let relevant: Vec<(NodeId, NodeId)> = changes
                .iter()
                .filter(|&&(_, _, ec)| lc.admits(ec))
                .map(|&(u, v, _)| (u, v))
                .collect();
            if relevant.is_empty() {
                affected.push(Some(Vec::new()));
                continue;
            }
            let mut aff = vec![false; self.landmarks];
            invalidated += self.mark_affected(layer, &relevant, &mut aff);
            affected.push(Some(aff));
        }
        if invalidation_limit != 0 && invalidated > invalidation_limit {
            return Err(HopBuildError::RepairTooBroad {
                invalidated,
                limit: invalidation_limit,
            });
        }

        // Phase 2: per touched layer, strip the affected ranks and re-run
        // exactly those landmarks on the new graph.
        let t_invalidated = Instant::now();
        let mut builder = LayerBuilder::new(g, &self.order, self.landmarks);
        let mut layers: Vec<Option<Layer>> = Vec::with_capacity(self.layers.len());
        let mut bytes_so_far = 0usize;
        for (li, (layer, aff)) in self.layers.iter().zip(&affected).enumerate() {
            let (Some(old), Some(aff)) = (layer, aff) else {
                layers.push(None);
                continue;
            };
            if aff.iter().all(|&a| !a) {
                // untouched layer: carried forward verbatim
                bytes_so_far += old.bytes();
                layers.push(Some(old.clone()));
                continue;
            }
            match builder.repair_layer(
                self.layer_color(li),
                old,
                aff,
                budget_bytes,
                bytes_so_far,
                cancel,
            ) {
                Ok(layer) => {
                    bytes_so_far += layer.bytes();
                    layers.push(Some(layer));
                }
                // same degradation as build_with: wildcard over budget is
                // dropped, a concrete layer over budget fails the repair
                Err(HopBuildError::OverBudget { .. }) if li == self.colors => layers.push(None),
                Err(e) => return Err(e),
            }
        }

        let t_rebuilt = Instant::now();
        let phases = vec![
            ("invalidate", t_invalidated - t0),
            ("re-bfs", t_rebuilt - t_invalidated),
        ];
        let tracer = rpq_trace::tracer();
        if tracer.enabled() {
            tracer.record_span(
                "index",
                "hop-repair",
                t_rebuilt - t0,
                &format!("invalidated={invalidated}/{} landmarks", self.landmarks),
            );
        }
        Ok(HopRepair {
            labels: HopLabels {
                n: self.n,
                colors: self.colors,
                layers,
                landmarks: self.landmarks,
                scc_count: self.scc_count,
                order: self.order.clone(),
            },
            landmarks_invalidated: invalidated,
            phases,
        })
    }

    /// The color a layer index stands for (`colors` = wildcard).
    fn layer_color(&self, li: usize) -> Color {
        if li == self.colors {
            rpq_graph::WILDCARD
        } else {
            Color(li as u8)
        }
    }

    /// Mark every rank that reached a changed tail or was reached by a
    /// changed head (old graph, this layer); returns how many were newly
    /// marked. Reachability is read off the 2-hop cover itself: `r ⇝ u`
    /// iff `Lout(r)` and `Lin(u)` share a hub, so one bitmap of the
    /// endpoints' hubs plus one sweep over all landmark labels decides
    /// every rank in O(index size).
    fn mark_affected(
        &self,
        layer: &Layer,
        changes: &[(NodeId, NodeId)],
        affected: &mut [bool],
    ) -> usize {
        let mut fwd_mark = vec![false; self.landmarks];
        let mut bwd_mark = vec![false; self.landmarks];
        for &(u, v) in changes {
            let (ih, _) = layer.in_label(u.index());
            for &h in ih {
                fwd_mark[h as usize] = true;
            }
            let (oh, _) = layer.out_label(v.index());
            for &h in oh {
                bwd_mark[h as usize] = true;
            }
        }
        let mut marked = 0usize;
        for (rank, slot) in affected.iter_mut().enumerate() {
            let r = self.order[rank] as usize;
            let (oh, _) = layer.out_label(r);
            let hit = oh.iter().any(|&h| fwd_mark[h as usize]) || {
                let (ih, _) = layer.in_label(r);
                ih.iter().any(|&h| bwd_mark[h as usize])
            };
            if hit && !*slot {
                *slot = true;
                marked += 1;
            }
        }
        marked
    }

    /// Number of nodes the index covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// True when every node was processed as a landmark, i.e. probes are
    /// exact shortest distances. Partial builds answer upper bounds only.
    pub fn is_exact(&self) -> bool {
        self.landmarks >= self.n
    }

    /// Is `color` (possibly [`WILDCARD`](rpq_graph::WILDCARD)) answerable
    /// from this index? False only for a wildcard layer dropped on budget
    /// or disabled in the config.
    pub fn has_layer(&self, color: Color) -> bool {
        self.layer(color).is_some()
    }

    /// Estimated resident bytes of all layers.
    pub fn bytes(&self) -> usize {
        self.layers.iter().flatten().map(Layer::bytes).sum()
    }

    /// Build statistics for logs and bench reports.
    pub fn stats(&self) -> HopStats {
        HopStats {
            nodes: self.n,
            colors: self.colors,
            wildcard: self.layers[self.colors].is_some(),
            landmarks: self.landmarks,
            scc_count: self.scc_count,
            entries: self.layers.iter().flatten().map(Layer::entries).sum(),
            bytes: self.bytes(),
        }
    }

    fn layer(&self, color: Color) -> Option<&Layer> {
        let idx = if color.is_wildcard() {
            self.colors
        } else {
            debug_assert!((color.0 as usize) < self.colors, "color outside alphabet");
            color.0 as usize
        };
        self.layers[idx].as_ref()
    }

    fn layer_or_panic(&self, color: Color) -> &Layer {
        self.layer(color).unwrap_or_else(|| {
            panic!("hop-label layer for {color:?} was not built (check has_layer first)")
        })
    }

    /// Fold a **weighted set** of entry points into one per-hub minimum:
    /// for every hub rank `h`,
    /// `best[h] = min over (y, w) of dist(h → y) + w`, alongside the
    /// minimizing `y` and the runner-up over a **different** `y` (what
    /// makes diagonal exclusion in [`HopLabels::dist_into`] possible).
    /// With all weights 0 this is the plain "distance into a target set"
    /// aggregation of PQ refinement; with per-entry weights it is the
    /// composition step of the sharded backend, where `w` carries the
    /// distance already accumulated beyond this label space (overlay path
    /// plus far-side tail). Entries must name distinct nodes for the
    /// runner-up column to be meaningful.
    ///
    /// Cost: one pass over the entries' `Lin` labels — `O(Σ|Lin(y)|)`.
    pub fn in_aggregate(&self, color: Color, items: &[(NodeId, u16)]) -> InSetAgg {
        let layer = self.layer_or_panic(color);
        const NO_Y: u32 = u32::MAX;
        let mut agg = InSetAgg {
            color,
            best: vec![UNSET; self.landmarks],
            best_y: vec![NO_Y; self.landmarks],
            second: vec![UNSET; self.landmarks],
        };
        for &(y, w) in items {
            let (ih, id) = layer.in_label(y.index());
            for (&h, &d) in ih.iter().zip(id) {
                let h = h as usize;
                let d = (d as u32 + w as u32).min(DIST_CAP as u32) as u16;
                if d < agg.best[h] {
                    if agg.best_y[h] != y.0 {
                        agg.second[h] = agg.best[h];
                    }
                    agg.best[h] = d;
                    agg.best_y[h] = y.0;
                } else if agg.best_y[h] != y.0 && d < agg.second[h] {
                    agg.second[h] = d;
                }
            }
        }
        agg
    }

    /// Origin-tracked sibling of [`HopLabels::in_aggregate`]: every item
    /// carries a whole [`Top2`] (accumulated downstream cost plus its
    /// origin provenance), and the per-hub fold keeps top-2 over distinct
    /// origins instead of a plain minimum.
    pub(crate) fn in_aggregate2(&self, color: Color, items: &[(NodeId, Top2)]) -> InSetAgg2 {
        let layer = self.layer_or_panic(color);
        let mut hubs = vec![Top2::NONE; self.landmarks];
        for (y, t2) in items {
            let (ih, id) = layer.in_label(y.index());
            for (&h, &d) in ih.iter().zip(id) {
                hubs[h as usize].add_shifted(t2, d);
            }
        }
        InSetAgg2 { color, hubs }
    }

    /// One `Lout` scan against an origin-tracked aggregation: the
    /// [`Top2`] of `min over items of dist(from, y) + cost` — read `min`
    /// or [`Top2::excluding`] off the result.
    pub(crate) fn dist_into2(&self, from: NodeId, agg: &InSetAgg2) -> Top2 {
        let layer = self.layer_or_panic(agg.color);
        let (oh, od) = layer.out_label(from.index());
        let mut out = Top2::NONE;
        for (&h, &d1) in oh.iter().zip(od) {
            out.add_shifted(&agg.hubs[h as usize], d1);
        }
        out
    }

    /// The minimum weighted distance from `from` into an aggregated set:
    /// `min over (y, w) of dist(from, y) + w`, read off one `Lout` scan
    /// against the per-hub table of [`HopLabels::in_aggregate`]. With
    /// `exclude = Some(x)` entries whose minimum is owed to `x` fall back
    /// to the runner-up, yielding `min over y ≠ x` — the diagonal case of
    /// bulk refinement. Returns [`INFINITY`] when no entry is reachable;
    /// finite results saturate at the BFS cap like every other probe.
    pub fn dist_into(&self, from: NodeId, agg: &InSetAgg, exclude: Option<NodeId>) -> u16 {
        let layer = self.layer_or_panic(agg.color);
        let (oh, od) = layer.out_label(from.index());
        let mut best = u32::MAX;
        for (&h, &d1) in oh.iter().zip(od) {
            let h = h as usize;
            let d2 = match exclude {
                Some(x) if agg.best_y[h] == x.0 => agg.second[h],
                _ => agg.best[h],
            };
            if d2 != UNSET {
                best = best.min(d1 as u32 + d2 as u32);
            }
        }
        if best == u32::MAX {
            INFINITY
        } else {
            best.min(DIST_CAP as u32) as u16
        }
    }
}

/// A successful [`HopLabels::repair`]: the repaired index plus how much
/// work the repair actually did, for cost models and metrics.
#[derive(Debug, Clone)]
pub struct HopRepair {
    /// The repaired index — probe-identical to a from-scratch build.
    pub labels: HopLabels,
    /// Landmarks whose pruned BFS was re-run, summed across layers. Zero
    /// means every label was carried verbatim (the changes touched no
    /// landmark tree of any built layer).
    pub landmarks_invalidated: usize,
    /// Wall-clock phase breakdown: `invalidate` (affected-landmark
    /// marking across layers, before any BFS) and `re-bfs` (stripping and
    /// re-running the affected landmarks). The live-update layer bubbles
    /// these into its `IndexMaintenance::phases` accounting.
    pub phases: Vec<(&'static str, Duration)>,
}

/// Per-hub minima over a weighted entry set — see
/// [`HopLabels::in_aggregate`]. Opaque outside the crate; produced once
/// per (set, color) and consumed by any number of
/// [`HopLabels::dist_into`] scans.
#[derive(Debug, Clone)]
pub struct InSetAgg {
    color: Color,
    /// per hub rank: min over entries of `dist(h → y) + w` ([`UNSET`] = none).
    best: Vec<u16>,
    /// the node id of the entry achieving `best`.
    best_y: Vec<u32>,
    /// min over entries with a different node than `best_y`.
    second: Vec<u16>,
}

/// A distance pair `(min, runner-up over a distinct origin)` where the
/// *origin* is the target node a stitched path ultimately ends at.
///
/// This is the value the sharded backend's multi-level aggregation runs
/// on: the single-level runner-up column of [`InSetAgg`] cannot survive
/// composition (a per-hub minimum computed one level down has already
/// forgotten which target produced it, so a source that is itself a
/// target masks every witness behind its own zero-length path), but the
/// top-2-over-distinct-keys semiring composes exactly: merging two pairs
/// keeps the global minimum and the minimum over origins different from
/// its origin, at every level. The final probe reads `min` for ordinary
/// sources and [`Top2::excluding`] for diagonal ones.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Top2 {
    best: u16,
    best_o: u32,
    second: u16,
    second_o: u32,
}

impl Top2 {
    pub(crate) const NONE: Top2 = Top2 {
        best: UNSET,
        best_o: u32::MAX,
        second: UNSET,
        second_o: u32::MAX,
    };

    /// A single candidate: distance `v` to origin `o`.
    pub(crate) fn leaf(v: u16, o: u32) -> Top2 {
        Top2 {
            best: v,
            best_o: o,
            second: UNSET,
            second_o: u32::MAX,
        }
    }

    pub(crate) fn is_none(&self) -> bool {
        self.best == UNSET
    }

    /// Insert one `(value, origin)` candidate.
    fn add(&mut self, v: u16, o: u32) {
        if o == self.best_o {
            if v < self.best {
                self.best = v;
            }
        } else if v < self.best {
            self.second = self.best;
            self.second_o = self.best_o;
            self.best = v;
            self.best_o = o;
        } else if o == self.second_o {
            if v < self.second {
                self.second = v;
            }
        } else if v < self.second {
            self.second = v;
            self.second_o = o;
        }
    }

    /// Merge `other` with every value shifted by `w` (saturating at the
    /// BFS cap) — the "extend a stitched path by a segment of length `w`"
    /// step.
    pub(crate) fn add_shifted(&mut self, other: &Top2, w: u16) {
        if other.best != UNSET {
            self.add(
                (other.best as u32 + w as u32).min(DIST_CAP as u32) as u16,
                other.best_o,
            );
        }
        if other.second != UNSET {
            self.add(
                (other.second as u32 + w as u32).min(DIST_CAP as u32) as u16,
                other.second_o,
            );
        }
    }

    /// The minimum over all origins ([`INFINITY`]-valued `UNSET` = none).
    pub(crate) fn min(&self) -> u16 {
        if self.best == UNSET {
            INFINITY
        } else {
            self.best
        }
    }

    /// The minimum over origins other than `x`.
    pub(crate) fn excluding(&self, x: u32) -> u16 {
        let v = if self.best_o == x {
            self.second
        } else {
            self.best
        };
        if v == UNSET {
            INFINITY
        } else {
            v
        }
    }
}

/// Per-hub [`Top2`] aggregation — the origin-tracked sibling of
/// [`InSetAgg`], used by the sharded backend's stitched bulk refinement.
#[derive(Debug, Clone)]
pub(crate) struct InSetAgg2 {
    color: Color,
    hubs: Vec<Top2>,
}

impl DistProbe for HopLabels {
    fn node_count(&self) -> usize {
        self.n
    }

    fn dist(&self, from: NodeId, to: NodeId, color: Color) -> u16 {
        if from == to {
            return 0;
        }
        let layer = self.layer_or_panic(color);
        let (oh, od) = layer.out_label(from.index());
        let (ih, id) = layer.in_label(to.index());
        // merge-join on hub rank (both sides ascending)
        let mut best = u32::MAX;
        let (mut i, mut j) = (0usize, 0usize);
        while i < oh.len() && j < ih.len() {
            match oh[i].cmp(&ih[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let sum = od[i] as u32 + id[j] as u32;
                    best = best.min(sum);
                    i += 1;
                    j += 1;
                }
            }
        }
        if best == u32::MAX {
            INFINITY
        } else {
            best.min(DIST_CAP as u32) as u16
        }
    }

    fn for_each_within(&self, from: NodeId, color: Color, max: u16, f: &mut dyn FnMut(NodeId)) {
        let layer = self.layer_or_panic(color);
        let (oh, od) = layer.out_label(from.index());
        for (&h, &d1) in oh.iter().zip(od) {
            if d1 > max {
                continue;
            }
            let rem = max - d1;
            let (nodes, dists) = layer.inv_list(h as usize);
            for (&z, &d2) in nodes.iter().zip(dists) {
                if d2 <= rem && z != from.0 {
                    f(NodeId(z));
                }
            }
        }
    }

    /// Target-side hub aggregation: fold every target's `Lin` into a
    /// per-hub minimum (`best_in[h] = min_y d(h → y)`, with its
    /// minimizing target `best_y[h]`) *and* the runner-up over a
    /// **different** target (`second_in[h]`), then answer each source
    /// with a single `Lout` scan against those tables — two passes over
    /// labels, no per-pair hub merges (with sets like the all-of-V match
    /// sets normalization creates for dummy nodes, anything pairwise
    /// here is quadratic in `|V|`).
    ///
    /// The runner-up column is what keeps the aggregation lossless for a
    /// source `x` that is itself a target: at any hub whose minimum is
    /// achieved by `x` (in particular `x`'s own hub, where the empty
    /// path contributes 0), `second_in` restores the cheapest distance
    /// to a *different* target, so `best_excl = min_{y ≠ x} dist(x, y)`
    /// falls out of the same scan. Target membership is tracked with an
    /// explicit mask (not inferred from a 0-sum, which a partial build
    /// may never produce), and a source in the target set additionally
    /// runs [`DistProbe::has_cycle_within`] — a graph edge scan,
    /// independent of label completeness — for the cycle witness.
    fn sources_reaching_within(
        &self,
        g: &Graph,
        sources: &[NodeId],
        targets: &[NodeId],
        color: Color,
        max_len: Option<u32>,
    ) -> Vec<bool> {
        let budget = max_len.unwrap_or(u32::MAX);
        let items: Vec<(NodeId, u16)> = targets.iter().map(|&y| (y, 0)).collect();
        let agg = self.in_aggregate(color, &items);
        let mut is_target = vec![false; self.n];
        for &y in targets {
            is_target[y.index()] = true;
        }
        sources
            .iter()
            .map(|&x| {
                if is_target[x.index()] {
                    // nonempty-path diagonal: a cycle back to x, or a
                    // path to a target other than x
                    if self.has_cycle_within(g, x, color, max_len) {
                        return true;
                    }
                    let d = self.dist_into(x, &agg, Some(x));
                    d != INFINITY && (d as u32) <= budget
                } else {
                    let d = self.dist_into(x, &agg, None);
                    d != INFINITY && (d as u32) <= budget
                }
            })
            .collect()
    }
}

/// Shared per-build scratch: reused across layers so one build allocates
/// its working set once.
struct LayerBuilder<'a> {
    g: &'a Graph,
    order: &'a [u32],
    landmarks: usize,
    /// scratch: landmark's own label distances, indexed by hub rank
    tmp: Vec<u16>,
    /// scratch: BFS distances, indexed by node
    dist: Vec<u16>,
    touched: Vec<u32>,
    queue: VecDeque<NodeId>,
}

impl<'a> LayerBuilder<'a> {
    fn new(g: &'a Graph, order: &'a [u32], landmarks: usize) -> Self {
        let n = g.node_count();
        LayerBuilder {
            g,
            order,
            landmarks,
            tmp: vec![UNSET; n],
            dist: vec![UNSET; n],
            touched: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    fn build_layer(
        &mut self,
        color: Color,
        budget: usize,
        bytes_before: usize,
        cancel: Option<&AtomicBool>,
    ) -> Result<Layer, HopBuildError> {
        let n = self.g.node_count();
        let mut lin: Vec<Vec<(u32, u16)>> = vec![Vec::new(); n];
        let mut lout: Vec<Vec<(u32, u16)>> = vec![Vec::new(); n];
        let mut out_entries = 0usize;
        let mut in_entries = 0usize;

        for rank in 0..self.landmarks {
            if let Some(flag) = cancel {
                if flag.load(Ordering::Relaxed) {
                    return Err(HopBuildError::Cancelled);
                }
            }
            let r = NodeId(self.order[rank]);

            // forward pruned BFS: covers r → u through hubs of Lout(r)
            // (scratch) joined with Lin(u); survivors append (rank, d) to
            // Lin(u) — the prune side and the write side are the same side
            self.seed_tmp(&lout[r.index()], rank);
            in_entries += self.pruned_bfs(r, rank, color, true, &mut lin);
            self.clear_tmp(&lout[r.index()], rank);

            // backward pruned BFS: covers u → r, writes Lout(u)
            self.seed_tmp(&lin[r.index()], rank);
            out_entries += self.pruned_bfs(r, rank, color, false, &mut lout);
            self.clear_tmp(&lin[r.index()], rank);

            if budget != 0 {
                let so_far = bytes_before + bytes_for_entries(out_entries, in_entries, n + 1);
                if so_far > budget {
                    return Err(HopBuildError::OverBudget {
                        budget,
                        reached: so_far,
                    });
                }
            }
        }

        Ok(Self::freeze(n, self.landmarks, lin, lout))
    }

    /// Thaw `old` into mutable per-node lists *minus* every entry owned by
    /// an affected landmark, then re-run exactly the affected landmarks
    /// (ascending rank) against the mixed kept/repaired label set — the
    /// splice step of [`HopLabels::repair`]. Kept entries stay in ascending
    /// rank order through the thaw; re-run appends land at the tail, so
    /// touched lists are re-sorted before freezing back to CSR (which also
    /// rebuilds the inverted lists wholesale).
    fn repair_layer(
        &mut self,
        color: Color,
        old: &Layer,
        affected: &[bool],
        budget: usize,
        bytes_before: usize,
        cancel: Option<&AtomicBool>,
    ) -> Result<Layer, HopBuildError> {
        let n = self.g.node_count();
        let thaw = |label: (&[u32], &[u16])| -> Vec<(u32, u16)> {
            label
                .0
                .iter()
                .zip(label.1)
                .filter(|&(&h, _)| !affected[h as usize])
                .map(|(&h, &d)| (h, d))
                .collect()
        };
        let mut lin: Vec<Vec<(u32, u16)>> = Vec::with_capacity(n);
        let mut lout: Vec<Vec<(u32, u16)>> = Vec::with_capacity(n);
        let mut in_entries = 0usize;
        let mut out_entries = 0usize;
        for v in 0..n {
            let l = thaw(old.in_label(v));
            in_entries += l.len();
            lin.push(l);
            let l = thaw(old.out_label(v));
            out_entries += l.len();
            lout.push(l);
        }

        for (rank, &hit) in affected.iter().enumerate().take(self.landmarks) {
            if !hit {
                continue;
            }
            if let Some(flag) = cancel {
                if flag.load(Ordering::Relaxed) {
                    return Err(HopBuildError::Cancelled);
                }
            }
            let r = NodeId(self.order[rank]);
            self.seed_tmp(&lout[r.index()], rank);
            in_entries += self.pruned_bfs(r, rank, color, true, &mut lin);
            self.clear_tmp(&lout[r.index()], rank);
            self.seed_tmp(&lin[r.index()], rank);
            out_entries += self.pruned_bfs(r, rank, color, false, &mut lout);
            self.clear_tmp(&lin[r.index()], rank);

            if budget != 0 {
                let so_far = bytes_before + bytes_for_entries(out_entries, in_entries, n + 1);
                if so_far > budget {
                    return Err(HopBuildError::OverBudget {
                        budget,
                        reached: so_far,
                    });
                }
            }
        }

        for l in lin.iter_mut().chain(lout.iter_mut()) {
            if l.windows(2).any(|w| w[0].0 > w[1].0) {
                l.sort_unstable_by_key(|&(h, _)| h);
            }
        }
        Ok(Self::freeze(n, self.landmarks, lin, lout))
    }

    /// Seed the scratch table from `r`'s opposite-direction label. Only
    /// ranks **above** the current landmark participate in pruning — in a
    /// from-scratch build every entry already satisfies `h < rank`, but a
    /// repair re-runs a landmark against a label set that retains entries
    /// of *lower*-ranked (later) hubs, which must not prune it.
    fn seed_tmp(&mut self, label: &[(u32, u16)], rank: usize) {
        for &(h, d) in label {
            if (h as usize) < rank {
                self.tmp[h as usize] = d;
            }
        }
        self.tmp[rank] = 0;
    }

    fn clear_tmp(&mut self, label: &[(u32, u16)], rank: usize) {
        for &(h, _) in label {
            if (h as usize) < rank {
                self.tmp[h as usize] = UNSET;
            }
        }
        self.tmp[rank] = UNSET;
    }

    /// One pruned BFS from `r` (forward over out-edges when `forward`,
    /// else backward over in-edges). A visited node is *pruned* when the
    /// scratch `tmp` (seeded from `r`'s opposite-direction label) joined
    /// with `side[u]` already covers the BFS distance — pruned nodes are
    /// neither labeled nor expanded. Survivors append `(rank, d)` to
    /// `side[u]`. Returns the number of labels added.
    fn pruned_bfs(
        &mut self,
        r: NodeId,
        rank: usize,
        color: Color,
        forward: bool,
        side: &mut [Vec<(u32, u16)>],
    ) -> usize {
        let g = self.g;
        debug_assert!(self.queue.is_empty());
        self.dist[r.index()] = 0;
        self.touched.push(r.0);
        self.queue.push_back(r);
        let mut added = 0usize;
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            // is (r ⇝ u) already covered by higher-ranked hubs? forward
            // covers r → u via hubs h: d(r→h) (tmp, from Lout(r)) +
            // d(h→u) (Lin(u) = the side being written); backward is the
            // mirror image
            let mut best = u32::MAX;
            for &(h, dh) in side[u.index()].iter() {
                // `h < rank` mirrors `seed_tmp`: during a repair the side
                // being written still holds entries of lower-ranked hubs,
                // which the canonical construction must ignore
                if (h as usize) < rank {
                    let t = self.tmp[h as usize];
                    if t != UNSET {
                        best = best.min(t as u32 + dh as u32);
                    }
                }
            }
            if best <= du as u32 {
                continue;
            }
            side[u.index()].push((rank as u32, du));
            added += 1;
            let next = du.saturating_add(1).min(DIST_CAP);
            let adj = if forward {
                g.out_edges(u)
            } else {
                g.in_edges(u)
            };
            for e in adj {
                if color.admits(e.color) && self.dist[e.node.index()] == UNSET {
                    self.dist[e.node.index()] = next;
                    self.touched.push(e.node.0);
                    self.queue.push_back(e.node);
                }
            }
        }
        for &t in &self.touched {
            self.dist[t as usize] = UNSET;
        }
        self.touched.clear();
        added
    }

    fn freeze(
        n: usize,
        landmarks: usize,
        lin: Vec<Vec<(u32, u16)>>,
        lout: Vec<Vec<(u32, u16)>>,
    ) -> Layer {
        let mut layer = Layer::default();
        let pack = |labels: &[Vec<(u32, u16)>],
                    offsets: &mut Vec<u32>,
                    hubs: &mut Vec<u32>,
                    dists: &mut Vec<u16>| {
            offsets.reserve(n + 1);
            offsets.push(0);
            for l in labels {
                for &(h, d) in l {
                    hubs.push(h);
                    dists.push(d);
                }
                offsets.push(hubs.len() as u32);
            }
        };
        pack(
            &lout,
            &mut layer.out_offsets,
            &mut layer.out_hubs,
            &mut layer.out_dists,
        );
        pack(
            &lin,
            &mut layer.in_offsets,
            &mut layer.in_hubs,
            &mut layer.in_dists,
        );

        // invert Lin by hub rank (counting sort: labels are already grouped
        // per node, we regroup per hub)
        let mut counts = vec![0u32; landmarks + 1];
        for l in &lin {
            for &(h, _) in l {
                counts[h as usize + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        layer.inv_offsets = counts.clone();
        let total = *counts.last().unwrap_or(&0) as usize;
        layer.inv_nodes = vec![0; total];
        layer.inv_dists = vec![0; total];
        let mut cursor = counts;
        for (v, l) in lin.iter().enumerate() {
            for &(h, d) in l {
                let slot = cursor[h as usize] as usize;
                layer.inv_nodes[slot] = v as u32;
                layer.inv_dists[slot] = d;
                cursor[h as usize] += 1;
            }
        }
        layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::gen::{essembly, synthetic};
    use rpq_graph::{DistanceMatrix, GraphBuilder, WILDCARD};

    fn all_colors(g: &Graph) -> Vec<Color> {
        let mut cs: Vec<Color> = g.alphabet().colors().collect();
        cs.push(WILDCARD);
        cs
    }

    fn assert_parity(g: &Graph) {
        let m = DistanceMatrix::build(g);
        let h = HopLabels::build(g);
        assert!(h.is_exact());
        for c in all_colors(g) {
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        DistProbe::dist(&h, u, v, c),
                        m.dist(u, v, c),
                        "dist({u:?},{v:?},{c:?})"
                    );
                }
            }
        }
    }

    fn lcg(s: &mut u64) -> u64 {
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *s >> 33
    }

    /// Apply `count` pseudo-random edge flips to `g`, returning the new
    /// graph and the effective change list (repair's input contract).
    fn random_mutation_round(
        g: &Graph,
        count: usize,
        seed: u64,
    ) -> (Graph, Vec<(NodeId, NodeId, Color)>) {
        let n = g.node_count() as u64;
        let m = g.alphabet().len() as u64;
        let mut b = GraphBuilder::from_graph(g);
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut eff = Vec::new();
        for _ in 0..count {
            let u = NodeId((lcg(&mut s) % n) as u32);
            let v = NodeId((lcg(&mut s) % n) as u32);
            let c = Color((lcg(&mut s) % m) as u8);
            let applied = match lcg(&mut s) % 2 {
                0 => b.insert_edge(u, v, c) || b.remove_edge(u, v, c),
                _ => b.remove_edge(u, v, c) || b.insert_edge(u, v, c),
            };
            if applied {
                eff.push((u, v, c));
            }
        }
        (b.build(), eff)
    }

    fn assert_probe_parity(g: &Graph, h: &HopLabels) {
        let m = DistanceMatrix::build(g);
        for c in all_colors(g) {
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        DistProbe::dist(h, u, v, c),
                        m.dist(u, v, c),
                        "dist({u:?},{v:?},{c:?})"
                    );
                }
                let mut want = vec![false; g.node_count()];
                m.for_each_within(u, c, 3, &mut |z| want[z.index()] = true);
                let mut got = vec![false; g.node_count()];
                h.for_each_within(u, c, 3, &mut |z| got[z.index()] = true);
                assert_eq!(got, want, "scan from {u:?} color {c:?}");
            }
        }
    }

    #[test]
    fn essembly_parity() {
        assert_parity(&essembly());
    }

    #[test]
    fn repair_matches_rebuild_after_updates() {
        for seed in [2u64, 11, 37] {
            let g = synthetic(40, 140, 2, 3, seed);
            let h = HopLabels::build(&g);
            let (g2, eff) = random_mutation_round(&g, 12, seed ^ 0xBEEF);
            assert!(!eff.is_empty());
            let repaired = h.repair(&g2, &eff, 0, 0, None).unwrap();
            assert!(repaired.landmarks_invalidated > 0);
            assert!(repaired.labels.is_exact());
            assert_probe_parity(&g2, &repaired.labels);
        }
    }

    #[test]
    fn chained_repairs_stay_exact() {
        let mut g = synthetic(30, 90, 2, 2, 7);
        let mut h = HopLabels::build(&g);
        for round in 0..4u64 {
            let (g2, eff) = random_mutation_round(&g, 6, 101 + round);
            h = h.repair(&g2, &eff, 0, 0, None).unwrap().labels;
            g = g2;
        }
        assert_probe_parity(&g, &h);
    }

    #[test]
    fn repair_with_no_changes_carries_everything() {
        let g = synthetic(25, 70, 2, 2, 3);
        let h = HopLabels::build(&g);
        let r = h.repair(&g, &[], 0, 0, None).unwrap();
        assert_eq!(r.landmarks_invalidated, 0);
        assert_probe_parity(&g, &r.labels);
    }

    #[test]
    fn repair_too_broad_bails_before_work() {
        let g = synthetic(40, 200, 2, 2, 9);
        let h = HopLabels::build(&g);
        let (g2, eff) = random_mutation_round(&g, 10, 0xC0FFEE);
        match h.repair(&g2, &eff, 0, 1, None) {
            Err(HopBuildError::RepairTooBroad { invalidated, limit }) => {
                assert!(invalidated > 1);
                assert_eq!(limit, 1);
            }
            other => panic!("expected RepairTooBroad, got {other:?}"),
        }
    }

    #[test]
    fn repair_cancel_aborts() {
        let g = synthetic(40, 140, 2, 2, 4);
        let h = HopLabels::build(&g);
        let (g2, eff) = random_mutation_round(&g, 8, 0xDEAD);
        let flag = AtomicBool::new(true);
        assert_eq!(
            h.repair(&g2, &eff, 0, 0, Some(&flag)).unwrap_err(),
            HopBuildError::Cancelled
        );
    }

    #[test]
    fn synthetic_parity() {
        for seed in [1u64, 9, 23] {
            assert_parity(&synthetic(40, 140, 2, 3, seed));
        }
    }

    #[test]
    fn scan_matches_matrix_row() {
        let g = synthetic(60, 240, 2, 3, 5);
        let m = DistanceMatrix::build(&g);
        let h = HopLabels::build(&g);
        for c in all_colors(&g) {
            for u in g.nodes() {
                for max in [1u16, 3, DIST_CAP] {
                    let mut want = vec![false; g.node_count()];
                    DistProbe::for_each_within(&m, u, c, max, &mut |z| want[z.index()] = true);
                    let mut got = vec![false; g.node_count()];
                    h.for_each_within(u, c, max, &mut |z| got[z.index()] = true);
                    assert_eq!(got, want, "scan from {u:?} color {c:?} max {max}");
                }
            }
        }
    }

    #[test]
    fn cycle_and_reaches_semantics() {
        let g = essembly();
        let m = DistanceMatrix::build(&g);
        let h = HopLabels::build(&g);
        for c in all_colors(&g) {
            for u in g.nodes() {
                for v in g.nodes() {
                    for k in [None, Some(0u32), Some(1), Some(2), Some(5)] {
                        assert_eq!(
                            h.reaches_within(&g, u, v, c, k),
                            m.reaches_within(&g, u, v, c, k),
                            "reaches {u:?}->{v:?} {c:?} within {k:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partial_build_is_sound_upper_bound() {
        let g = synthetic(50, 180, 2, 3, 3);
        let m = DistanceMatrix::build(&g);
        let cfg = HopConfig {
            landmarks: 12,
            ..HopConfig::default()
        };
        let h = HopLabels::build_with(&g, &cfg, None).unwrap();
        assert!(!h.is_exact());
        for u in g.nodes() {
            for v in g.nodes() {
                let est = DistProbe::dist(&h, u, v, WILDCARD);
                let truth = m.dist(u, v, WILDCARD);
                // an upper bound: a finite estimate implies real
                // reachability at no smaller true distance
                if est != INFINITY {
                    assert!(truth <= est, "{u:?}->{v:?}: truth {truth} > est {est}");
                }
                if u == v {
                    assert_eq!(est, 0);
                }
            }
        }
    }

    #[test]
    fn budget_fails_concrete_but_degrades_wildcard() {
        let g = synthetic(200, 800, 2, 3, 8);
        // 1 byte: even the first concrete layer cannot fit
        let tiny = HopConfig {
            budget_bytes: 1,
            ..HopConfig::default()
        };
        match HopLabels::build_with(&g, &tiny, None) {
            Err(HopBuildError::OverBudget { budget: 1, .. }) => {}
            other => panic!("expected OverBudget, got {other:?}"),
        }
        // a budget that fits the sparse concrete layers but not the dense
        // wildcard layer: concrete probes stay answerable
        let full = HopLabels::build(&g);
        let concrete_bytes: usize =
            full.bytes() - full.layers[full.colors].as_ref().unwrap().bytes();
        let mid = HopConfig {
            budget_bytes: concrete_bytes + bytes_for_entries(2, 2, g.node_count() + 1),
            ..HopConfig::default()
        };
        let h = HopLabels::build_with(&g, &mid, None).expect("concrete layers fit");
        assert!(!h.has_layer(WILDCARD), "wildcard layer must be dropped");
        for c in g.alphabet().colors() {
            assert!(h.has_layer(c));
        }
        assert!(!h.stats().wildcard);
        // concrete probes still exact
        let m = DistanceMatrix::build(&g);
        for u in g.nodes().take(40) {
            for v in g.nodes().take(40) {
                let c = Color(0);
                assert_eq!(DistProbe::dist(&h, u, v, c), m.dist(u, v, c));
            }
        }
    }

    #[test]
    fn bulk_sources_reaching_matches_pairwise() {
        // the hub-aggregated bulk path must agree with the default pairwise
        // probes on every subset shape — disjoint, overlapping, identical,
        // strided (targets that are themselves high-rank hubs exercise the
        // runner-up column: a hub inside the target set must not mask the
        // distances through it) — and saturating bounds
        for seed in [11u64, 29, 77] {
            let g = synthetic(60, 240, 2, 3, seed);
            let m = DistanceMatrix::build(&g);
            let h = HopLabels::build(&g);
            let nodes: Vec<NodeId> = g.nodes().collect();
            let every_2nd: Vec<NodeId> = nodes.iter().copied().step_by(2).collect();
            let every_3rd: Vec<NodeId> = nodes.iter().copied().step_by(3).collect();
            let subsets: [(&[NodeId], &[NodeId]); 6] = [
                (&nodes[0..20], &nodes[30..50]),
                (&nodes[10..40], &nodes[20..30]), // overlapping: diagonal cases
                (&nodes[0..60], &nodes[0..60]),   // identical sets
                (&nodes[5..6], &nodes[5..6]),     // single node vs itself
                (&every_2nd, &every_3rd),         // strided, partial overlap
                (&nodes[0..60], &every_3rd),      // all sources, hubby targets
            ];
            for c in all_colors(&g) {
                for (sources, targets) in subsets {
                    for k in [None, Some(0u32), Some(1), Some(2), Some(7)] {
                        let got = h.sources_reaching_within(&g, sources, targets, c, k);
                        let want = m.sources_reaching_within(&g, sources, targets, c, k);
                        assert_eq!(got, want, "bulk({c:?}, within {k:?}, seed {seed})");
                    }
                }
            }
        }
    }

    #[test]
    fn bulk_diagonal_cycle_found_under_partial_labeling() {
        // a self-loop witness is a graph-edge fact, independent of label
        // completeness: even a partial (non-exact) labeling must report a
        // source that is its own only target when it carries a self-loop
        let mut b = GraphBuilder::new();
        let nodes: Vec<NodeId> = (0..30).map(|i| b.add_node(&format!("n{i}"), [])).collect();
        let r = b.color("r");
        for i in 0..29 {
            b.add_edge(nodes[i], nodes[i + 1], r);
        }
        let looper = nodes[29]; // lowest-degree tail: never an early landmark
        b.add_edge(looper, looper, r);
        let g = b.build();
        let cfg = HopConfig {
            landmarks: 3,
            ..HopConfig::default()
        };
        let h = HopLabels::build_with(&g, &cfg, None).unwrap();
        assert!(!h.is_exact());
        let got = h.sources_reaching_within(&g, &[looper], &[looper], r, Some(1));
        assert_eq!(got, vec![true], "self-loop must be found without labels");
        let m = DistanceMatrix::build(&g);
        assert_eq!(
            got,
            m.sources_reaching_within(&g, &[looper], &[looper], r, Some(1))
        );
    }

    #[test]
    fn cancel_aborts() {
        let g = synthetic(100, 300, 1, 2, 4);
        let flag = AtomicBool::new(true);
        assert!(matches!(
            HopLabels::build_with(&g, &HopConfig::default(), Some(&flag)),
            Err(HopBuildError::Cancelled)
        ));
    }

    #[test]
    fn stats_and_bytes_report() {
        let g = synthetic(80, 320, 2, 4, 6);
        let h = HopLabels::build(&g);
        let s = h.stats();
        assert_eq!(s.nodes, 80);
        assert_eq!(s.colors, 4);
        assert!(s.wildcard);
        assert_eq!(s.landmarks, 80);
        assert!(s.entries > 0);
        assert_eq!(s.bytes, h.bytes());
        assert!(s.scc_count >= 1 && s.scc_count <= 80);
        let line = s.to_string();
        assert!(line.contains("80 nodes"), "{line}");
    }

    #[test]
    fn self_loop_and_disconnected() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        let z = b.add_node("z", []);
        let r = b.color("r");
        b.add_edge(x, x, r);
        b.add_edge(x, y, r);
        let g = b.build();
        let h = HopLabels::build(&g);
        assert_eq!(DistProbe::dist(&h, x, y, r), 1);
        assert_eq!(DistProbe::dist(&h, x, z, r), INFINITY);
        assert_eq!(DistProbe::dist(&h, z, z, r), 0);
        assert!(h.reaches_within(&g, x, x, r, Some(1)), "self loop");
        assert!(!h.reaches_within(&g, y, y, r, None));
    }
}
