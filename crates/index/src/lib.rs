//! # rpq-index — scalable reachability-label index
//!
//! The paper's fastest RQ strategy is the dense per-color
//! [`DistanceMatrix`](rpq_graph::DistanceMatrix) (§4), whose O(|Σ|·|V|²)
//! footprint caps it at a few thousand nodes; above that the engine
//! degrades to per-query search. This crate closes the gap between the two
//! extremes with **pruned landmark (2-hop) distance labeling**
//! ([`HopLabels`]): per-color forward/backward label sets built by pruned
//! BFS from SCC/degree-ranked landmarks, answering the atom probes of the
//! regex class F — *"is there a path of color `c` and length ≤ k?"* — as a
//! merge of two short sorted lists, with memory proportional to total
//! label size instead of |V|².
//!
//! The [`DistProbe`] trait is the seam: both the dense matrix and the hop
//! labels implement it, so RQ evaluation in `rpq-core`
//! (`Rq::eval_with_dist`) **and PQ evaluation** (the `ReachEngine` layer —
//! `ProbeReach<P: DistProbe>` backs `JoinMatch`/`SplitMatch`) are
//! backend-generic and the engine's planner is free to pick
//!
//! * the **matrix** under its node limit (fastest probes),
//! * **hop labels** above it while the label budget holds
//!   (`Plan::RqHop`, `Plan::PqJoinHop`, `Plan::PqSplitHop` in
//!   `rpq-engine`), and
//! * per-query search (biBFS / memoized BFS for RQs, the LRU-cached
//!   product search for PQs) as the final fallback.
//!
//! Beyond point probes, [`DistProbe::sources_reaching_within`] is the bulk
//! primitive PQ refinement runs on: [`HopLabels`] answers a whole
//! `Join`-step (every source against a target set) with one target-side
//! hub aggregation plus one `Lout` scan per source.
//!
//! ## The sharded backend and its overlay
//!
//! One whole-graph labeling is still one build: its working set must fit
//! one machine (or one budget). [`ShardedLabels`] removes that cap by
//! re-founding the index on a shard topology
//! ([`ShardedGraph`](rpq_graph::ShardedGraph)): one independent
//! [`HopLabels`] **per shard** — built in parallel, each under the
//! per-shard byte budget — plus exact 2-hop labels over the **boundary
//! overlay**, the weighted digraph whose nodes are the endpoints of cut
//! edges and whose edges are (a) the cut edges themselves at weight 1 and
//! (b) a closure edge per intra-shard boundary pair, weighted by that
//! shard's local distance, one layer per color and one for the wildcard.
//!
//! *Exactness.* A global path either stays inside one shard — then it
//! appears verbatim in that shard's local graph — or it uses ≥ 1 cut
//! edge, in which case it splits at the first cut edge's source `b₁` and
//! the last cut edge's target `b₂`: the prefix and suffix are intra-shard
//! (no cut edge), and the middle alternates cut edges with intra-shard
//! boundary-to-boundary segments, each dominated by its closure edge. So
//! `dist(u,v) = min(local(u,v) [same shard],
//! min_{b₁,b₂} local(u,b₁) + overlay(b₁,b₂) + local(b₂,v))`, every term
//! realizable by a real path — probes are bit-identical to a whole-graph
//! index, which the parity suite asserts against both the matrix and
//! unsharded labels. The stitched minimum is evaluated by hub
//! aggregation, never pairwise, so bulk refinement stays label-linear;
//! the diagonal (a source that is itself a target) survives the
//! multi-level fold through an origin-tracked (min, runner-up) pair.
//!
//! ## Example
//!
//! ```
//! use rpq_graph::gen::synthetic;
//! use rpq_graph::{DistanceMatrix, WILDCARD};
//! use rpq_index::{DistProbe, HopLabels};
//!
//! let g = synthetic(300, 900, 2, 3, 7);
//! let labels = HopLabels::build(&g);
//! let matrix = DistanceMatrix::build(&g);
//! // exact labels agree with the dense matrix on every probe
//! for u in g.nodes().take(10) {
//!     for v in g.nodes().take(10) {
//!         assert_eq!(labels.dist(u, v, WILDCARD), matrix.dist(u, v, WILDCARD));
//!     }
//! }
//! assert!(labels.bytes() < DistanceMatrix::bytes_for(&g) * 4); // tiny graph; at scale the gap inverts hugely
//! ```

mod labels;
mod overlay;
mod probe;
mod sharded;

pub use labels::{HopBuildError, HopConfig, HopLabels, HopRepair, HopStats, InSetAgg};
pub use probe::DistProbe;
pub use sharded::{ShardedConfig, ShardedLabels, ShardedRepair, ShardedStats};
