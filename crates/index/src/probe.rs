//! The [`DistProbe`] abstraction: what RQ evaluation actually needs from a
//! distance index.
//!
//! `Rq::eval_with_matrix` (rpq-core) never reads the dense matrix directly;
//! its per-atom step needs exactly three capabilities:
//!
//! 1. a point probe — the shortest `color`-constrained distance between two
//!    nodes ([`DistProbe::dist`]),
//! 2. a bounded neighborhood scan — every node within `max` hops of a
//!    source along one color ([`DistProbe::for_each_within`]), and
//! 3. the nonempty-path diagonal case — a cycle through the node itself
//!    ([`DistProbe::has_cycle_within`]), which no symmetric-distance store
//!    can read off directly because the diagonal holds 0 while the paper's
//!    semantics requires |path| ≥ 1.
//!
//! Both the dense [`DistanceMatrix`] (O(1) probes, O(|Σ|·|V|²) memory) and
//! the pruned 2-hop [`HopLabels`](crate::HopLabels) (label-merge probes,
//! memory proportional to total label size) implement the trait, so the
//! evaluation algorithms in `rpq-core` are backend-generic: the planner
//! picks the index, the algorithm stays the same.

use rpq_graph::{Color, DistanceMatrix, Graph, NodeId, INFINITY};

/// A per-color shortest-distance oracle usable as an RQ atom-test backend.
///
/// Implementations must agree with BFS ground truth: `dist(u, v, c)` is the
/// length of the shortest nonempty-or-empty path `u → v` over edges admitted
/// by `c` (`0` iff `u == v`, [`INFINITY`] iff unreachable), saturating at
/// `u16::MAX - 1` exactly like
/// [`bfs_distances`](rpq_graph::algo::bfs_distances).
pub trait DistProbe {
    /// Number of nodes the index was built for.
    fn node_count(&self) -> usize;

    /// Shortest distance from `from` to `to` along edges admitted by
    /// `color`; [`INFINITY`] if unreachable, 0 if `from == to`.
    fn dist(&self, from: NodeId, to: NodeId, color: Color) -> u16;

    /// Call `f(z)` for every node `z ≠ from` with
    /// `1 ≤ dist(from, z, color) ≤ max`.
    ///
    /// `f` may be called **more than once per node** (label-based backends
    /// enumerate via hubs, and several hubs can witness the same target);
    /// callers must be idempotent in `z` — the mask/bitset accumulation in
    /// RQ evaluation is.
    fn for_each_within(&self, from: NodeId, color: Color, max: u16, f: &mut dyn FnMut(NodeId));

    /// Bounded scan **with the diagonal**: `f(z)` for every `z` with a
    /// nonempty path `from → z` of length ≤ `max_len` (`None` =
    /// unbounded) — [`for_each_within`](DistProbe::for_each_within) plus
    /// `from` itself when a cycle through it fits the bound. This is the
    /// one-atom step both RQ evaluation and PQ frontier sweeps are built
    /// from; it lives here so the subtle diagonal rule (the matrix/label
    /// diagonal stores 0, but the semantics requires |path| ≥ 1) is
    /// encoded once. Like the underlying scan, `f` may be called more
    /// than once per node.
    fn for_each_reaching_within(
        &self,
        g: &Graph,
        from: NodeId,
        color: Color,
        max_len: Option<u32>,
        f: &mut dyn FnMut(NodeId),
    ) {
        let cap = u32::from(u16::MAX - 1);
        let max = max_len.map_or(cap, |k| k.min(cap)) as u16;
        self.for_each_within(from, color, max, f);
        if self.has_cycle_within(g, from, color, max_len) {
            f(from);
        }
    }

    /// Nonempty-cycle test at `from`: one admitted edge out, then back,
    /// within `max_len` total hops (`None` = unbounded).
    fn has_cycle_within(
        &self,
        g: &Graph,
        from: NodeId,
        color: Color,
        max_len: Option<u32>,
    ) -> bool {
        let budget = max_len.unwrap_or(u32::MAX);
        if budget == 0 {
            return false;
        }
        g.out_edges(from).iter().any(|e| {
            if !color.admits(e.color) {
                return false;
            }
            if e.node == from {
                return true;
            }
            let back = self.dist(e.node, from, color);
            back != INFINITY && (back as u32 + 1) <= budget
        })
    }

    /// Atom test: is there a **nonempty** path `from → to` whose edges all
    /// have color `color`, of length at most `max_len` (`None` = unbounded)?
    fn reaches_within(
        &self,
        g: &Graph,
        from: NodeId,
        to: NodeId,
        color: Color,
        max_len: Option<u32>,
    ) -> bool {
        if from == to {
            return self.has_cycle_within(g, from, color, max_len);
        }
        let d = self.dist(from, to, color);
        if d == INFINITY || d == 0 {
            return false;
        }
        match max_len {
            None => true,
            Some(k) => (d as u32) <= k,
        }
    }

    /// Bulk atom test, the PQ refinement primitive: `out[i]` is true iff
    /// some `y ∈ targets` satisfies
    /// [`reaches_within`](DistProbe::reaches_within)`(sources[i], y)`.
    ///
    /// The default runs the pairwise probes (right for the O(1) matrix);
    /// label-based backends override it to aggregate the *target side once*
    /// — e.g. [`HopLabels`](crate::HopLabels) folds every target's `Lin`
    /// into one per-hub minimum and then answers each source with a single
    /// `Lout` scan, so a `Join` step over `|S|` sources and `|T|` targets
    /// costs `O(Σ|Lin| + Σ|Lout|)` label entries instead of `|S|·|T|` hub
    /// merges.
    fn sources_reaching_within(
        &self,
        g: &Graph,
        sources: &[NodeId],
        targets: &[NodeId],
        color: Color,
        max_len: Option<u32>,
    ) -> Vec<bool> {
        sources
            .iter()
            .map(|&x| {
                targets
                    .iter()
                    .any(|&y| self.reaches_within(g, x, y, color, max_len))
            })
            .collect()
    }
}

impl DistProbe for DistanceMatrix {
    fn node_count(&self) -> usize {
        DistanceMatrix::node_count(self)
    }

    #[inline]
    fn dist(&self, from: NodeId, to: NodeId, color: Color) -> u16 {
        DistanceMatrix::dist(self, from, to, color)
    }

    fn for_each_within(&self, from: NodeId, color: Color, max: u16, f: &mut dyn FnMut(NodeId)) {
        // the diagonal stores 0, so `d >= 1` also excludes `from` itself;
        // `max < INFINITY` makes the upper check subsume the INFINITY test
        debug_assert!(max < INFINITY);
        for (z, &d) in self.row(from, color).iter().enumerate() {
            if d >= 1 && d <= max {
                f(NodeId(z as u32));
            }
        }
    }

    fn has_cycle_within(
        &self,
        g: &Graph,
        from: NodeId,
        color: Color,
        max_len: Option<u32>,
    ) -> bool {
        DistanceMatrix::has_cycle_within(self, g, from, color, max_len)
    }

    fn reaches_within(
        &self,
        g: &Graph,
        from: NodeId,
        to: NodeId,
        color: Color,
        max_len: Option<u32>,
    ) -> bool {
        DistanceMatrix::reaches_within(self, g, from, to, color, max_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::GraphBuilder;

    #[test]
    fn matrix_probe_matches_inherent_api() {
        let mut b = GraphBuilder::new();
        let x = b.add_node("x", []);
        let y = b.add_node("y", []);
        let z = b.add_node("z", []);
        let r = b.color("r");
        b.add_edge(x, y, r);
        b.add_edge(y, z, r);
        b.add_edge(z, x, r);
        let g = b.build();
        let m = DistanceMatrix::build(&g);
        let p: &dyn DistProbe = &m;
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.dist(x, z, r), 2);
        assert_eq!(p.dist(x, x, r), 0);
        assert!(p.reaches_within(&g, x, x, r, Some(3)), "3-cycle");
        assert!(!p.reaches_within(&g, x, x, r, Some(2)));
        let mut seen = Vec::new();
        p.for_each_within(x, r, 1, &mut |v| seen.push(v));
        assert_eq!(seen, vec![y]);
        seen.clear();
        p.for_each_within(x, r, 2, &mut |v| seen.push(v));
        seen.sort_unstable();
        assert_eq!(seen, vec![y, z]);
    }
}
