//! Property tests: on random graphs, the pruned 2-hop labeling answers
//! every probe *identically* to the dense distance matrix — `dist`,
//! `reaches_within` for bounded and unbounded `k`, and the bounded
//! neighborhood scans RQ evaluation is built from.

use proptest::prelude::*;
use rpq_graph::gen::synthetic;
use rpq_graph::{Color, DistanceMatrix, Graph, WILDCARD};
use rpq_index::{DistProbe, HopConfig, HopLabels};

fn colors_of(g: &Graph) -> Vec<Color> {
    let mut cs: Vec<Color> = g.alphabet().colors().collect();
    cs.push(WILDCARD);
    cs
}

fn assert_all_probes_equal(g: &Graph, m: &DistanceMatrix, h: &HopLabels) {
    for c in colors_of(g) {
        for u in g.nodes() {
            for v in g.nodes() {
                let want = m.dist(u, v, c);
                let got = DistProbe::dist(h, u, v, c);
                assert_eq!(got, want, "dist({u:?}, {v:?}, {c:?})");
                for k in [None, Some(1u32), Some(2), Some(7)] {
                    assert_eq!(
                        h.reaches_within(g, u, v, c, k),
                        m.reaches_within(g, u, v, c, k),
                        "reaches_within({u:?}, {v:?}, {c:?}, {k:?})"
                    );
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn probes_match_matrix_on_random_graphs(
        n in 2usize..90,
        density in 1usize..6,
        colors in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let g = synthetic(n, n * density, 2, colors, seed);
        let m = DistanceMatrix::build(&g);
        let h = HopLabels::build(&g);
        prop_assert!(h.is_exact());
        assert_all_probes_equal(&g, &m, &h);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn scans_match_matrix_on_random_graphs(
        n in 2usize..70,
        density in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let g = synthetic(n, n * density, 2, 3, seed);
        let m = DistanceMatrix::build(&g);
        let h = HopLabels::build(&g);
        for c in colors_of(&g) {
            for u in g.nodes() {
                for max in [1u16, 2, 5, u16::MAX - 1] {
                    let mut want = vec![false; g.node_count()];
                    DistProbe::for_each_within(&m, u, c, max, &mut |z| want[z.index()] = true);
                    let mut got = vec![false; g.node_count()];
                    h.for_each_within(u, c, max, &mut |z| got[z.index()] = true);
                    prop_assert_eq!(&got, &want, "scan({:?}, {:?}, {})", u, c, max);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn partial_labelings_stay_sound_upper_bounds(
        n in 4usize..60,
        landmarks in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let g = synthetic(n, n * 3, 2, 2, seed);
        let cfg = HopConfig { landmarks, ..HopConfig::default() };
        let h = HopLabels::build_with(&g, &cfg, None).unwrap();
        let m = DistanceMatrix::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                let est = DistProbe::dist(&h, u, v, WILDCARD);
                if est != rpq_graph::INFINITY {
                    prop_assert!(m.dist(u, v, WILDCARD) <= est);
                }
            }
        }
    }
}

/// The ISSUE's upper size bound, as a plain test (a 512-node case per
/// proptest iteration would dominate the suite): every (u, v, color, k)
/// probe on a 512-node random graph, bit-identical to the matrix.
#[test]
fn full_parity_at_512_nodes() {
    let g = synthetic(512, 2048, 2, 4, 2026);
    let m = DistanceMatrix::build(&g);
    let h = HopLabels::build(&g);
    assert_all_probes_equal(&g, &m, &h);
}
