//! 100k-node scale test — `#[ignore]`d because it builds a six-figure-node
//! label index; CI runs it in release mode as a dedicated job
//! (`cargo test --release -p rpq-index --test scale -- --ignored`).
//!
//! At this size the dense matrix is not an option (the estimate alone is
//! ~93 GB), which is precisely the regime the hop-label subsystem exists
//! for. The test builds the *concrete* color layers — the configuration
//! the engine's budget machinery converges to at this scale: the wildcard
//! layer is the union graph, whose labels grow superlinearly on
//! expander-like data, so production budgets drop it and wildcard queries
//! fall back to search (exercised by the 50k bench) — and checks the
//! build fits a tight budget, probes agree with on-demand bidirectional
//! BFS ground truth, and bounded scans agree with a fresh single-source
//! BFS.

use rpq_graph::algo::{bfs_distances, bidirectional_distance, Direction};
use rpq_graph::gen::youtube_like;
use rpq_graph::{DistanceMatrix, NodeId, INFINITY, WILDCARD};
use rpq_index::{DistProbe, HopConfig, HopLabels};

#[test]
#[ignore = "builds a 100k-node label index; run in release via the CI scale job"]
fn hundred_k_nodes_probe_parity() {
    // RPQ_SCALE_NODES overrides the size for local bisection runs
    let n = std::env::var("RPQ_SCALE_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000usize);
    let g = youtube_like(n, 4);
    assert_eq!(g.node_count(), n);

    let t0 = std::time::Instant::now();
    let cfg = HopConfig {
        budget_bytes: 512 << 20, // far more than concrete layers need
        wildcard_layer: false,
        ..HopConfig::default()
    };
    let labels = HopLabels::build_with(&g, &cfg, None).expect("build within budget");
    let stats = labels.stats();
    println!("built in {:?}: {stats}", t0.elapsed());
    assert!(labels.is_exact());
    assert!(!labels.has_layer(WILDCARD), "wildcard layer disabled");
    for c in g.alphabet().colors() {
        assert!(labels.has_layer(c));
    }

    // memory: orders of magnitude under the dense-matrix requirement
    let dm_bytes = DistanceMatrix::bytes_for(&g);
    println!(
        "label bytes = {} ({:.4}% of the {} GB dense matrix)",
        stats.bytes,
        100.0 * stats.bytes as f64 / dm_bytes as f64,
        dm_bytes >> 30
    );
    assert!(
        stats.bytes * 100 < dm_bytes,
        "labels must undercut DM 100x+"
    );

    // probe parity against per-pair bidirectional BFS ground truth on a
    // deterministic pseudo-random pair sample, every concrete color
    let colors: Vec<_> = g.alphabet().colors().collect();
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % n as u64) as u32
    };
    for i in 0..2_000 {
        let (u, v) = (NodeId(next()), NodeId(next()));
        let c = colors[i % colors.len()];
        let got = labels.dist(u, v, c);
        let want = match bidirectional_distance(&g, u, v, c) {
            None => INFINITY,
            Some(d) => d.min(u32::from(u16::MAX - 1)) as u16,
        };
        assert_eq!(got, want, "dist({u:?}, {v:?}, {c:?})");
    }

    // bounded scans against a fresh BFS from a handful of sources
    for i in 0..40 {
        let u = NodeId(next());
        let c = colors[i % colors.len()];
        let truth = bfs_distances(&g, u, c, Direction::Forward);
        for max in [2u16, 6] {
            let mut got = vec![false; n];
            labels.for_each_within(u, c, max, &mut |z| got[z.index()] = true);
            for (z, &d) in truth.iter().enumerate() {
                let want = d >= 1 && d <= max;
                assert_eq!(got[z], want, "scan from {u:?} {c:?} max {max} at node {z}");
            }
        }
    }
}
