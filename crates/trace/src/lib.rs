//! # rpq-trace — structured tracing and per-query profiling
//!
//! A dependency-free observability substrate shared by every layer of the
//! engine: the planner, the hop-label and sharded indices, the updatable
//! engine's apply pipeline, and the HTTP server all record into the same
//! process-wide [`Tracer`].
//!
//! Two complementary facilities live here:
//!
//! * **Spans and events** — [`Tracer::span`] times a region of code and
//!   deposits a [`TraceEvent`] into a fixed-size ring buffer when it
//!   drops. The ring is a diagnostic flight recorder: the server exposes
//!   it as JSON lines under `GET /debug/trace`.
//! * **Query profiles** — [`QueryProfile`] is a per-query breakdown
//!   (chosen plan + the planner's rationale, contiguous stage timings,
//!   probe counts, memo hit/miss, shard fan-out, worker counts) built by
//!   the engine's `run_query_profiled` path and served over
//!   `POST /v1/explain`.
//!
//! ## Overhead guarantee
//!
//! The tracer is **disabled by default**. While disabled, every
//! instrumentation site costs exactly one `Relaxed` atomic load — no
//! clock read, no allocation, no lock. `benches/trace.rs` in `rpq-bench`
//! guards this: an instrumented hot path with the tracer disabled must
//! stay within 2% of an uninstrumented replica of the same work.
//!
//! When enabled, recording an event takes one `Relaxed` fetch-add to
//! claim a ring slot plus one per-slot mutex (never contended unless two
//! writers lap the ring simultaneously at the same slot) — writers on
//! different slots never serialize against each other.
//!
//! ```
//! let tracer = rpq_trace::Tracer::new(64);
//! tracer.set_enabled(true);
//! {
//!     let mut span = tracer.span("demo", "warmup");
//!     span.detail("n=3");
//! } // recorded on drop
//! assert_eq!(tracer.recent().len(), 1);
//! assert_eq!(tracer.recent()[0].scope, "demo");
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One recorded event: a named, timed region of code with free-form
/// detail, stamped with a global sequence number and a microsecond
/// offset from the tracer's creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (monotone across threads).
    pub seq: u64,
    /// Microseconds since the tracer was created, at record time.
    pub at_us: u64,
    /// Subsystem that recorded the event (e.g. `"planner"`, `"hop-repair"`).
    pub scope: &'static str,
    /// Event name within the scope (e.g. `"invalidate"`, `"execute"`).
    pub name: String,
    /// Duration of the spanned region, in microseconds (0 for instants).
    pub dur_us: u64,
    /// Free-form key=value detail.
    pub detail: String,
}

impl TraceEvent {
    /// Render the event as one line of JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"at_us\":{},\"scope\":\"{}\",\"name\":\"{}\",\"dur_us\":{},\"detail\":\"{}\"}}",
            self.seq,
            self.at_us,
            escape_json(self.scope),
            escape_json(&self.name),
            self.dur_us,
            escape_json(&self.detail),
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lock-light tracer: an enabled flag plus a fixed-size ring buffer of
/// [`TraceEvent`]s. See the crate docs for the overhead guarantee.
pub struct Tracer {
    enabled: AtomicBool,
    seq: AtomicU64,
    epoch: Instant,
    ring: Vec<Mutex<Option<TraceEvent>>>,
    slow_queries: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("capacity", &self.ring.len())
            .field("recorded", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Tracer {
    /// A tracer with a ring of `capacity` slots (at least 1), disabled.
    pub fn new(capacity: usize) -> Tracer {
        let capacity = capacity.max(1);
        Tracer {
            enabled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
            ring: (0..capacity).map(|_| Mutex::new(None)).collect(),
            slow_queries: AtomicU64::new(0),
        }
    }

    /// Is recording on? One `Relaxed` load — this is the only cost an
    /// instrumentation site pays while the tracer is disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off. Callable at any time, from any thread.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Start a span; the event is recorded when the guard drops. While
    /// the tracer is disabled this reads no clock and records nothing.
    #[inline]
    pub fn span<'a>(&'a self, scope: &'static str, name: &str) -> Span<'a> {
        if !self.enabled() {
            return Span {
                tracer: self,
                scope,
                name: String::new(),
                started: None,
                detail: String::new(),
            };
        }
        Span {
            tracer: self,
            scope,
            name: name.to_owned(),
            started: Some(Instant::now()),
            detail: String::new(),
        }
    }

    /// Record an instantaneous event (no duration) with free-form detail.
    #[inline]
    pub fn event(&self, scope: &'static str, name: &str, detail: &str) {
        if !self.enabled() {
            return;
        }
        self.record(scope, name.to_owned(), Duration::ZERO, detail.to_owned());
    }

    /// Record a completed region with an explicit duration.
    #[inline]
    pub fn record_span(&self, scope: &'static str, name: &str, dur: Duration, detail: &str) {
        if !self.enabled() {
            return;
        }
        self.record(scope, name.to_owned(), dur, detail.to_owned());
    }

    fn record(&self, scope: &'static str, name: String, dur: Duration, detail: String) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = TraceEvent {
            seq,
            at_us: self.epoch.elapsed().as_micros() as u64,
            scope,
            name,
            dur_us: dur.as_micros() as u64,
            detail,
        };
        let slot = (seq % self.ring.len() as u64) as usize;
        // per-slot lock: writers on different slots never contend
        *self.ring[slot].lock().unwrap() = Some(event);
    }

    /// Count a query that exceeded the configured slow-query threshold.
    /// Surfaced by the server as `rpq_slow_queries_total`.
    pub fn note_slow_query(&self) {
        self.slow_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Total slow queries noted since creation.
    pub fn slow_queries(&self) -> u64 {
        self.slow_queries.load(Ordering::Relaxed)
    }

    /// Snapshot the ring's surviving events, oldest first. Events being
    /// written concurrently are either fully present or absent — never
    /// torn (each slot is handed out under its own mutex).
    pub fn recent(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .ring
            .iter()
            .filter_map(|slot| slot.lock().unwrap().clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The ring as JSON lines (one event object per line, oldest first).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.recent() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

/// RAII guard returned by [`Tracer::span`]; records a [`TraceEvent`]
/// with the elapsed duration when dropped (if the tracer was enabled
/// when the span started).
pub struct Span<'a> {
    tracer: &'a Tracer,
    scope: &'static str,
    name: String,
    started: Option<Instant>,
    detail: String,
}

impl Span<'_> {
    /// Attach (or extend) free-form `key=value` detail. No-op when the
    /// span is disabled, so callers may format eagerly only when live.
    pub fn detail(&mut self, detail: &str) {
        if self.started.is_none() {
            return;
        }
        if !self.detail.is_empty() {
            self.detail.push(' ');
        }
        self.detail.push_str(detail);
    }

    /// Is this span actually recording? Lets callers skip expensive
    /// detail formatting when the tracer is off.
    pub fn is_recording(&self) -> bool {
        self.started.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.tracer.record(
                self.scope,
                std::mem::take(&mut self.name),
                started.elapsed(),
                std::mem::take(&mut self.detail),
            );
        }
    }
}

/// The process-wide tracer (ring of 4096 events, disabled until
/// something calls [`Tracer::set_enabled`] — `rpq-server` does at
/// startup). Library code records through this so instrumentation does
/// not need a handle threaded through every layer.
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(4096))
}

/// One timed stage of a profiled query. Stages are contiguous
/// sub-intervals of a single clock, so their durations sum to the
/// profile's wall time (within instrumentation noise).
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// Stage name (`"plan"`, `"prepare"`, `"eval"`, …).
    pub name: &'static str,
    /// Time spent in the stage.
    pub duration: Duration,
    /// Free-form detail (e.g. `"matrix prebuilt"`, `"probes=124"`).
    pub detail: String,
}

/// Per-query execution profile: what plan ran, why, and where the time
/// went. Built by the engine's `run_query_profiled` surface and served
/// over `POST /v1/explain`.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Compact rendering of the query itself.
    pub query: String,
    /// Name of the chosen plan variant (e.g. `"hop"`, `"SplitMatch/DM"`).
    pub plan: String,
    /// The planner's rationale, including crossover values at decision
    /// time (e.g. `"cyclic pattern, size 9 >= crossover 16"`).
    pub rationale: String,
    /// Contiguous stage timings; they sum to [`wall`](QueryProfile::wall)
    /// within instrumentation noise.
    pub stages: Vec<StageTiming>,
    /// Index distance probes issued (0 when the plan does not probe).
    pub probes: u64,
    /// Batch-memo hits attributable to this query.
    pub memo_hits: u64,
    /// Batch-memo misses attributable to this query.
    pub memo_misses: u64,
    /// Shards scattered to (0 for unsharded plans).
    pub shard_fanout: u32,
    /// Refinement worker threads used by the evaluation.
    pub workers: usize,
    /// Result size (pairs for an RQ, matched nodes for a PQ).
    pub matches: u64,
    /// Semantic-cache outcome for the evaluation: `"exact_hit"`,
    /// `"subsumption_hit"`, `"miss"`, or empty when the plan never
    /// consulted the cache.
    pub semcache: String,
    /// The canonical (minimized, run-normal) form the query was planned
    /// and cached under; empty when identical to the submitted form.
    pub canonical: String,
    /// End-to-end wall time of the profiled run.
    pub wall: Duration,
}

impl QueryProfile {
    /// A profile shell with the given query/plan/rationale and no
    /// stages; callers push [`StageTiming`]s and fill the counters.
    pub fn new(query: String, plan: String, rationale: String) -> QueryProfile {
        QueryProfile {
            query,
            plan,
            rationale,
            stages: Vec::new(),
            probes: 0,
            memo_hits: 0,
            memo_misses: 0,
            shard_fanout: 0,
            workers: 1,
            matches: 0,
            semcache: String::new(),
            canonical: String::new(),
            wall: Duration::ZERO,
        }
    }

    /// Push a stage timing.
    pub fn stage(&mut self, name: &'static str, duration: Duration, detail: String) {
        self.stages.push(StageTiming {
            name,
            duration,
            detail,
        });
    }

    /// Sum of all stage durations.
    pub fn stage_total(&self) -> Duration {
        self.stages.iter().map(|s| s.duration).sum()
    }

    /// Render the profile as one JSON object.
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":\"{}\",\"us\":{},\"detail\":\"{}\"}}",
                    escape_json(s.name),
                    s.duration.as_micros(),
                    escape_json(&s.detail),
                )
            })
            .collect();
        format!(
            "{{\"query\":\"{}\",\"plan\":\"{}\",\"rationale\":\"{}\",\"stages\":[{}],\
             \"probes\":{},\"memo_hits\":{},\"memo_misses\":{},\"shard_fanout\":{},\
             \"workers\":{},\"matches\":{},\"semcache\":\"{}\",\"canonical\":\"{}\",\
             \"wall_us\":{}}}",
            escape_json(&self.query),
            escape_json(&self.plan),
            escape_json(&self.rationale),
            stages.join(","),
            self.probes,
            self.memo_hits,
            self.memo_misses,
            self.shard_fanout,
            self.workers,
            self.matches,
            escape_json(&self.semcache),
            escape_json(&self.canonical),
            self.wall.as_micros(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(8);
        {
            let mut s = t.span("test", "noop");
            s.detail("ignored");
            assert!(!s.is_recording());
        }
        t.event("test", "noop", "ignored");
        assert!(t.recent().is_empty());
        assert_eq!(t.to_json_lines(), "");
    }

    #[test]
    fn span_records_on_drop_with_detail() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        {
            let mut s = t.span("scope", "work");
            assert!(s.is_recording());
            s.detail("k=1");
            s.detail("j=2");
        }
        let events = t.recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].scope, "scope");
        assert_eq!(events[0].name, "work");
        assert_eq!(events[0].detail, "k=1 j=2");
    }

    #[test]
    fn ring_keeps_most_recent_events() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        for i in 0..10 {
            t.event("test", &format!("e{i}"), "");
        }
        let events = t.recent();
        assert_eq!(events.len(), 4);
        // oldest first, and only the last 4 survive the wraparound
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["e6", "e7", "e8", "e9"]);
    }

    #[test]
    fn json_lines_escape_and_parse_shape() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        t.event("test", "quote\"backslash\\", "tab\there");
        let line = t.to_json_lines();
        assert!(line.contains("quote\\\"backslash\\\\"));
        assert!(line.contains("tab\\there"));
        assert!(line.trim().starts_with('{') && line.trim().ends_with('}'));
    }

    #[test]
    fn concurrent_writers_never_tear_events() {
        let t = Arc::new(Tracer::new(64));
        t.set_enabled(true);
        let writers: Vec<_> = (0..8)
            .map(|w| {
                let t = Arc::clone(&t);
                thread::spawn(move || {
                    for i in 0..200 {
                        let mut s = t.span("writer", &format!("w{w}"));
                        s.detail(&format!("i={i}"));
                    }
                })
            })
            .collect();
        // render mid-flight: every snapshot must hold only whole events
        for _ in 0..50 {
            for e in t.recent() {
                assert_eq!(e.scope, "writer");
                assert!(e.name.starts_with('w'), "torn name: {:?}", e.name);
                assert!(e.detail.starts_with("i="), "torn detail: {:?}", e.detail);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(t.recent().len(), 64);
    }

    #[test]
    fn profile_stages_sum_and_json() {
        let mut p = QueryProfile::new("rq …".into(), "hop".into(), "labels usable".into());
        p.stage("plan", Duration::from_micros(5), String::new());
        p.stage("eval", Duration::from_micros(95), "probes=12".into());
        p.probes = 12;
        p.wall = Duration::from_micros(100);
        assert_eq!(p.stage_total(), Duration::from_micros(100));
        let json = p.to_json();
        assert!(json.contains("\"plan\":\"hop\""));
        assert!(json.contains("\"probes\":12"));
        assert!(json.contains("\"wall_us\":100"));
    }

    #[test]
    fn global_tracer_is_shared_and_starts_disabled() {
        let a = tracer() as *const Tracer;
        let b = tracer() as *const Tracer;
        assert_eq!(a, b);
        assert_eq!(tracer().capacity(), 4096);
    }
}
