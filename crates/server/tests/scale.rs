//! Release acceptance for the serving stack: ≥ 1000 concurrent
//! closed-loop connections of mixed RQ/PQ reads and edge-update writes
//! against one `rpq-server`, with latency-percentile assertions, a
//! bit-identical parity check against in-process evaluation, and a
//! deterministic backpressure sub-check.
//!
//! Run with:
//!
//! ```text
//! cargo test --release -p rpq-server --test scale -- --ignored --nocapture
//! ```
//!
//! When `BENCH_JSON_DIR` is set the run emits `BENCH_server.json` in the
//! same shape the criterion shim writes, so CI uploads it with the other
//! bench artifacts.

use rpq_bench::loadgen::{run_load, LoadConfig};
use rpq_bench::querygen::{generate_pq, generate_rq, QueryParams};
use rpq_engine::{Query, UpdatableEngine};
use rpq_graph::gen::youtube_like;
use rpq_server::{wire, Client, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

const CONNECTIONS: usize = 1024;
const GRAPH_NODES: usize = 1_000;
const SEED: u64 = 42;

fn emit_bench_json(report: &rpq_bench::loadgen::LoadReport) {
    let Ok(dir) = std::env::var("BENCH_JSON_DIR") else {
        return;
    };
    // mirror the criterion shim's report shape (target/mode/context/benches)
    let json = format!(
        concat!(
            "{{\n",
            "  \"target\": \"server\",\n",
            "  \"mode\": \"timed\",\n",
            "  \"context\": {{\"connections\": \"{conns}\", \"graph_nodes\": \"{nodes}\", ",
            "\"requests\": \"{reqs}\", \"queries\": \"{queries}\", ",
            "\"updates_applied\": \"{updates}\", \"rejected\": \"{rejected}\", ",
            "\"qps\": \"{qps:.0}\"}},\n",
            "  \"benches\": [\n",
            "    {{\"name\": \"request_p50\", \"median_ns\": {p50}}},\n",
            "    {{\"name\": \"request_p99\", \"median_ns\": {p99}}}\n",
            "  ]\n}}\n"
        ),
        conns = CONNECTIONS,
        nodes = GRAPH_NODES,
        reqs = report.requests,
        queries = report.queries,
        updates = report.updates_applied,
        rejected = report.rejected,
        qps = report.qps,
        p50 = report.p50_us * 1_000,
        p99 = report.p99_us * 1_000,
    );
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = std::path::Path::new(&dir).join("BENCH_server.json");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    }
}

#[test]
#[ignore = "release acceptance: ~1k threads; run with --release --ignored"]
fn thousand_connection_mixed_load() {
    let engine = Arc::new(UpdatableEngine::new(youtube_like(GRAPH_NODES, SEED)));
    let graph = Arc::clone(engine.snapshot().graph());
    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig {
            queue_capacity: 2048,
            coalesce_max: 256,
            coalesce_window: Duration::from_millis(2),
            max_pending_updates: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr().to_string();

    let cfg = LoadConfig {
        connections: CONNECTIONS,
        requests_per_connection: 3,
        write_pct: 20,
        batch: 2,
        updates_per_write: 2,
        seed: SEED,
    };
    println!(
        "offered load: {} connections × {} requests (batch {}, {}% writes)",
        cfg.connections, cfg.requests_per_connection, cfg.batch, cfg.write_pct
    );
    let report = run_load(&addr, &graph, &cfg);
    println!(
        "completed in {:.2?}: {} requests, {} queries, {} updates applied, \
         {} rejected (retried), {} errors",
        report.wall,
        report.requests,
        report.queries,
        report.updates_applied,
        report.rejected,
        report.errors
    );
    println!(
        "client-side: {:.0} q/s, p50 {} µs, p99 {} µs",
        report.qps, report.p50_us, report.p99_us
    );

    // every connection completed every request, none errored out
    assert_eq!(report.errors, 0, "load run saw errors");
    assert_eq!(
        report.requests,
        (cfg.connections * cfg.requests_per_connection) as u64
    );
    assert!(report.qps > 0.0);
    // latency bounds are deliberately loose: with 1k closed-loop
    // connections on one shared CI core, p50 is dominated by queue wait,
    // so these assert the *shape* (the pipeline kept moving; nothing hit
    // the 120 s response timeout) rather than a hardware-specific number
    assert!(report.p50_us > 0, "no latencies recorded");
    assert!(
        report.p50_us < 60_000_000,
        "p50 {} µs: server stalled under load",
        report.p50_us
    );
    assert!(
        report.p99_us < 110_000_000,
        "p99 {} µs: tail collapsed under load",
        report.p99_us
    );

    // server-side metrics agree the traffic happened
    let mut client = Client::connect(server.addr()).unwrap();
    let m = client.metrics().unwrap();
    let served = m.get("queries").and_then(|v| v.as_u64()).unwrap();
    assert!(
        served >= report.queries,
        "server served {served}, clients completed {}",
        report.queries
    );
    assert!(m.get("qps").unwrap().as_f64().unwrap() > 0.0);
    assert_eq!(
        m.get("snapshot_version").and_then(|v| v.as_u64()).unwrap(),
        engine.version()
    );

    // parity after the churn: wire answers are bit-identical to an
    // in-process run_batch on the final snapshot
    let params = QueryParams {
        nodes: 3,
        edges: 3,
        preds: 2,
        bound: 3,
        colors: 2,
        redundant: false,
    };
    let queries: Vec<Query> = (0..24)
        .map(|i| {
            if i % 3 == 2 {
                Query::Pq(generate_pq(&graph, &params, 9_000 + i))
            } else {
                Query::Rq(generate_rq(&graph, 2, 3, 2, 9_000 + i))
            }
        })
        .collect();
    let resp = client.query(&queries, &graph).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let expected = wire::encode_items(engine.snapshot().run_batch(&queries).items());
    assert_eq!(resp.body, expected, "post-load parity broke");

    server.shutdown();
    emit_bench_json(&report);
}

/// Backpressure under saturation, deterministically: a capacity-1 queue
/// plus a long coalescing window guarantees the second submission finds
/// the queue full and is refused with 429 + `Retry-After`.
#[test]
#[ignore = "release acceptance companion; run with --release --ignored"]
fn saturated_queue_refuses_with_retry_after() {
    let engine = Arc::new(UpdatableEngine::new(youtube_like(500, SEED)));
    let graph = Arc::clone(engine.snapshot().graph());
    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig {
            queue_capacity: 1,
            coalesce_window: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();

    let occupant = {
        let graph = Arc::clone(&graph);
        std::thread::spawn(move || {
            let q = vec![Query::Rq(generate_rq(&graph, 2, 3, 2, 1))];
            Client::connect(addr).unwrap().query(&q, &graph).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(150));

    let q = vec![Query::Rq(generate_rq(&graph, 2, 3, 2, 2))];
    let resp = Client::connect(addr).unwrap().query(&q, &graph).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert_eq!(resp.retry_after, Some(1));
    assert_eq!(occupant.join().unwrap().status, 200);
    server.shutdown();
}
