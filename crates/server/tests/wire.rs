//! Wire-codec properties: encode→decode identity over generated
//! queries/updates, canonical-encoding stability, and line-numbered
//! rejection of malformed frames (mirroring the edge-list reader's
//! hardening: a broken line is named, not guessed at).

use proptest::prelude::*;
use rpq_bench::querygen::{generate_pq, generate_rq, QueryParams};
use rpq_core::incremental::Update;
use rpq_engine::{EngineError, Query};
use rpq_graph::gen::youtube_like;
use rpq_graph::{Color, Graph, NodeId};
use rpq_server::wire;

fn vocab() -> Graph {
    youtube_like(300, 5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated RQs survive encode → parse → encode unchanged (the
    /// canonical encoding is a fixpoint, which is what the server's
    /// bit-identical acceptance relies on).
    #[test]
    fn rq_lines_round_trip(seed in 0u64..10_000, preds in 1usize..4, bound in 1u32..5) {
        let g = vocab();
        let q = Query::Rq(generate_rq(&g, preds, bound, 2, seed));
        let line = wire::encode_query(&q, &g);
        prop_assert!(!line.contains('\n'));
        let back = wire::parse_query_line(1, &line, &g).unwrap();
        prop_assert_eq!(wire::encode_query(&back, &g), line);
    }

    /// Same for generated PQs — multi-line pattern text travels escaped
    /// on one wire line.
    #[test]
    fn pq_lines_round_trip(seed in 0u64..10_000) {
        let g = vocab();
        let params = QueryParams { nodes: 4, edges: 5, preds: 2, bound: 4, colors: 3, redundant: false };
        let q = Query::Pq(generate_pq(&g, &params, seed));
        let line = wire::encode_query(&q, &g);
        prop_assert!(!line.contains('\n'));
        let back = wire::parse_query_line(1, &line, &g).unwrap();
        prop_assert_eq!(wire::encode_query(&back, &g), line);
    }

    /// Update lines round-trip exactly.
    #[test]
    fn update_lines_round_trip(x in 0u32..300, y in 0u32..300, c in 0u8..4, ins in any::<bool>()) {
        let g = vocab();
        let u = if ins {
            Update::Insert(NodeId(x), NodeId(y), Color(c))
        } else {
            Update::Delete(NodeId(x), NodeId(y), Color(c))
        };
        let line = wire::encode_update(&u, &g);
        prop_assert_eq!(wire::parse_update_line(1, &line, &g).unwrap(), u);
    }

    /// Field escaping is injective and reversible for strings drawn from
    /// a palette that stresses every escape (tabs, newlines, backslashes,
    /// multi-byte chars).
    #[test]
    fn field_escaping_round_trips(seed in any::<u64>(), len in 0usize..24) {
        const PALETTE: &[char] = &['a', 'Z', '0', '\t', '\n', '\r', '\\', ' ', 'é', '→', '"'];
        let mut state = seed;
        let s: String = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                PALETTE[(state >> 33) as usize % PALETTE.len()]
            })
            .collect();
        let escaped = wire::escape_field(&s);
        prop_assert!(!escaped.contains('\t') && !escaped.contains('\n'));
        prop_assert_eq!(wire::unescape_field(&escaped).unwrap(), s);
    }
}

/// Malformed bodies are rejected with the 1-based line they broke on.
#[test]
fn malformed_frames_name_their_line() {
    let g = vocab();
    let cases: &[(&str, usize, &str)] = &[
        ("rq\t\t\tfc\nnot-an-op\tx", 2, "unknown op"),
        ("rq\tuid <= 3", 1, "missing the target-predicate"),
        ("rq\t\t\tfc\trogue-field", 1, "more than 4 fields"),
        ("rq\tuid ?? 3\t\tfc", 1, "bad query"),
        ("rq\t\t\tfc\nrq\t\t\tzz^2", 2, "bad query"),
        ("pq\tnode a;\\nedge a -> a: zz;", 1, "pattern statement 2"),
        ("rq\t\t\tfc\npq\tbroken \\q escape", 2, "unknown escape"),
    ];
    for (body, want_line, want_msg) in cases {
        let err = wire::parse_query_body(body, &g).unwrap_err();
        let EngineError::BadQuery { line, msg } = &err else {
            panic!("{body:?}: expected BadQuery, got {err:?}");
        };
        assert_eq!(*line, *want_line, "{body:?} → {err}");
        assert!(
            err.to_string().contains(want_msg) || msg.contains(want_msg),
            "{body:?} → {err} (wanted {want_msg:?})"
        );
    }

    let update_cases: &[(&str, usize, &str)] = &[
        ("ins\t0\t1\tfc\nmov\t0\t1\tfc", 2, "unknown op"),
        ("ins\t0\t1", 1, "expected 4 tab-separated fields"),
        ("ins\t0\tminus-one\tfc", 1, "not a u32"),
        ("ins\t0\t1\tmauve", 1, "unknown edge color"),
    ];
    for (body, want_line, want_msg) in update_cases {
        let err = wire::parse_update_body(body, &g).unwrap_err();
        let EngineError::BadQuery { line, .. } = &err else {
            panic!("{body:?}: expected BadQuery, got {err:?}");
        };
        assert_eq!(*line, *want_line, "{body:?} → {err}");
        assert!(err.to_string().contains(want_msg), "{body:?} → {err}");
    }
}

/// Blank lines are tolerated (streaming clients may frame with them) and
/// do not shift error attribution.
#[test]
fn blank_lines_are_skipped_but_counted() {
    let g = vocab();
    let body = "rq\t\t\tfc\n\n\nbroken";
    let err = wire::parse_query_body(body, &g).unwrap_err();
    assert!(err.to_string().contains("line 4"), "{err}");
}

/// The trivially-true predicate encodes as the *empty* field — its
/// pretty-printed form (`true`) is display-only and must not appear on
/// the wire.
#[test]
fn trivial_predicates_encode_as_empty_fields() {
    let g = vocab();
    let q = Query::parse_rq("", "", "fc^2", &g).unwrap();
    let line = wire::encode_query(&q, &g);
    assert_eq!(line, "rq\t\t\tfc^2");
    wire::parse_query_line(1, &line, &g).unwrap();
}
