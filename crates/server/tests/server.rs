//! End-to-end integration tests: a real `Server` on a loopback port,
//! driven by real `Client`s over TCP.
//!
//! The central assertion is the serving contract: answers delivered over
//! the wire are **bit-identical** to encoding an in-process `run_batch`
//! on the same snapshot — coalescing across connections, keep-alive
//! reuse, and the process boundary change nothing about the bytes.

use rpq_bench::querygen::{generate_pq, generate_rq, QueryParams};
use rpq_core::incremental::Update;
use rpq_engine::{Query, UpdatableEngine};
use rpq_graph::{gen::youtube_like, Color, Graph, NodeId, WILDCARD};
use rpq_server::{Client, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn start(config: ServerConfig) -> (Arc<UpdatableEngine>, Server, Arc<Graph>) {
    let engine = Arc::new(UpdatableEngine::new(youtube_like(500, 3)));
    let graph = Arc::clone(engine.snapshot().graph());
    let server = Server::start(Arc::clone(&engine), config).expect("bind loopback");
    (engine, server, graph)
}

fn mixed_queries(g: &Graph, count: usize, seed: u64) -> Vec<Query> {
    let params = QueryParams {
        nodes: 3,
        edges: 3,
        preds: 2,
        bound: 3,
        colors: 2,
        redundant: false,
    };
    (0..count)
        .map(|i| {
            if i % 3 == 2 {
                Query::Pq(generate_pq(g, &params, seed + i as u64))
            } else {
                Query::Rq(generate_rq(g, 2, 3, 2, seed + i as u64))
            }
        })
        .collect()
}

/// Multiple concurrent clients, answers bit-identical to in-process
/// evaluation on the same engine.
#[test]
fn concurrent_clients_get_bit_identical_answers() {
    let (engine, server, graph) = start(ServerConfig {
        // a coalescing window wide enough that the three clients'
        // batches routinely merge into one engine batch
        coalesce_window: Duration::from_millis(10),
        ..ServerConfig::default()
    });
    let addr = server.addr().to_string();

    let handles: Vec<_> = (0..3)
        .map(|c| {
            let addr = addr.clone();
            let graph = Arc::clone(&graph);
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                for round in 0..4 {
                    let queries = mixed_queries(&graph, 5, 1000 * c + round);
                    let resp = client.query(&queries, &graph).unwrap();
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    assert_eq!(resp.version, Some(0), "no writes in this test");
                    let expected = rpq_server::wire::encode_items(
                        engine.snapshot().run_batch(&queries).items(),
                    );
                    assert_eq!(resp.body, expected, "wire answers diverged (client {c})");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
}

/// Updates round-trip: version advances, answers change, the applied
/// count is reported.
#[test]
fn updates_advance_the_snapshot_version() {
    let (engine, server, graph) = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let colors: Vec<Color> = graph.alphabet().colors().collect();
    let updates = vec![
        Update::Insert(NodeId(1), NodeId(2), colors[0]),
        Update::Insert(NodeId(2), NodeId(3), colors[0]),
    ];
    let resp = client.update(&updates, &graph).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let ack = rpq_server::json::Json::parse(&resp.body).unwrap();
    assert_eq!(ack.get("version").unwrap().as_u64(), Some(1));
    assert!(ack.get("applied").unwrap().as_u64().unwrap() >= 1);
    assert_eq!(engine.version(), 1);

    // queries now answer from the new version, still bit-identically
    let queries = mixed_queries(&graph, 4, 77);
    let resp = client.query(&queries, &graph).unwrap();
    assert_eq!(resp.version, Some(1));
    let expected = rpq_server::wire::encode_items(engine.snapshot().run_batch(&queries).items());
    assert_eq!(resp.body, expected);
    server.shutdown();
}

/// Engine and codec failures map onto HTTP statuses with line-numbered
/// messages — a bad request must never kill the connection thread.
#[test]
fn errors_map_to_statuses_not_dead_connections() {
    let (_engine, server, graph) = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    // malformed query: 400 naming the body line
    let resp = client
        .request("POST", "/v1/query", "rq\t\t\tfc\nrq\t\t\tno_such_color\n")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("line 2"), "{}", resp.body);

    // unknown color in an update: 400
    let resp = client
        .request("POST", "/v1/update", "ins\t0\t1\tchartreuse\n")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("unknown edge color"), "{}", resp.body);

    // node id past the graph: 400 via EngineError::NodeOutOfRange
    let resp = client
        .update(
            &[Update::Insert(NodeId(9_999_999), NodeId(0), Color(0))],
            &graph,
        )
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("out of range"), "{}", resp.body);

    // wildcard edge data: 400 via EngineError::WildcardEdge
    let resp = client
        .update(&[Update::Insert(NodeId(0), NodeId(1), WILDCARD)], &graph)
        .unwrap();
    assert_eq!(resp.status, 400);

    // unknown endpoint & wrong method
    assert_eq!(client.request("GET", "/nope", "").unwrap().status, 404);
    assert_eq!(client.request("PUT", "/v1/query", "").unwrap().status, 405);

    // …and the same connection still answers real queries afterwards
    let queries = mixed_queries(&graph, 2, 5);
    assert_eq!(client.query(&queries, &graph).unwrap().status, 200);
    server.shutdown();
}

/// A full admission queue answers 429 + `Retry-After` instead of
/// buffering without bound.
#[test]
fn full_queue_gets_backpressure() {
    let (_engine, server, graph) = start(ServerConfig {
        queue_capacity: 1,
        // hold the coalescer long enough that the queue is observably full
        coalesce_window: Duration::from_millis(400),
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // first request occupies the queue slot for the whole window
    let g1 = Arc::clone(&graph);
    let first = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query(&mixed_queries(&g1, 1, 1), &g1).unwrap()
    });

    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(addr).unwrap();
    let resp = client.query(&mixed_queries(&graph, 1, 2), &graph).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert_eq!(resp.retry_after, Some(1), "429 must carry Retry-After");

    // the occupant is answered normally once the window closes
    let resp = first.join().unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    // after the rejection, the metrics counted it
    let metrics = client.metrics().unwrap();
    assert!(metrics.get("rejected").unwrap().as_u64().unwrap() >= 1);
    server.shutdown();
}

/// `/metrics` reports live qps/latency/queue/version/index numbers.
#[test]
fn metrics_scrape_reflects_served_traffic() {
    let (engine, server, graph) = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let queries = mixed_queries(&graph, 6, 9);
    for _ in 0..3 {
        assert_eq!(client.query(&queries, &graph).unwrap().status, 200);
    }
    client
        .update(&[Update::Insert(NodeId(0), NodeId(1), Color(0))], &graph)
        .unwrap();

    let m = client.metrics().unwrap();
    let get = |k: &str| m.get(k).and_then(|v| v.as_u64()).unwrap_or(u64::MAX);
    assert_eq!(get("queries"), 18);
    assert_eq!(get("query_requests"), 3);
    assert_eq!(get("update_requests"), 1);
    assert_eq!(get("snapshot_version"), engine.version());
    assert!(m.get("qps").unwrap().as_f64().unwrap() > 0.0);
    assert!(get("p50_us") > 0, "latency histogram recorded nothing");
    assert!(get("p99_us") >= get("p50_us"));
    // matrix regime: no label index applies, so the update stream counts
    // neither repairs nor rebuild fallbacks
    assert_eq!(m.get("index_state").unwrap().as_str(), Some("stale"));
    assert_eq!(get("index_repairs"), 0);
    assert_eq!(get("index_rebuilds"), 0);
    assert_eq!(get("landmarks_invalidated"), 0);
    assert!(m.get("index_fresh_s").unwrap().as_f64().unwrap() >= 0.0);
    server.shutdown();
}

/// In the label regime, `/metrics` reports the published snapshot's index
/// state and counts update batches that fell back to a rebuild.
#[test]
fn metrics_report_index_maintenance() {
    let engine = Arc::new(UpdatableEngine::with_config(
        youtube_like(500, 3),
        rpq_engine::EngineConfig::builder()
            .matrix_node_limit(0) // force the label regime
            .workers(2)
            .build()
            .unwrap(),
    ));
    let graph = Arc::clone(engine.snapshot().graph());
    let server = Server::start(Arc::clone(&engine), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // no labels have been built yet, so there is nothing to carry: the
    // update must retire the (unbuilt) index and count a rebuild fallback
    client
        .update(&[Update::Insert(NodeId(0), NodeId(7), Color(0))], &graph)
        .unwrap();
    let m = client.metrics().unwrap();
    let get = |k: &str| m.get(k).and_then(|v| v.as_u64()).unwrap_or(u64::MAX);
    assert_eq!(m.get("index_state").unwrap().as_str(), Some("rebuilding"));
    assert_eq!(get("index_rebuilds"), 1);
    assert_eq!(get("index_repairs"), 0);
    server.shutdown();
}

/// `/v1/schema` hands a client the vocabulary it needs to build queries.
#[test]
fn schema_endpoint_describes_the_vocabulary() {
    let (_engine, server, graph) = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let schema = client.schema().unwrap();
    assert_eq!(schema.get("protocol").unwrap().as_u64(), Some(1));
    assert_eq!(
        schema.get("nodes").unwrap().as_u64(),
        Some(graph.node_count() as u64)
    );
    let colors = schema.get("colors").unwrap().as_array().unwrap();
    assert_eq!(colors.len(), graph.alphabet().len());
    server.shutdown();
}

/// Graceful shutdown: in-flight work completes, then the port closes.
#[test]
fn shutdown_drains_and_closes_the_port() {
    let (_engine, server, graph) = start(ServerConfig::default());
    let addr = server.addr();
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client
            .query(&mixed_queries(&graph, 2, 3), &graph)
            .unwrap()
            .status,
        200
    );

    server.shutdown();
    // the listener is gone: a fresh connection must fail
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "port still accepting after shutdown"
    );
}

/// The wire shutdown endpoint unblocks `Server::wait`.
#[test]
fn wire_shutdown_unblocks_wait() {
    let (_engine, server, _graph) = start(ServerConfig::default());
    let addr = server.addr();
    let waited = std::thread::spawn(move || server.wait());

    let mut client = Client::connect(addr).unwrap();
    let resp = client.shutdown_server().unwrap();
    assert_eq!(resp.status, 200);
    waited
        .join()
        .expect("wait() must return after wire shutdown");
}

/// `POST /v1/explain` returns one well-formed profile JSON object per
/// query line, without disturbing the query path's answers.
#[test]
fn explain_endpoint_profiles_every_query() {
    let (_engine, server, graph) = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let queries = mixed_queries(&graph, 5, 17);
    let resp = client.explain(&queries, &graph).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let lines: Vec<&str> = resp.body.lines().collect();
    assert_eq!(lines.len(), queries.len(), "one profile per query");
    for line in &lines {
        let profile = rpq_server::json::Json::parse(line).expect("profile line is JSON");
        assert!(profile.get("plan").unwrap().as_str().is_some());
        assert!(!profile
            .get("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert!(profile.get("wall_us").unwrap().as_u64().is_some());
    }
    // explained traffic counts as served queries
    let m = client.metrics().unwrap();
    assert_eq!(m.get("queries").unwrap().as_u64(), Some(5));
    server.shutdown();
}

/// `/metrics` defaults to Prometheus text exposition (which must
/// round-trip the crate's own parser) and still serves the legacy JSON
/// under `Accept: application/json`; `/debug/trace` yields JSON lines
/// once tracing is on.
#[test]
fn prometheus_exposition_and_trace_ring_round_trip() {
    rpq_trace::tracer().set_enabled(true);
    let (_engine, server, graph) = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    assert_eq!(
        client
            .query(&mixed_queries(&graph, 4, 23), &graph)
            .unwrap()
            .status,
        200
    );

    let text = client.metrics_prometheus().unwrap();
    let samples =
        rpq_server::metrics::parse_prometheus_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    let get = |series: &str| {
        samples
            .iter()
            .find(|(s, _)| s == series)
            .unwrap_or_else(|| panic!("missing {series} in:\n{text}"))
            .1
    };
    assert_eq!(get("rpq_queries_total"), 4.0);
    assert_eq!(get("rpq_request_latency_seconds_count"), 1.0);
    assert!(get("rpq_uptime_seconds") > 0.0);
    // the coalescer recorded per-plan evaluation latency
    assert!(
        samples
            .iter()
            .any(|(s, _)| s.starts_with("rpq_plan_latency_seconds{plan=")),
        "no per-plan summary in:\n{text}"
    );

    // the JSON document is still there under content negotiation
    let m = client.metrics().unwrap();
    assert_eq!(m.get("queries").unwrap().as_u64(), Some(4));

    // the trace ring captured server spans; every line is valid JSON
    let trace = client.debug_trace().unwrap();
    assert!(!trace.is_empty(), "tracing enabled but ring is empty");
    for line in trace.lines() {
        rpq_server::json::Json::parse(line).expect("trace line is JSON");
    }
    assert!(
        trace.lines().any(|l| l.contains("\"scope\":\"server\"")),
        "no server-scope span in:\n{trace}"
    );
    server.shutdown();
}
