//! The threaded serving core: listener, connection threads, a bounded
//! admission queue, and a coalescing executor that feeds client batches
//! into the scatter-gather engine.
//!
//! ## Threading model
//!
//! * **accept thread** — owns the [`TcpListener`]; spawns one small-stack
//!   thread per connection. Stops on shutdown.
//! * **connection threads** — parse HTTP requests, run the wire codec,
//!   and *submit* query batches to the admission queue; they never touch
//!   the engine for reads. Updates go straight to
//!   [`UpdatableEngine::apply`] (the engine serializes writers
//!   internally), gated by a concurrent-writer cap.
//! * **coalescer thread** — drains the admission queue, concatenates the
//!   pending submissions into one batch, runs it through the engine as a
//!   [`QueryService`] against one snapshot, and hands each submission its
//!   slice of the answers. Cross-connection coalescing is what lets the
//!   engine's batch-wide reach-set memoization work across clients.
//!
//! ## Admission control
//!
//! The queue is bounded ([`ServerConfig::queue_capacity`]). A submission
//! that finds it full is refused immediately with **429** and a
//! `Retry-After` header — backpressure instead of unbounded buffering.
//! [`ServerConfig::coalesce_window`] optionally holds the coalescer for a
//! beat after work arrives so concurrent clients land in one engine
//! batch; it is also what makes backpressure deterministic to test.

use crate::http::{read_request, HttpError, Request, Response};
use crate::metrics::Metrics;
use crate::wire;
use rpq_engine::{Query, QueryService, Snapshot, UpdatableEngine};
use rpq_graph::AttrId;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Admission-queue capacity in *requests*; a full queue answers 429.
    pub queue_capacity: usize,
    /// Max submissions coalesced into one engine batch.
    pub coalesce_max: usize,
    /// How long the coalescer waits after work arrives before draining,
    /// letting concurrent submissions pile into one batch. Zero (the
    /// default) serves lowest-latency; a few ms trades latency for
    /// batch-wide memoization.
    pub coalesce_window: Duration,
    /// Concurrent update requests admitted before writers get 429.
    pub max_pending_updates: usize,
    /// Per-connection read timeout (bounds idle keep-alives).
    pub read_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 128,
            coalesce_max: 64,
            coalesce_window: Duration::ZERO,
            max_pending_updates: 32,
            read_timeout: Duration::from_secs(30),
            max_body_bytes: 8 << 20,
        }
    }
}

/// `Retry-After` seconds sent with 429 responses.
const RETRY_AFTER_SECS: u32 = 1;

/// One admitted query submission waiting for the coalescer.
struct Pending {
    queries: Vec<Query>,
    reply: mpsc::SyncSender<Answer>,
    /// When the connection thread pushed this submission — the coalescer
    /// derives the queue-wait trace span from the oldest one in a drain.
    submitted: Instant,
}

struct Answer {
    body: String,
    version: u64,
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<Pending>,
    closed: bool,
}

/// Bounded multi-producer queue with a single coalescing consumer.
struct WorkQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
}

impl WorkQueue {
    fn new(capacity: usize) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            capacity,
        }
    }

    /// Admit a submission, or refuse immediately when full/closed.
    fn try_push(&self, p: Pending) -> Result<(), ()> {
        let mut s = self.state.lock().expect("queue lock");
        if s.closed || s.items.len() >= self.capacity {
            return Err(());
        }
        s.items.push_back(p);
        self.cond.notify_one();
        Ok(())
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Block until work arrives (or the queue closes empty), then drain
    /// up to `max` submissions. `window` holds the drain after the first
    /// arrival so concurrent submissions coalesce.
    fn pop_coalesced(&self, max: usize, window: Duration) -> Option<Vec<Pending>> {
        let mut s = self.state.lock().expect("queue lock");
        while s.items.is_empty() {
            if s.closed {
                return None;
            }
            s = self.cond.wait(s).expect("queue lock");
        }
        if !window.is_zero() {
            drop(s);
            thread::sleep(window);
            s = self.state.lock().expect("queue lock");
        }
        let n = s.items.len().min(max);
        Some(s.items.drain(..n).collect())
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.cond.notify_all();
    }
}

struct Shared {
    engine: Arc<UpdatableEngine>,
    metrics: Arc<Metrics>,
    queue: WorkQueue,
    config: ServerConfig,
    addr: SocketAddr,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    pending_updates: AtomicUsize,
    /// Read halves of live connections, so shutdown can unblock idle
    /// keep-alive reads instead of waiting out their timeout.
    conn_streams: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// leaves the threads running for the rest of the process.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    coalescer: Option<thread::JoinHandle<()>>,
}

/// A cheap clonable handle for signalling shutdown from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Ask the server to stop accepting and drain. Idempotent.
    pub fn shutdown(&self) {
        signal_shutdown(&self.shared);
    }
}

impl Server {
    /// Bind, spawn the accept and coalescer threads, return immediately.
    pub fn start(engine: Arc<UpdatableEngine>, config: ServerConfig) -> io::Result<Server> {
        let listener =
            TcpListener::bind(config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable addr")
            })?)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            metrics: Arc::new(Metrics::new()),
            queue: WorkQueue::new(config.queue_capacity.max(1)),
            config,
            addr,
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            pending_updates: AtomicUsize::new(0),
            conn_streams: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let coalescer = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("rpq-coalescer".into())
                .spawn(move || coalescer_loop(&shared))?
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("rpq-accept".into())
                .spawn(move || accept_loop(listener, &shared))?
        };

        Ok(Server {
            shared,
            accept: Some(accept),
            coalescer: Some(coalescer),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's metrics registry (shared with `/metrics`).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// A handle that can signal shutdown from elsewhere.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Block until the server is shut down (via [`Server::shutdown`], a
    /// [`ServerHandle`], or `POST /v1/shutdown`), then drain gracefully.
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.coalescer.take() {
            let _ = t.join();
        }
        drain_connections(&self.shared);
    }

    /// Graceful shutdown: stop accepting, refuse new admissions, finish
    /// in-flight requests, join the serving threads.
    pub fn shutdown(self) {
        signal_shutdown(&self.shared);
        self.wait();
    }
}

fn signal_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already signalled
    }
    shared.queue.close();
    // half-close the read side of every live connection: idle keep-alive
    // reads return EOF at once, while in-flight responses still go out
    if let Ok(conns) = shared.conn_streams.lock() {
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
    // wake the blocking accept() with a throwaway connection
    let _ = TcpStream::connect(shared.addr);
}

/// Wait (bounded) for connection threads to finish their last responses.
fn drain_connections(shared: &Shared) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while shared.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        shared.active_connections.fetch_add(1, Ordering::SeqCst);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let (Ok(clone), Ok(mut conns)) = (stream.try_clone(), shared.conn_streams.lock()) {
            conns.insert(conn_id, clone);
        }
        let conn_shared = Arc::clone(shared);
        // small stacks: at thousands of connections the default 8 MiB
        // per thread is the limit, not the sockets
        let spawned = thread::Builder::new()
            .name("rpq-conn".into())
            .stack_size(256 * 1024)
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                if let Ok(mut conns) = conn_shared.conn_streams.lock() {
                    conns.remove(&conn_id);
                }
                conn_shared
                    .active_connections
                    .fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            if let Ok(mut conns) = shared.conn_streams.lock() {
                conns.remove(&conn_id);
            }
            shared.active_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn coalescer_loop(shared: &Shared) {
    let cfg = &shared.config;
    let tracer = rpq_trace::tracer();
    while let Some(batch) = shared
        .queue
        .pop_coalesced(cfg.coalesce_max.max(1), cfg.coalesce_window)
    {
        let drained = Instant::now();
        let mut all = Vec::with_capacity(batch.iter().map(|p| p.queries.len()).sum());
        for p in &batch {
            all.extend_from_slice(&p.queries);
        }
        let snapshot = shared.engine.snapshot();
        // diff the snapshot memo's cumulative counters around the batch:
        // the memo is pinned with the snapshot Arc, so the delta is exact
        // even if a writer publishes a newer version mid-batch
        let sem0 = snapshot.semantic_stats();
        let result = run_on_service(snapshot.as_ref(), &all);
        shared
            .metrics
            .record_semcache(&sem0, &snapshot.semantic_stats());
        let executed = Instant::now();
        // per-plan-variant evaluation latency (worker wall time, not
        // request time — isolates engine cost from queueing)
        for item in result.items() {
            shared
                .metrics
                .plan_histogram(item.plan.name())
                .record(item.time.as_micros() as u64);
        }
        let version = snapshot.version();
        // queue-wait and execute are recorded *before* the replies go
        // out, so a client that got its answer is guaranteed to see its
        // batch's spans in /debug/trace
        if tracer.enabled() {
            let oldest = batch.iter().map(|p| p.submitted).min().unwrap_or(drained);
            tracer.record_span(
                "server",
                "queue-wait",
                drained - oldest,
                &format!("submissions={} queries={}", batch.len(), all.len()),
            );
            tracer.record_span(
                "server",
                "execute",
                executed - drained,
                &format!("queries={} version={version}", all.len()),
            );
        }
        let mut offset = 0;
        for p in &batch {
            let items = &result.items()[offset..offset + p.queries.len()];
            offset += p.queries.len();
            // a receiver that gave up (timeout, dead connection) is fine
            let _ = p.reply.send(Answer {
                body: wire::encode_items(items),
                version,
            });
        }
        if tracer.enabled() {
            tracer.record_span(
                "server",
                "serialize",
                executed.elapsed(),
                &format!("responses={}", batch.len()),
            );
        }
    }
}

/// The single point where answers are computed: everything the server
/// serves goes through the object-safe [`QueryService`] surface, so any
/// backend implementing the trait could sit here.
fn run_on_service(service: &dyn QueryService, queries: &[Query]) -> rpq_engine::BatchResult {
    service.run_batch(queries)
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;

    loop {
        let req = match read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(Some(req)) => req,
            Ok(None) => break,              // clean EOF
            Err(HttpError::Io(_)) => break, // timeout or reset
            Err(HttpError::TooLarge) => {
                let _ = Response::error(413, "request too large").write(&mut writer, false);
                break;
            }
            Err(HttpError::Malformed(msg)) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let _ = Response::error(400, msg).write(&mut writer, false);
                break;
            }
        };

        let client_close = req.wants_close();
        let resp = dispatch(&req, shared);
        if resp.status >= 400 && resp.status != 429 {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        let closing = client_close || shared.shutdown.load(Ordering::SeqCst);
        if resp.write(&mut writer, !closing).is_err() || closing {
            break;
        }
    }
    let _ = writer.flush();
}

fn dispatch(req: &Request, shared: &Shared) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/query") => handle_query(req, shared),
        ("POST", "/v1/explain") => handle_explain(req, shared),
        ("POST", "/v1/update") => handle_update(req, shared),
        ("GET", "/metrics") => handle_metrics(req, shared),
        ("GET", "/debug/trace") => handle_trace(),
        ("GET", "/v1/schema") => handle_schema(shared),
        ("POST", "/v1/shutdown") => {
            signal_shutdown(shared);
            Response::json(200, "{\"ok\": true}\n")
        }
        ("GET" | "POST", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, "method not allowed"),
    }
}

fn engine_error_response(e: &rpq_engine::EngineError) -> Response {
    Response::error(wire::status_for(e), &e.to_string())
}

fn handle_query(req: &Request, shared: &Shared) -> Response {
    let Some(body) = req.body_str() else {
        return Response::error(400, "body is not valid utf-8");
    };
    let started = Instant::now();
    let snapshot = shared.engine.snapshot();
    let queries = match wire::parse_query_body(body, snapshot.graph()) {
        Ok(q) => q,
        Err(e) => return engine_error_response(&e),
    };
    drop(snapshot);
    let n = queries.len();
    if n == 0 {
        return Response::json(200, "").with_header("X-Rpq-Version", shared.engine.version());
    }

    let (tx, rx) = mpsc::sync_channel(1);
    let pending = Pending {
        queries,
        reply: tx,
        submitted: started,
    };
    if shared.queue.try_push(pending).is_err() {
        shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::error(429, "admission queue full")
            .with_header("Retry-After", RETRY_AFTER_SECS);
    }
    match rx.recv_timeout(Duration::from_secs(120)) {
        Ok(answer) => {
            let us = started.elapsed().as_micros() as u64;
            shared.metrics.latency.record(us);
            shared
                .metrics
                .queries
                .fetch_add(n as u64, Ordering::Relaxed);
            shared
                .metrics
                .query_requests
                .fetch_add(1, Ordering::Relaxed);
            Response::json(200, answer.body).with_header("X-Rpq-Version", answer.version)
        }
        Err(_) => Response::error(503, "server is shutting down"),
    }
}

fn handle_update(req: &Request, shared: &Shared) -> Response {
    let Some(body) = req.body_str() else {
        return Response::error(400, "body is not valid utf-8");
    };
    let started = Instant::now();
    let snapshot = shared.engine.snapshot();
    let updates = match wire::parse_update_body(body, snapshot.graph()) {
        Ok(u) => u,
        Err(e) => return engine_error_response(&e),
    };
    drop(snapshot);
    // writer admission: the engine serializes writers on a mutex, so cap
    // how many connection threads may stack up behind it
    let waiting = shared.pending_updates.fetch_add(1, Ordering::SeqCst);
    if waiting >= shared.config.max_pending_updates {
        shared.pending_updates.fetch_sub(1, Ordering::SeqCst);
        shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::error(429, "too many concurrent updates")
            .with_header("Retry-After", RETRY_AFTER_SECS);
    }
    let applied = shared.engine.apply(&updates);
    shared.pending_updates.fetch_sub(1, Ordering::SeqCst);
    match applied {
        Ok(report) => {
            let us = started.elapsed().as_micros() as u64;
            shared.metrics.latency.record(us);
            shared
                .metrics
                .updates
                .fetch_add(report.applied as u64, Ordering::Relaxed);
            shared
                .metrics
                .update_requests
                .fetch_add(1, Ordering::Relaxed);
            shared.metrics.record_index(&report.index);
            Response::json(
                200,
                format!(
                    "{{\"version\": {}, \"applied\": {}}}\n",
                    report.snapshot.version(),
                    report.applied
                ),
            )
        }
        Err(e) => engine_error_response(&e),
    }
}

fn index_bytes(snapshot: &Snapshot) -> u64 {
    let engine = snapshot.engine();
    let mut bytes = 0u64;
    if let Some(labels) = engine.hop_labels() {
        bytes += labels.bytes() as u64;
    }
    if engine.matrix().is_some() {
        bytes += rpq_graph::DistanceMatrix::bytes_for(snapshot.graph()) as u64;
    }
    bytes
}

/// `POST /v1/explain` — same wire body as `/v1/query`, but every query
/// runs through the profiled path and the response is one
/// [`QueryProfile`](rpq_trace::QueryProfile) JSON object per line instead
/// of answers. Explain bypasses the admission queue: it is a diagnostic
/// read against the current snapshot, not throughput traffic, and its
/// profiles should not be distorted by coalescing with the hot path.
fn handle_explain(req: &Request, shared: &Shared) -> Response {
    let Some(body) = req.body_str() else {
        return Response::error(400, "body is not valid utf-8");
    };
    let started = Instant::now();
    let snapshot = shared.engine.snapshot();
    let queries = match wire::parse_query_body(body, snapshot.graph()) {
        Ok(q) => q,
        Err(e) => return engine_error_response(&e),
    };
    let mut out = String::new();
    let sem0 = snapshot.semantic_stats();
    for query in &queries {
        let (_, profile) = snapshot.run_query_profiled(query);
        out.push_str(&profile.to_json());
        out.push('\n');
    }
    shared
        .metrics
        .record_semcache(&sem0, &snapshot.semantic_stats());
    shared
        .metrics
        .latency
        .record(started.elapsed().as_micros() as u64);
    shared
        .metrics
        .queries
        .fetch_add(queries.len() as u64, Ordering::Relaxed);
    shared
        .metrics
        .query_requests
        .fetch_add(1, Ordering::Relaxed);
    Response::json(200, out).with_header("X-Rpq-Version", snapshot.version())
}

/// `GET /debug/trace` — the process tracer's ring buffer as JSON lines,
/// oldest first. Empty body when tracing is disabled or nothing has been
/// recorded yet.
fn handle_trace() -> Response {
    Response::text(
        200,
        "application/x-ndjson",
        rpq_trace::tracer().to_json_lines(),
    )
}

/// `GET /metrics`, content-negotiated: Prometheus text exposition by
/// default, the legacy JSON document under `Accept: application/json`.
fn handle_metrics(req: &Request, shared: &Shared) -> Response {
    let snapshot = shared.engine.snapshot();
    let depth = shared.queue.depth();
    let version = snapshot.version();
    let bytes = index_bytes(&snapshot);
    let state = snapshot.index_state().as_str();
    let wants_json = req
        .header("accept")
        .is_some_and(|a| a.contains("application/json"));
    if wants_json {
        Response::json(200, shared.metrics.render(depth, version, bytes, state))
    } else {
        Response::text(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            shared
                .metrics
                .render_prometheus(depth, version, bytes, state),
        )
    }
}

fn handle_schema(shared: &Shared) -> Response {
    let snapshot = shared.engine.snapshot();
    let graph = snapshot.graph();
    let schema = graph.schema();
    let attrs: Vec<String> = (0..schema.len())
        .map(|i| format!("\"{}\"", crate::json::escape(schema.name(AttrId(i as u16)))))
        .collect();
    let colors: Vec<String> = graph
        .alphabet()
        .colors()
        .map(|c| format!("\"{}\"", crate::json::escape(graph.alphabet().name(c))))
        .collect();
    Response::json(
        200,
        format!(
            concat!(
                "{{\"protocol\": {}, \"nodes\": {}, \"edges\": {}, ",
                "\"version\": {}, \"attrs\": [{}], \"colors\": [{}]}}\n"
            ),
            wire::PROTOCOL_VERSION,
            graph.node_count(),
            graph.edge_count(),
            snapshot.version(),
            attrs.join(", "),
            colors.join(", "),
        ),
    )
}
