//! `rpq-server` — a networked serving front-end for the query engine.
//!
//! The rest of the workspace answers queries in-process; this crate puts
//! a process boundary in front of it: a hand-rolled, threaded HTTP/1.1
//! server (`std::net` only — the build environment has no crates.io
//! access) that owns an [`UpdatableEngine`](rpq_engine::UpdatableEngine)
//! and speaks a versioned line/JSON wire format.
//!
//! * [`wire`] — the codec: tab-separated query/update request lines with
//!   line-numbered rejection of malformed frames, canonical JSON-lines
//!   answers, and the [`EngineError`](rpq_engine::EngineError) → HTTP
//!   status mapping.
//! * [`server`] — listener, per-connection threads, the bounded
//!   admission queue (full ⇒ **429** + `Retry-After`), the coalescing
//!   executor that merges concurrent clients into one scatter-gather
//!   batch, and graceful shutdown.
//! * [`metrics`] — the `/metrics` registry: qps, interpolated p50/p99
//!   latency, queue depth, snapshot version, index bytes, per-plan
//!   latency summaries and repair-phase timings — rendered as Prometheus
//!   text exposition by default, legacy JSON under
//!   `Accept: application/json`.
//! * [`client`] — the blocking client the load generator and tests use.
//! * [`http`] / [`json`] — the minimal protocol plumbing underneath.
//!
//! ## Endpoints (wire protocol v1)
//!
//! | Endpoint            | Payload                                        |
//! |---------------------|------------------------------------------------|
//! | `POST /v1/query`    | one query per line → one JSON answer per line  |
//! | `POST /v1/explain`  | same body → one `QueryProfile` JSON per line   |
//! | `POST /v1/update`   | one edge update per line → `{version, applied}`|
//! | `GET /metrics`      | Prometheus text (JSON via `Accept` header)     |
//! | `GET /debug/trace`  | trace ring as JSON lines, oldest first         |
//! | `GET /v1/schema`    | graph vocabulary (attrs, colors, sizes)        |
//! | `POST /v1/shutdown` | graceful shutdown                              |
//!
//! ```no_run
//! use rpq_engine::UpdatableEngine;
//! use rpq_server::{Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(UpdatableEngine::new(rpq_graph::gen::essembly()));
//! let server = Server::start(engine, ServerConfig::default()).unwrap();
//! println!("serving on http://{}", server.addr());
//! server.wait(); // until POST /v1/shutdown
//! ```

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{Client, WireResponse};
pub use metrics::Metrics;
pub use server::{Server, ServerConfig, ServerHandle};
