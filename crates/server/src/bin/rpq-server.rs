//! `rpq-server` — serve RQ/PQ traffic over HTTP.
//!
//! ```text
//! rpq-server [ADDR] [--gen N [--seed S]] [--graph FILE]
//!            [--queue N] [--window-ms MS] [--matrix-limit N]
//!            [--no-trace] [--slow-query-us US]
//! ```
//!
//! With `--graph`, the file is read in the edge-list format of
//! `rpq_graph::io`; otherwise a `--gen N`-node youtube-like graph is
//! generated (default 10 000 nodes, seed 42) — start `rpq-load` with the
//! same `--gen`/`--seed` so both sides share the vocabulary. The server
//! runs until `POST /v1/shutdown`.

use rpq_engine::{EngineConfig, UpdatableEngine};
use rpq_server::{Server, ServerConfig};
use std::io::BufReader;
use std::sync::Arc;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("rpq-server: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7411".to_owned();
    let mut gen_nodes = 10_000usize;
    let mut seed = 42u64;
    let mut graph_file: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut matrix_limit: Option<usize> = None;
    let mut trace = true;
    let mut slow_query_us = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--gen" => {
                gen_nodes = value("--gen")
                    .parse()
                    .unwrap_or_else(|_| fail("--gen expects a node count"))
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("--seed expects a u64"))
            }
            "--graph" => graph_file = Some(value("--graph")),
            "--queue" => {
                config.queue_capacity = value("--queue")
                    .parse()
                    .unwrap_or_else(|_| fail("--queue expects a count"))
            }
            "--window-ms" => {
                config.coalesce_window = Duration::from_millis(
                    value("--window-ms")
                        .parse()
                        .unwrap_or_else(|_| fail("--window-ms expects milliseconds")),
                )
            }
            "--matrix-limit" => {
                matrix_limit = Some(
                    value("--matrix-limit")
                        .parse()
                        .unwrap_or_else(|_| fail("--matrix-limit expects a node count")),
                )
            }
            "--no-trace" => trace = false,
            "--slow-query-us" => {
                slow_query_us = value("--slow-query-us")
                    .parse()
                    .unwrap_or_else(|_| fail("--slow-query-us expects microseconds"))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: rpq-server [ADDR] [--gen N] [--seed S] [--graph FILE] \
                     [--queue N] [--window-ms MS] [--matrix-limit N] \
                     [--no-trace] [--slow-query-us US]"
                );
                return;
            }
            other if !other.starts_with('-') => addr = other.to_owned(),
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    config.addr = addr;

    let graph = match &graph_file {
        Some(path) => {
            let file = std::fs::File::open(path)
                .unwrap_or_else(|e| fail(&format!("cannot open {path}: {e}")));
            rpq_graph::io::read_edge_list(&mut BufReader::new(file))
                .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
        }
        None => rpq_graph::gen::youtube_like(gen_nodes, seed),
    };
    eprintln!(
        "graph ready: {} nodes / {} edges ({} colors)",
        graph.node_count(),
        graph.edge_count(),
        graph.alphabet().len()
    );

    // the serving binary runs with the trace ring on by default: the
    // per-event cost is one relaxed-atomic sequence plus a ring slot, and
    // /debug/trace is only useful when something was recorded
    rpq_trace::tracer().set_enabled(trace);
    let mut builder = EngineConfig::builder().slow_query_us(slow_query_us);
    if let Some(limit) = matrix_limit {
        builder = builder.matrix_node_limit(limit);
    }
    let engine_config = builder
        .build()
        .unwrap_or_else(|e| fail(&format!("bad engine config: {e}")));
    let engine = Arc::new(UpdatableEngine::with_config(graph, engine_config));

    let server =
        Server::start(engine, config).unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    eprintln!(
        "rpq-server listening on http://{} (metrics: /metrics, shutdown: POST /v1/shutdown)",
        server.addr()
    );
    server.wait();
    eprintln!("rpq-server: drained, bye");
}
