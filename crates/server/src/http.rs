//! A deliberately small HTTP/1.1 codec over `std::net`.
//!
//! The build environment has no crates.io access, so the server speaks
//! just enough HTTP for its own wire format: request line + headers +
//! `Content-Length` bodies, keep-alive by default (1.1 semantics),
//! `Connection: close` honored, hard limits on header and body sizes.
//! No chunked encoding, no TLS, no pipelining guarantees beyond
//! request/response alternation — clients that need more belong behind a
//! reverse proxy.

use std::io::{self, BufRead, Write};

/// Cap on the request line plus all headers (a malformed peer cannot make
/// the server buffer unboundedly).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to drop the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Head or body exceeded the configured limit.
    TooLarge,
    /// Syntactically broken request.
    Malformed(&'static str),
    /// Transport failure (includes read timeouts on idle keep-alives).
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Read one request. `Ok(None)` means the peer closed cleanly before
/// sending anything (the normal end of a keep-alive connection).
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<Option<Request>, HttpError> {
    let mut head_bytes = 0usize;
    let mut line = String::new();
    // tolerate a stray blank line between pipelined requests
    loop {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        head_bytes += n;
        if !line.trim_end_matches(['\r', '\n']).is_empty() {
            break;
        }
    }
    let request_line = line.trim_end_matches(['\r', '\n']).to_owned();
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("request line without a path"))?
        .to_owned();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("request line without a version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("not an HTTP/1.x request"));
    }

    let mut headers = Vec::new();
    loop {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return Err(HttpError::Malformed("eof inside headers"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed
            .split_once(':')
            .ok_or(HttpError::Malformed("header without ':'"))?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;

    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// One response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON-bodied response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    /// A response with an explicit content type (Prometheus text
    /// exposition, trace JSON-lines).
    pub fn text(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            headers: vec![("Content-Type".into(), content_type.into())],
            body: body.into(),
        }
    }

    /// The standard error shape: `{"error": "<msg>"}`.
    pub fn error(status: u16, msg: &str) -> Self {
        Response::json(
            status,
            format!("{{\"error\": \"{}\"}}\n", crate::json::escape(msg)),
        )
    }

    pub fn with_header(mut self, name: &str, value: impl ToString) -> Self {
        self.headers.push((name.into(), value.to_string()));
        self
    }

    /// Serialize onto the stream. `keep_alive` controls the `Connection`
    /// header; the caller must actually honor it afterwards.
    pub fn write(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, status_text(self.status));
        for (k, v) in &self.headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n"
        } else {
            "Connection: close\r\n"
        });
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the handful of codes the server emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A decoded response: status, headers, body.
pub type RawResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// Client side: read one response (status, headers, body).
pub fn read_response(r: &mut impl BufRead) -> Result<RawResponse, HttpError> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(HttpError::Malformed("connection closed before response"));
    }
    let mut parts = line.trim_end_matches(['\r', '\n']).splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("not an HTTP/1.x response"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(HttpError::Malformed("bad status code"))?;

    let mut headers = Vec::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(HttpError::Malformed("eof inside response headers"));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_owned(), value.trim().to_owned()));
        }
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)?;
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_request_with_body() {
        let raw = b"POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut BufReader::new(&raw[..]), 1024)
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body_str(), Some("hello"));
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_malformed() {
        assert!(matches!(
            read_request(&mut BufReader::new(&b""[..]), 1024),
            Ok(None)
        ));
        assert!(matches!(
            read_request(&mut BufReader::new(&b"NOT-HTTP\r\n\r\n"[..]), 1024),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_up_front() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(&raw[..]), 10),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn response_round_trips() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\": true}")
            .with_header("X-Rpq-Version", 7)
            .write(&mut buf, true)
            .unwrap();
        let (status, headers, body) = read_response(&mut BufReader::new(&buf[..])).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\": true}");
        assert!(headers
            .iter()
            .any(|(k, v)| k == "X-Rpq-Version" && v == "7"));
    }
}
