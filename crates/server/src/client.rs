//! A blocking wire-protocol client over one keep-alive connection.
//!
//! This is the client the load generator, the integration tests, and the
//! CI smoke job drive. One [`Client`] owns one TCP connection; it is not
//! thread-safe (closed-loop load generators run one per thread).

use crate::http::{read_response, HttpError};
use crate::json::Json;
use crate::wire;
use rpq_core::incremental::Update;
use rpq_engine::Query;
use rpq_graph::Graph;
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A decoded server response.
#[derive(Debug, Clone)]
pub struct WireResponse {
    pub status: u16,
    /// `Retry-After` seconds, present on 429s.
    pub retry_after: Option<u64>,
    /// `X-Rpq-Version` (the snapshot version that answered), if present.
    pub version: Option<u64>,
    pub body: String,
}

impl WireResponse {
    pub fn is_ok(&self) -> bool {
        self.status == 200
    }

    /// The answer lines of a `/v1/query` response.
    pub fn lines(&self) -> impl Iterator<Item = &str> {
        self.body.lines()
    }
}

/// One keep-alive connection to an `rpq-server`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn io_err(e: HttpError) -> io::Error {
    match e {
        HttpError::Io(e) => e,
        HttpError::TooLarge => io::Error::new(io::ErrorKind::InvalidData, "response too large"),
        HttpError::Malformed(m) => io::Error::new(io::ErrorKind::InvalidData, m),
    }
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Send one request, read one response.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<WireResponse> {
        self.request_accept(method, path, body, None)
    }

    /// Send one request with an explicit `Accept` header (content
    /// negotiation on `/metrics`), read one response.
    pub fn request_accept(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        accept: Option<&str>,
    ) -> io::Result<WireResponse> {
        let accept = accept.map_or(String::new(), |a| format!("Accept: {a}\r\n"));
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: rpq\r\n{accept}Content-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        let (status, headers, body) = read_response(&mut self.reader).map_err(io_err)?;
        let header = |name: &str| {
            headers
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .and_then(|(_, v)| v.parse::<u64>().ok())
        };
        Ok(WireResponse {
            status,
            retry_after: header("retry-after"),
            version: header("x-rpq-version"),
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }

    /// Run a query batch. `graph` supplies the vocabulary for encoding
    /// (fetch it from the same source the server was built with).
    pub fn query(&mut self, queries: &[Query], graph: &Graph) -> io::Result<WireResponse> {
        self.request("POST", "/v1/query", &wire::encode_queries(queries, graph))
    }

    /// Apply an update batch.
    pub fn update(&mut self, updates: &[Update], graph: &Graph) -> io::Result<WireResponse> {
        self.request("POST", "/v1/update", &wire::encode_updates(updates, graph))
    }

    /// Scrape `/metrics` as parsed JSON (sends `Accept:
    /// application/json`; the server's default exposition is Prometheus
    /// text).
    pub fn metrics(&mut self) -> io::Result<Json> {
        let resp = self.request_accept("GET", "/metrics", "", Some("application/json"))?;
        Json::parse(&resp.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Scrape `/metrics` in its default Prometheus text exposition.
    pub fn metrics_prometheus(&mut self) -> io::Result<String> {
        Ok(self.request("GET", "/metrics", "")?.body)
    }

    /// Profile a query batch through `POST /v1/explain`: one
    /// `QueryProfile` JSON object per line.
    pub fn explain(&mut self, queries: &[Query], graph: &Graph) -> io::Result<WireResponse> {
        self.request("POST", "/v1/explain", &wire::encode_queries(queries, graph))
    }

    /// Dump the server's trace ring (`GET /debug/trace`), one JSON event
    /// per line, oldest first.
    pub fn debug_trace(&mut self) -> io::Result<String> {
        Ok(self.request("GET", "/debug/trace", "")?.body)
    }

    /// Fetch `/v1/schema` as parsed JSON.
    pub fn schema(&mut self) -> io::Result<Json> {
        let resp = self.request("GET", "/v1/schema", "")?;
        Json::parse(&resp.body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<WireResponse> {
        self.request("POST", "/v1/shutdown", "")
    }
}
