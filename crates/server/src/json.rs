//! Minimal JSON support for the wire format.
//!
//! The server emits JSON by formatting strings (answers are flat and the
//! shapes are fixed), and the client side needs just enough of a parser to
//! read `/metrics` scrapes and update acknowledgements. No crates.io
//! access, so both halves are hand-rolled here: [`escape`] for writing,
//! [`Json::parse`] for reading.

use std::collections::BTreeMap;
use std::fmt;

/// Escape a string for embedding in a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Numbers are kept as `f64` (the wire format never
/// sends integers large enough to lose precision: node ids are `u32`,
/// counters fit in 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

/// Parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse one JSON document; trailing garbage is an error.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are not produced by this
                            // wire format; reject rather than mis-decode
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("bad \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // copy one UTF-8 scalar
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_the_wire_uses() {
        let v = Json::parse(r#"{"version": 3, "applied": 2}"#).unwrap();
        assert_eq!(v.get("version").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("applied").unwrap().as_u64(), Some(2));

        let v = Json::parse(r#"{"pairs": [[0, 1], [2, 3]], "plan": "DM"}"#).unwrap();
        assert_eq!(v.get("plan").unwrap().as_str(), Some("DM"));
        let pairs = v.get("pairs").unwrap().as_array().unwrap();
        assert_eq!(pairs[1].as_array().unwrap()[0].as_u64(), Some(2));

        let v = Json::parse(r#"{"qps": 123.5, "err": "line 3: bad query"}"#).unwrap();
        assert_eq!(v.get("qps").unwrap().as_f64(), Some(123.5));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "tab\t nl\n quote\" back\\slash ünïcode \u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} extra",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
