//! Lock-free serving metrics: counters plus a log-bucketed latency
//! histogram, rendered as the `/metrics` JSON document.
//!
//! Every hot-path touch is a relaxed atomic increment; percentile math
//! happens only at scrape time. The histogram is log₂-bucketed with four
//! sub-buckets per octave (≤ ~19% quantile error), which is plenty for
//! p50/p99 serving dashboards and needs no allocation and no locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const LINEAR_CUTOFF: u64 = 16;
const SUBBUCKETS: usize = 4;
const BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - 4) * SUBBUCKETS;

/// Fixed-size histogram of microsecond latencies.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>, // BUCKETS entries
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
        }
    }
}

fn bucket_of(us: u64) -> usize {
    if us < LINEAR_CUTOFF {
        return us as usize;
    }
    let octave = 63 - us.leading_zeros() as usize; // >= 4
    let sub = ((us >> (octave - 2)) & 0b11) as usize;
    LINEAR_CUTOFF as usize + (octave - 4) * SUBBUCKETS + sub
}

/// Representative (upper-bound) value of a bucket, in µs.
fn bucket_value(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    let rest = idx - LINEAR_CUTOFF as usize;
    let octave = rest / SUBBUCKETS + 4;
    let sub = (rest % SUBBUCKETS) as u128;
    // low edge of the sub-bucket plus half a sub-bucket width; u128
    // intermediate because the top octave's upper edge is 2^64
    let v = (1u128 << octave) + (sub + 1) * (1u128 << (octave - 2)) - (1u128 << (octave - 3));
    u64::try_from(v).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    pub fn record(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` ∈ [0, 1], or 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_value(i);
            }
        }
        bucket_value(BUCKETS - 1)
    }
}

/// The server's metrics registry. One instance per [`Server`], shared by
/// every connection thread.
///
/// [`Server`]: crate::Server
pub struct Metrics {
    started: Instant,
    /// Individual queries answered (batch of 8 counts 8).
    pub queries: AtomicU64,
    /// Query requests answered (batch of 8 counts 1).
    pub query_requests: AtomicU64,
    /// Updates applied.
    pub updates: AtomicU64,
    /// Update requests answered.
    pub update_requests: AtomicU64,
    /// Requests refused with 429 because the admission queue was full.
    pub rejected: AtomicU64,
    /// Requests answered with a 4xx/5xx other than 429.
    pub errors: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Update batches whose label index was carried through an
    /// incremental repair ([`IndexState::Repaired`]).
    ///
    /// [`IndexState::Repaired`]: rpq_engine::IndexState::Repaired
    pub index_repairs: AtomicU64,
    /// Update batches that retired the label index and fell back to a
    /// background rebuild ([`IndexState::Rebuilding`]).
    ///
    /// [`IndexState::Rebuilding`]: rpq_engine::IndexState::Rebuilding
    pub index_rebuilds: AtomicU64,
    /// Cumulative landmarks invalidated across every repair (the work the
    /// incremental path did instead of full rebuilds).
    pub landmarks_invalidated: AtomicU64,
    /// Micros since `started` at the last moment the label index was
    /// known fresh (a `Repaired` publication). Zero = never.
    index_fresh_at_us: AtomicU64,
    /// Request latency (admission to response ready), µs.
    pub latency: LatencyHistogram,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            query_requests: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            update_requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            index_repairs: AtomicU64::new(0),
            index_rebuilds: AtomicU64::new(0),
            landmarks_invalidated: AtomicU64::new(0),
            index_fresh_at_us: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
        }
    }

    /// Fold one update's index-maintenance outcome into the counters:
    /// `Repaired` counts a repair and refreshes the freshness clock,
    /// `Rebuilding` counts a fallback, `Stale` (matrix regime) counts
    /// neither.
    pub fn record_index(&self, m: &rpq_engine::IndexMaintenance) {
        match m.state {
            rpq_engine::IndexState::Repaired => {
                self.index_repairs.fetch_add(1, Ordering::Relaxed);
                let us = (self.started.elapsed().as_micros() as u64).max(1);
                self.index_fresh_at_us.store(us, Ordering::Relaxed);
            }
            rpq_engine::IndexState::Rebuilding => {
                self.index_rebuilds.fetch_add(1, Ordering::Relaxed);
            }
            rpq_engine::IndexState::Stale => {}
        }
        self.landmarks_invalidated
            .fetch_add(m.landmarks_invalidated as u64, Ordering::Relaxed);
    }

    /// Seconds since the label index was last published fresh (a
    /// `Repaired` apply). Falls back to the server's uptime when no
    /// repair has happened yet — "fresh at some point before we started"
    /// is the most honest bound available.
    pub fn index_fresh_secs(&self) -> f64 {
        let at = self.index_fresh_at_us.load(Ordering::Relaxed);
        if at == 0 {
            return self.uptime_secs();
        }
        (self.uptime_secs() - at as f64 / 1e6).max(0.0)
    }

    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64().max(1e-9)
    }

    /// Queries per second over the server's lifetime.
    pub fn qps(&self) -> f64 {
        self.queries.load(Ordering::Relaxed) as f64 / self.uptime_secs()
    }

    /// Render the `/metrics` document. The engine-side gauges (queue
    /// depth, snapshot version, index bytes, index state) are sampled by
    /// the caller at scrape time; `index_state` is the current snapshot's
    /// [`IndexState::as_str`](rpq_engine::IndexState::as_str).
    pub fn render(
        &self,
        queue_depth: usize,
        snapshot_version: u64,
        index_bytes: u64,
        index_state: &str,
    ) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\"qps\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, ",
                "\"queries\": {}, \"query_requests\": {}, ",
                "\"updates\": {}, \"update_requests\": {}, ",
                "\"rejected\": {}, \"errors\": {}, \"connections\": {}, ",
                "\"queue_depth\": {}, \"snapshot_version\": {}, ",
                "\"index_bytes\": {}, \"index_state\": \"{}\", ",
                "\"index_repairs\": {}, \"index_rebuilds\": {}, ",
                "\"landmarks_invalidated\": {}, \"index_fresh_s\": {:.3}, ",
                "\"uptime_s\": {:.3}}}\n"
            ),
            self.qps(),
            self.latency.quantile(0.50),
            self.latency.quantile(0.99),
            g(&self.queries),
            g(&self.query_requests),
            g(&self.updates),
            g(&self.update_requests),
            g(&self.rejected),
            g(&self.errors),
            g(&self.connections),
            queue_depth,
            snapshot_version,
            index_bytes,
            index_state,
            g(&self.index_repairs),
            g(&self.index_rebuilds),
            g(&self.landmarks_invalidated),
            self.index_fresh_secs(),
            self.uptime_secs(),
        )
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut last = 0;
        for us in [0u64, 1, 15, 16, 17, 100, 1000, 65_536, u64::MAX / 2] {
            let b = bucket_of(us);
            assert!(b >= last, "bucket order broke at {us}");
            last = b;
            assert!(b < BUCKETS);
        }
        // a bucket's representative value maps back into that bucket
        for idx in [0usize, 5, 16, 17, 40, 100, BUCKETS - 1] {
            assert_eq!(bucket_of(bucket_value(idx)), idx, "idx {idx}");
        }
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = LatencyHistogram::default();
        for us in 1..=1000u64 {
            h.record(us);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // log-bucket resolution: within ~20% of the exact rank values
        assert!((400..=650).contains(&p50), "p50 = {p50}");
        assert!((800..=1300).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn render_is_valid_json() {
        let m = Metrics::new();
        m.latency.record(120);
        m.queries.fetch_add(7, Ordering::Relaxed);
        let doc = crate::json::Json::parse(&m.render(3, 9, 4096, "repaired")).unwrap();
        assert_eq!(doc.get("queries").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("snapshot_version").unwrap().as_u64(), Some(9));
        assert_eq!(doc.get("index_state").unwrap().as_str(), Some("repaired"));
        assert!(doc.get("qps").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn index_counters_track_apply_outcomes() {
        let m = Metrics::new();
        let repaired = rpq_engine::IndexMaintenance {
            state: rpq_engine::IndexState::Repaired,
            landmarks_invalidated: 12,
            ..Default::default()
        };
        let rebuilding = rpq_engine::IndexMaintenance {
            state: rpq_engine::IndexState::Rebuilding,
            ..Default::default()
        };
        // before any repair: freshness falls back to uptime
        assert!((m.index_fresh_secs() - m.uptime_secs()).abs() < 1e-3);
        m.record_index(&repaired);
        m.record_index(&repaired);
        m.record_index(&rebuilding);
        m.record_index(&rpq_engine::IndexMaintenance::default()); // Stale
        assert_eq!(m.index_repairs.load(Ordering::Relaxed), 2);
        assert_eq!(m.index_rebuilds.load(Ordering::Relaxed), 1);
        assert_eq!(m.landmarks_invalidated.load(Ordering::Relaxed), 24);
        assert!(m.index_fresh_secs() < m.uptime_secs());
        let doc = crate::json::Json::parse(&m.render(0, 1, 0, "rebuilding")).unwrap();
        assert_eq!(doc.get("index_repairs").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("index_rebuilds").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("landmarks_invalidated").unwrap().as_u64(), Some(24));
        assert!(doc.get("index_fresh_s").unwrap().as_f64().unwrap() >= 0.0);
    }
}
