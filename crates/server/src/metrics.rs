//! Lock-free serving metrics: counters plus log-bucketed latency
//! histograms, rendered either as the legacy `/metrics` JSON document or
//! as Prometheus text exposition (content-negotiated by the server).
//!
//! Every hot-path touch is a relaxed atomic increment; percentile math
//! happens only at scrape time. The histogram is log₂-bucketed with four
//! sub-buckets per octave, and quantiles interpolate linearly *within*
//! the landing bucket (≤ one sub-bucket width of error instead of the
//! mid-bucket ~19%), which is plenty for p50/p99 serving dashboards and
//! needs no allocation and no locks. The only locks in this module guard
//! cold maps (per-plan histogram registry, repair-phase accumulators)
//! touched once per batch or per update, never per query.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const LINEAR_CUTOFF: u64 = 16;
const SUBBUCKETS: usize = 4;
const BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - 4) * SUBBUCKETS;

/// Fixed-size histogram of microsecond latencies.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>, // BUCKETS entries
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

fn bucket_of(us: u64) -> usize {
    if us < LINEAR_CUTOFF {
        return us as usize;
    }
    let octave = 63 - us.leading_zeros() as usize; // >= 4
    let sub = ((us >> (octave - 2)) & 0b11) as usize;
    LINEAR_CUTOFF as usize + (octave - 4) * SUBBUCKETS + sub
}

/// Inclusive lower edge of a bucket, in µs.
fn bucket_low(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    let rest = idx - LINEAR_CUTOFF as usize;
    let octave = rest / SUBBUCKETS + 4;
    let sub = (rest % SUBBUCKETS) as u128;
    let v = (1u128 << octave) + sub * (1u128 << (octave - 2));
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Inclusive upper edge of a bucket, in µs (the largest value that maps
/// into it).
fn bucket_max(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    let rest = idx - LINEAR_CUTOFF as usize;
    let octave = rest / SUBBUCKETS + 4;
    let sub = (rest % SUBBUCKETS) as u128;
    let v = (1u128 << octave) + (sub + 1) * (1u128 << (octave - 2)) - 1;
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Representative (mid-bucket) value, in µs — the fallback when a
/// quantile rank lands past every populated bucket.
fn bucket_value(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        return idx as u64;
    }
    let rest = idx - LINEAR_CUTOFF as usize;
    let octave = rest / SUBBUCKETS + 4;
    let sub = (rest % SUBBUCKETS) as u128;
    // low edge of the sub-bucket plus half a sub-bucket width; u128
    // intermediate because the top octave's upper edge is 2^64
    let v = (1u128 << octave) + (sub + 1) * (1u128 << (octave - 2)) - (1u128 << (octave - 3));
    u64::try_from(v).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    pub fn record(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of every recorded value, in µs (the Prometheus `_sum` series).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` ∈ [0, 1], or 0 with no samples.
    ///
    /// The rank is located in its bucket and then **interpolated
    /// linearly** across the bucket's value range (midpoint convention:
    /// the `j`-th of `c` samples in a bucket sits at fraction
    /// `(j − ½) / c`). Against the old mid-bucket answer this cuts the
    /// worst-case error from half an octave to one sub-bucket width and
    /// makes quantiles of dense uniform data land on the exact rank
    /// value.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let frac = ((rank - seen) as f64 - 0.5) / c as f64;
                let low = bucket_low(i) as f64;
                let span = (bucket_max(i) - bucket_low(i)) as f64;
                return (low + frac * span).round() as u64;
            }
            seen += c;
        }
        bucket_value(BUCKETS - 1)
    }

    /// Samples with a value ≤ `bound_us`. Exact when `bound_us` is a
    /// bucket edge (powers of two are), which is how the Prometheus
    /// histogram `le` bounds are chosen.
    fn cumulative_le(&self, bound_us: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .take_while(|(i, _)| bucket_low(*i) <= bound_us)
            .filter(|(i, _)| bucket_max(*i) <= bound_us)
            .map(|(_, b)| b.load(Ordering::Relaxed))
            .sum()
    }
}

/// `le` bounds (µs) of the Prometheus request-latency histogram — octave
/// edges, so the cumulative counts are exact, spanning 16 µs … ~4 s.
const PROM_LE_BOUNDS_US: [u64; 10] = [
    16, 64, 256, 1024, 4096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
];

/// The server's metrics registry. One instance per [`Server`], shared by
/// every connection thread.
///
/// [`Server`]: crate::Server
pub struct Metrics {
    started: Instant,
    /// Individual queries answered (batch of 8 counts 8).
    pub queries: AtomicU64,
    /// Query requests answered (batch of 8 counts 1).
    pub query_requests: AtomicU64,
    /// Updates applied.
    pub updates: AtomicU64,
    /// Update requests answered.
    pub update_requests: AtomicU64,
    /// Requests refused with 429 because the admission queue was full.
    pub rejected: AtomicU64,
    /// Requests answered with a 4xx/5xx other than 429.
    pub errors: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Update batches whose label index was carried through an
    /// incremental repair ([`IndexState::Repaired`]).
    ///
    /// [`IndexState::Repaired`]: rpq_engine::IndexState::Repaired
    pub index_repairs: AtomicU64,
    /// Update batches that retired the label index and fell back to a
    /// background rebuild ([`IndexState::Rebuilding`]).
    ///
    /// [`IndexState::Rebuilding`]: rpq_engine::IndexState::Rebuilding
    pub index_rebuilds: AtomicU64,
    /// Cumulative landmarks invalidated across every repair (the work the
    /// incremental path did instead of full rebuilds).
    pub landmarks_invalidated: AtomicU64,
    /// Micros since `started` at the last moment the label index was
    /// known fresh (a `Repaired` publication). Zero = never.
    index_fresh_at_us: AtomicU64,
    /// Semantic reach-cache lookups answered by the exact canonical key.
    pub semcache_exact: AtomicU64,
    /// Semantic reach-cache lookups answered by filtering a containing
    /// cached entry (subsumption).
    pub semcache_subsumption: AtomicU64,
    /// Semantic reach-cache lookups no cached entry could answer.
    pub semcache_misses: AtomicU64,
    /// Cumulative µs spent filtering/re-verifying cached reach sets for
    /// subsumption answers.
    semcache_filter_us: AtomicU64,
    /// Request latency (admission to response ready), µs.
    pub latency: LatencyHistogram,
    /// Per-plan-variant engine evaluation latency, keyed by
    /// [`Plan::name`](rpq_engine::Plan::name). Registered lazily by the
    /// coalescer (one lock per plan per batch, not per query).
    plan_latency: Mutex<Vec<(&'static str, Arc<LatencyHistogram>)>>,
    /// Cumulative µs per apply/repair phase, folded from
    /// [`IndexMaintenance::phases`](rpq_engine::IndexMaintenance) —
    /// exported as `rpq_repair_phase_seconds_total{phase=...}`.
    repair_phase_us: Mutex<Vec<(&'static str, u64)>>,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            query_requests: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            update_requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            index_repairs: AtomicU64::new(0),
            index_rebuilds: AtomicU64::new(0),
            landmarks_invalidated: AtomicU64::new(0),
            index_fresh_at_us: AtomicU64::new(0),
            semcache_exact: AtomicU64::new(0),
            semcache_subsumption: AtomicU64::new(0),
            semcache_misses: AtomicU64::new(0),
            semcache_filter_us: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            plan_latency: Mutex::new(Vec::new()),
            repair_phase_us: Mutex::new(Vec::new()),
        }
    }

    /// The latency histogram for one plan variant, registering it on
    /// first use. `plan` comes from [`Plan::name`](rpq_engine::Plan::name)
    /// so the set is small and the scan is cheap.
    pub fn plan_histogram(&self, plan: &'static str) -> Arc<LatencyHistogram> {
        let mut reg = self.plan_latency.lock().expect("plan registry lock");
        if let Some((_, h)) = reg.iter().find(|(name, _)| *name == plan) {
            return Arc::clone(h);
        }
        let h = Arc::new(LatencyHistogram::default());
        reg.push((plan, Arc::clone(&h)));
        h
    }

    /// Fold one serving window's semantic-cache activity into the
    /// counters. `before`/`after` are samples of one snapshot memo's
    /// cumulative [`SemanticStats`](rpq_engine::SemanticStats) taken
    /// around a batch (the memo is versioned with the snapshot, so the
    /// caller diffs samples of the *same* snapshot and this accumulator
    /// survives version rotation).
    pub fn record_semcache(
        &self,
        before: &rpq_engine::SemanticStats,
        after: &rpq_engine::SemanticStats,
    ) {
        let add = |a: &AtomicU64, x: u64, y: u64| {
            a.fetch_add(y.saturating_sub(x), Ordering::Relaxed);
        };
        add(&self.semcache_exact, before.exact_hits, after.exact_hits);
        add(
            &self.semcache_subsumption,
            before.subsumption_hits,
            after.subsumption_hits,
        );
        add(&self.semcache_misses, before.misses, after.misses);
        add(
            &self.semcache_filter_us,
            before.filter_time.as_micros() as u64,
            after.filter_time.as_micros() as u64,
        );
    }

    /// Fold one update's index-maintenance outcome into the counters:
    /// `Repaired` counts a repair and refreshes the freshness clock,
    /// `Rebuilding` counts a fallback, `Stale` (matrix regime) counts
    /// neither. Phase durations accumulate into the
    /// `rpq_repair_phase_seconds_total` family.
    pub fn record_index(&self, m: &rpq_engine::IndexMaintenance) {
        match m.state {
            rpq_engine::IndexState::Repaired => {
                self.index_repairs.fetch_add(1, Ordering::Relaxed);
                let us = (self.started.elapsed().as_micros() as u64).max(1);
                self.index_fresh_at_us.store(us, Ordering::Relaxed);
            }
            rpq_engine::IndexState::Rebuilding => {
                self.index_rebuilds.fetch_add(1, Ordering::Relaxed);
            }
            rpq_engine::IndexState::Stale => {}
        }
        self.landmarks_invalidated
            .fetch_add(m.landmarks_invalidated as u64, Ordering::Relaxed);
        if !m.phases.is_empty() {
            let mut acc = self.repair_phase_us.lock().expect("phase accumulator lock");
            for &(phase, dur) in &m.phases {
                let us = dur.as_micros() as u64;
                match acc.iter_mut().find(|(name, _)| *name == phase) {
                    Some((_, total)) => *total += us,
                    None => acc.push((phase, us)),
                }
            }
        }
    }

    /// Seconds since the label index was last published fresh (a
    /// `Repaired` apply). Falls back to the server's uptime when no
    /// repair has happened yet — "fresh at some point before we started"
    /// is the most honest bound available.
    pub fn index_fresh_secs(&self) -> f64 {
        let at = self.index_fresh_at_us.load(Ordering::Relaxed);
        if at == 0 {
            return self.uptime_secs();
        }
        (self.uptime_secs() - at as f64 / 1e6).max(0.0)
    }

    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64().max(1e-9)
    }

    /// Queries per second over the server's lifetime.
    pub fn qps(&self) -> f64 {
        self.queries.load(Ordering::Relaxed) as f64 / self.uptime_secs()
    }

    /// Render the legacy `/metrics` JSON document (served under
    /// `Accept: application/json`). The engine-side gauges (queue depth,
    /// snapshot version, index bytes, index state) are sampled by the
    /// caller at scrape time; `index_state` is the current snapshot's
    /// [`IndexState::as_str`](rpq_engine::IndexState::as_str).
    pub fn render(
        &self,
        queue_depth: usize,
        snapshot_version: u64,
        index_bytes: u64,
        index_state: &str,
    ) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        format!(
            concat!(
                "{{\"qps\": {:.3}, \"p50_us\": {}, \"p99_us\": {}, ",
                "\"queries\": {}, \"query_requests\": {}, ",
                "\"updates\": {}, \"update_requests\": {}, ",
                "\"rejected\": {}, \"errors\": {}, \"connections\": {}, ",
                "\"queue_depth\": {}, \"snapshot_version\": {}, ",
                "\"index_bytes\": {}, \"index_state\": \"{}\", ",
                "\"index_repairs\": {}, \"index_rebuilds\": {}, ",
                "\"landmarks_invalidated\": {}, \"index_fresh_s\": {:.3}, ",
                "\"semcache_exact\": {}, \"semcache_subsumption\": {}, ",
                "\"semcache_misses\": {}, \"semcache_filter_s\": {:.6}, ",
                "\"slow_queries\": {}, \"uptime_s\": {:.3}}}\n"
            ),
            self.qps(),
            self.latency.quantile(0.50),
            self.latency.quantile(0.99),
            g(&self.queries),
            g(&self.query_requests),
            g(&self.updates),
            g(&self.update_requests),
            g(&self.rejected),
            g(&self.errors),
            g(&self.connections),
            queue_depth,
            snapshot_version,
            index_bytes,
            index_state,
            g(&self.index_repairs),
            g(&self.index_rebuilds),
            g(&self.landmarks_invalidated),
            self.index_fresh_secs(),
            g(&self.semcache_exact),
            g(&self.semcache_subsumption),
            g(&self.semcache_misses),
            g(&self.semcache_filter_us) as f64 / 1e6,
            rpq_trace::tracer().slow_queries(),
            self.uptime_secs(),
        )
    }

    /// Render the Prometheus text exposition (format 0.0.4) — the default
    /// `/metrics` body. Families:
    ///
    /// * `rpq_*_total` counters mirroring the JSON counters, plus
    ///   `rpq_slow_queries_total` from the process tracer;
    /// * gauges: `rpq_uptime_seconds`, `rpq_queue_depth`,
    ///   `rpq_snapshot_version`, `rpq_index_bytes`,
    ///   `rpq_index_fresh_seconds`, one-hot `rpq_index_state{state=...}`;
    /// * `rpq_request_latency_seconds` histogram with power-of-two `le`
    ///   bounds (cumulative counts are exact, not interpolated);
    /// * per-plan `rpq_plan_latency_seconds{plan=...}` summaries
    ///   (q0.5/q0.99 + `_sum`/`_count`);
    /// * `rpq_repair_phase_seconds_total{phase=...}` counters from the
    ///   live engine's apply/repair phase accounting.
    pub fn render_prometheus(
        &self,
        queue_depth: usize,
        snapshot_version: u64,
        index_bytes: u64,
        index_state: &str,
    ) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::with_capacity(4096);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "rpq_queries_total",
            "Individual queries answered.",
            g(&self.queries),
        );
        counter(
            "rpq_query_requests_total",
            "Query requests answered.",
            g(&self.query_requests),
        );
        counter("rpq_updates_total", "Updates applied.", g(&self.updates));
        counter(
            "rpq_update_requests_total",
            "Update requests answered.",
            g(&self.update_requests),
        );
        counter(
            "rpq_rejected_total",
            "Requests refused with 429 backpressure.",
            g(&self.rejected),
        );
        counter(
            "rpq_errors_total",
            "Requests answered with a non-429 4xx/5xx.",
            g(&self.errors),
        );
        counter(
            "rpq_connections_total",
            "Connections accepted.",
            g(&self.connections),
        );
        counter(
            "rpq_index_repairs_total",
            "Update batches whose label index was repaired incrementally.",
            g(&self.index_repairs),
        );
        counter(
            "rpq_index_rebuilds_total",
            "Update batches that fell back to a background index rebuild.",
            g(&self.index_rebuilds),
        );
        counter(
            "rpq_landmarks_invalidated_total",
            "Landmarks re-run across every incremental repair.",
            g(&self.landmarks_invalidated),
        );
        counter(
            "rpq_slow_queries_total",
            "Queries over the configured slow-query threshold.",
            rpq_trace::tracer().slow_queries(),
        );
        counter(
            "rpq_semcache_misses_total",
            "Semantic reach-cache lookups no cached entry could answer.",
            g(&self.semcache_misses),
        );

        out.push_str(concat!(
            "# HELP rpq_semcache_hits_total Semantic reach-cache hits by kind.\n",
            "# TYPE rpq_semcache_hits_total counter\n"
        ));
        for (kind, v) in [
            ("exact", g(&self.semcache_exact)),
            ("subsumption", g(&self.semcache_subsumption)),
        ] {
            out.push_str(&format!("rpq_semcache_hits_total{{kind=\"{kind}\"}} {v}\n"));
        }
        out.push_str(&format!(
            concat!(
                "# HELP rpq_semcache_filter_seconds_total Time spent filtering cached ",
                "reach sets for subsumption answers.\n",
                "# TYPE rpq_semcache_filter_seconds_total counter\n",
                "rpq_semcache_filter_seconds_total {}\n"
            ),
            g(&self.semcache_filter_us) as f64 / 1e6
        ));

        let mut gauge = |name: &str, help: &str, value: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        gauge(
            "rpq_uptime_seconds",
            "Seconds since the server started.",
            format!("{:.3}", self.uptime_secs()),
        );
        gauge(
            "rpq_queue_depth",
            "Admission-queue depth at scrape time.",
            queue_depth.to_string(),
        );
        gauge(
            "rpq_snapshot_version",
            "Currently published snapshot version.",
            snapshot_version.to_string(),
        );
        gauge(
            "rpq_index_bytes",
            "Resident bytes of the current snapshot's shared indices.",
            index_bytes.to_string(),
        );
        gauge(
            "rpq_index_fresh_seconds",
            "Seconds since the label index was last published fresh.",
            format!("{:.3}", self.index_fresh_secs()),
        );
        out.push_str(concat!(
            "# HELP rpq_index_state Current index state, one-hot.\n",
            "# TYPE rpq_index_state gauge\n"
        ));
        for state in ["stale", "repaired", "rebuilding"] {
            out.push_str(&format!(
                "rpq_index_state{{state=\"{state}\"}} {}\n",
                u8::from(state == index_state)
            ));
        }

        out.push_str(concat!(
            "# HELP rpq_request_latency_seconds Request latency, admission to response ready.\n",
            "# TYPE rpq_request_latency_seconds histogram\n"
        ));
        for bound in PROM_LE_BOUNDS_US {
            out.push_str(&format!(
                "rpq_request_latency_seconds_bucket{{le=\"{}\"}} {}\n",
                bound as f64 / 1e6,
                self.latency.cumulative_le(bound)
            ));
        }
        out.push_str(&format!(
            "rpq_request_latency_seconds_bucket{{le=\"+Inf\"}} {}\n",
            self.latency.count()
        ));
        out.push_str(&format!(
            "rpq_request_latency_seconds_sum {}\n",
            self.latency.sum_us() as f64 / 1e6
        ));
        out.push_str(&format!(
            "rpq_request_latency_seconds_count {}\n",
            self.latency.count()
        ));

        let plans = self.plan_latency.lock().expect("plan registry lock");
        if !plans.is_empty() {
            out.push_str(concat!(
                "# HELP rpq_plan_latency_seconds Engine evaluation latency per plan variant.\n",
                "# TYPE rpq_plan_latency_seconds summary\n"
            ));
            for (plan, h) in plans.iter() {
                for (q, label) in [(0.50, "0.5"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "rpq_plan_latency_seconds{{plan=\"{plan}\",quantile=\"{label}\"}} {}\n",
                        h.quantile(q) as f64 / 1e6
                    ));
                }
                out.push_str(&format!(
                    "rpq_plan_latency_seconds_sum{{plan=\"{plan}\"}} {}\n",
                    h.sum_us() as f64 / 1e6
                ));
                out.push_str(&format!(
                    "rpq_plan_latency_seconds_count{{plan=\"{plan}\"}} {}\n",
                    h.count()
                ));
            }
        }
        drop(plans);

        let phases = self.repair_phase_us.lock().expect("phase accumulator lock");
        if !phases.is_empty() {
            out.push_str(concat!(
                "# HELP rpq_repair_phase_seconds_total Cumulative apply/repair phase time.\n",
                "# TYPE rpq_repair_phase_seconds_total counter\n"
            ));
            for (phase, us) in phases.iter() {
                out.push_str(&format!(
                    "rpq_repair_phase_seconds_total{{phase=\"{phase}\"}} {}\n",
                    *us as f64 / 1e6
                ));
            }
        }
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Validate a Prometheus text exposition and return its samples as
/// `(series, value)` pairs, where `series` is the metric name with its
/// label set verbatim. Checks the things a scraper would choke on:
/// comment lines must be `# HELP`/`# TYPE` with a known type, sample
/// lines must be `name[{k="v",...}] value` with a parseable value, and
/// the document must contain at least one sample. Used by the CI smoke
/// job to assert `/metrics` round-trips.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", i + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(type_decl) = comment.strip_prefix("TYPE ") {
                let kind = type_decl.split_ascii_whitespace().nth(1).unwrap_or("");
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary") {
                    return err("unknown metric type");
                }
            } else if !comment.starts_with("HELP ") {
                return err("comment is neither HELP nor TYPE");
            }
            continue;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return err("sample line without a value");
        };
        if value.parse::<f64>().is_err() {
            return err("unparseable sample value");
        }
        let name_end = series.find('{').unwrap_or(series.len());
        let name = &series[..name_end];
        let valid_name = !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
        if !valid_name {
            return err("invalid metric name");
        }
        if name_end < series.len() {
            let labels = &series[name_end..];
            let Some(inner) = labels.strip_prefix('{').and_then(|l| l.strip_suffix('}')) else {
                return err("unbalanced label braces");
            };
            // our label values never contain commas or escaped quotes, so
            // a flat split is an exact parse of everything this server emits
            for pair in inner.split(',') {
                let well_formed = pair.split_once('=').is_some_and(|(k, v)| {
                    !k.is_empty() && v.len() >= 2 && v.starts_with('"') && v.ends_with('"')
                });
                if !well_formed {
                    return err("malformed label pair");
                }
            }
        }
        samples.push((series.to_owned(), value.parse::<f64>().unwrap()));
    }
    if samples.is_empty() {
        return Err("no samples in exposition".to_owned());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut last = 0;
        for us in [0u64, 1, 15, 16, 17, 100, 1000, 65_536, u64::MAX / 2] {
            let b = bucket_of(us);
            assert!(b >= last, "bucket order broke at {us}");
            last = b;
            assert!(b < BUCKETS);
        }
        // a bucket's representative value maps back into that bucket
        for idx in [0usize, 5, 16, 17, 40, 100, BUCKETS - 1] {
            assert_eq!(bucket_of(bucket_value(idx)), idx, "idx {idx}");
        }
        // the edges invert bucket_of exactly
        for idx in [0usize, 15, 16, 17, 40, 100, 200] {
            assert_eq!(bucket_of(bucket_low(idx)), idx, "low edge of {idx}");
            assert_eq!(bucket_of(bucket_max(idx)), idx, "max edge of {idx}");
            if idx > 0 {
                assert_eq!(bucket_max(idx - 1) + 1, bucket_low(idx), "gap at {idx}");
            }
        }
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = LatencyHistogram::default();
        for us in 1..=1000u64 {
            h.record(us);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        // log-bucket resolution: within ~20% of the exact rank values
        assert!((400..=650).contains(&p50), "p50 = {p50}");
        assert!((800..=1300).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum_us(), 500_500);
    }

    /// Pins the intra-bucket interpolation: on dense uniform data the
    /// interpolated quantile lands on (or next to) the exact rank value,
    /// where the old mid-bucket answer was off by up to half an octave
    /// (it returned 480/960 for this distribution).
    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = LatencyHistogram::default();
        for us in 1..=1000u64 {
            h.record(us);
        }
        assert_eq!(h.quantile(0.50), 500);
        assert_eq!(h.quantile(0.99), 1010);
        // a single sample interpolates to its bucket's midpoint, never
        // outside the bucket that recorded it
        let one = LatencyHistogram::default();
        one.record(100);
        let q = one.quantile(0.50);
        assert_eq!(bucket_of(q), bucket_of(100), "q = {q}");
        // sub-16 µs samples are exact (linear buckets)
        let lin = LatencyHistogram::default();
        lin.record(7);
        assert_eq!(lin.quantile(0.99), 7);
    }

    #[test]
    fn render_is_valid_json() {
        let m = Metrics::new();
        m.latency.record(120);
        m.queries.fetch_add(7, Ordering::Relaxed);
        let doc = crate::json::Json::parse(&m.render(3, 9, 4096, "repaired")).unwrap();
        assert_eq!(doc.get("queries").unwrap().as_u64(), Some(7));
        assert_eq!(doc.get("queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("snapshot_version").unwrap().as_u64(), Some(9));
        assert_eq!(doc.get("index_state").unwrap().as_str(), Some("repaired"));
        assert!(doc.get("qps").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn prometheus_exposition_round_trips_the_parser() {
        let m = Metrics::new();
        m.latency.record(120);
        m.latency.record(90_000);
        m.queries.fetch_add(7, Ordering::Relaxed);
        m.plan_histogram("DM").record(42);
        m.plan_histogram("JoinMatch/hop").record(4_200);
        m.record_index(&rpq_engine::IndexMaintenance {
            state: rpq_engine::IndexState::Repaired,
            phases: vec![
                ("validate", std::time::Duration::from_micros(10)),
                ("carry", std::time::Duration::from_micros(500)),
            ],
            ..Default::default()
        });
        m.record_semcache(
            &rpq_engine::SemanticStats::default(),
            &rpq_engine::SemanticStats {
                exact_hits: 5,
                subsumption_hits: 2,
                misses: 3,
                filter_time: std::time::Duration::from_micros(1500),
            },
        );
        let text = m.render_prometheus(3, 9, 4096, "repaired");
        let samples = parse_prometheus_text(&text).expect("exposition must parse");
        let get = |series: &str| {
            samples
                .iter()
                .find(|(s, _)| s == series)
                .unwrap_or_else(|| panic!("missing series {series} in:\n{text}"))
                .1
        };
        assert_eq!(get("rpq_queries_total"), 7.0);
        assert_eq!(get("rpq_queue_depth"), 3.0);
        assert_eq!(get("rpq_index_state{state=\"repaired\"}"), 1.0);
        assert_eq!(get("rpq_index_state{state=\"stale\"}"), 0.0);
        // exact cumulative counts at power-of-two le edges
        assert_eq!(
            get("rpq_request_latency_seconds_bucket{le=\"0.001024\"}"),
            1.0
        );
        assert_eq!(get("rpq_request_latency_seconds_bucket{le=\"+Inf\"}"), 2.0);
        assert_eq!(get("rpq_request_latency_seconds_count"), 2.0);
        assert!(get("rpq_plan_latency_seconds{plan=\"DM\",quantile=\"0.5\"}") > 0.0);
        assert_eq!(
            get("rpq_plan_latency_seconds_count{plan=\"JoinMatch/hop\"}"),
            1.0
        );
        assert!(get("rpq_repair_phase_seconds_total{phase=\"carry\"}") > 0.0);
        assert_eq!(get("rpq_index_repairs_total"), 1.0);
        assert_eq!(get("rpq_semcache_hits_total{kind=\"exact\"}"), 5.0);
        assert_eq!(get("rpq_semcache_hits_total{kind=\"subsumption\"}"), 2.0);
        assert_eq!(get("rpq_semcache_misses_total"), 3.0);
        assert!((get("rpq_semcache_filter_seconds_total") - 0.0015).abs() < 1e-9);
    }

    #[test]
    fn prometheus_parser_rejects_malformed_documents() {
        assert!(parse_prometheus_text("").is_err(), "empty: no samples");
        assert!(parse_prometheus_text("# FOO bar\nx 1\n").is_err());
        assert!(parse_prometheus_text("rpq_thing\n").is_err(), "no value");
        assert!(parse_prometheus_text("rpq_thing abc\n").is_err());
        assert!(parse_prometheus_text("9bad_name 1\n").is_err());
        assert!(parse_prometheus_text("x{le=\"1\" 1\n").is_err(), "brace");
        assert!(parse_prometheus_text("x{le=1} 1\n").is_err(), "quotes");
        assert!(parse_prometheus_text("# TYPE x wat\nx 1\n").is_err());
        assert!(parse_prometheus_text("x{le=\"+Inf\"} 3\n").is_ok());
    }

    #[test]
    fn concurrent_recording_never_corrupts_totals() {
        use std::sync::Arc;
        let m = Arc::new(Metrics::new());
        let threads = 8;
        let per_thread = 500u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        m.latency.record(t * 100 + i);
                        m.queries.fetch_add(1, Ordering::Relaxed);
                        m.plan_histogram(if i % 2 == 0 { "DM" } else { "biBFS" })
                            .record(i);
                    }
                });
            }
            // render concurrently with the writers: must not panic and
            // must stay parseable mid-flight
            for _ in 0..20 {
                let text = m.render_prometheus(0, 0, 0, "stale");
                parse_prometheus_text(&text).expect("mid-flight exposition parses");
            }
        });
        let total = threads * per_thread;
        assert_eq!(m.latency.count(), total);
        assert_eq!(m.queries.load(Ordering::Relaxed), total);
        let dm = m.plan_histogram("DM").count();
        let bfs = m.plan_histogram("biBFS").count();
        assert_eq!(dm + bfs, total);
        assert_eq!(dm, bfs);
    }

    #[test]
    fn index_counters_track_apply_outcomes() {
        let m = Metrics::new();
        let repaired = rpq_engine::IndexMaintenance {
            state: rpq_engine::IndexState::Repaired,
            landmarks_invalidated: 12,
            ..Default::default()
        };
        let rebuilding = rpq_engine::IndexMaintenance {
            state: rpq_engine::IndexState::Rebuilding,
            ..Default::default()
        };
        // before any repair: freshness falls back to uptime
        assert!((m.index_fresh_secs() - m.uptime_secs()).abs() < 1e-3);
        m.record_index(&repaired);
        m.record_index(&repaired);
        m.record_index(&rebuilding);
        m.record_index(&rpq_engine::IndexMaintenance::default()); // Stale
        assert_eq!(m.index_repairs.load(Ordering::Relaxed), 2);
        assert_eq!(m.index_rebuilds.load(Ordering::Relaxed), 1);
        assert_eq!(m.landmarks_invalidated.load(Ordering::Relaxed), 24);
        assert!(m.index_fresh_secs() < m.uptime_secs());
        let doc = crate::json::Json::parse(&m.render(0, 1, 0, "rebuilding")).unwrap();
        assert_eq!(doc.get("index_repairs").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("index_rebuilds").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("landmarks_invalidated").unwrap().as_u64(), Some(24));
        assert!(doc.get("index_fresh_s").unwrap().as_f64().unwrap() >= 0.0);
    }
}
