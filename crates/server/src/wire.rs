//! Wire format v1: line-oriented requests, JSON-lines answers.
//!
//! Requests are tab-separated lines (one query or update per line) so a
//! batch is trivially streamable and malformed input can be rejected with
//! a *line-numbered* error, mirroring the edge-list reader's hardening:
//!
//! ```text
//! rq<TAB>from-predicate<TAB>to-predicate<TAB>regex
//! pq<TAB>escaped pattern text (lang.rs syntax)
//! ins<TAB>u<TAB>v<TAB>color-name
//! del<TAB>u<TAB>v<TAB>color-name
//! ```
//!
//! Fields are escaped with `\t` → `\\t`, `\n` → `\\n`, `\r` → `\\r`,
//! `\\` → `\\\\`, so predicates and full multi-line PQ texts travel as a
//! single line. An *empty* predicate field means the trivially-true
//! predicate (its pretty-printed form `true` is display-only and does not
//! re-parse). Answers come back one JSON object per input line:
//!
//! ```text
//! {"kind": "rq", "plan": "DM", "pairs": [[0, 3], [2, 5]]}
//! {"kind": "pq", "plan": "JoinMatch/hop", "nodes": [[1], [4, 5]], "edges": [[[1, 4]], ...]}
//! ```
//!
//! Encoding is canonical — one byte string per answer — which is what
//! makes the server's "bit-identical to in-process evaluation" acceptance
//! checkable by literal string comparison.

use rpq_core::incremental::Update;
use rpq_core::lang::format_pq;
use rpq_engine::{BatchItem, EngineError, Query, QueryOutput};
use rpq_graph::{Graph, NodeId, WILDCARD};

/// Version tag of this wire format; lives in the URL namespace (`/v1/…`)
/// and the `/v1/schema` document.
pub const PROTOCOL_VERSION: u32 = 1;

/// Escape one field for embedding in a tab-separated line.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape_field`]. Rejects truncated or unknown escapes — a frame
/// that does not round-trip is a malformed frame, not a guess.
pub fn unescape_field(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("unknown escape '\\{other}'")),
            None => return Err("truncated escape at end of field".into()),
        }
    }
    Ok(out)
}

fn bad(line: usize, msg: impl Into<String>) -> EngineError {
    EngineError::BadQuery {
        line,
        msg: msg.into(),
    }
}

/// Encode one query as a single request line (no trailing newline).
pub fn encode_query(q: &Query, g: &Graph) -> String {
    match q {
        Query::Rq(rq) => {
            let pred = |p: &rpq_core::predicate::Predicate| {
                if p.is_trivial() {
                    String::new()
                } else {
                    escape_field(&p.display(g.schema()).to_string())
                }
            };
            format!(
                "rq\t{}\t{}\t{}",
                pred(&rq.from),
                pred(&rq.to),
                escape_field(&rq.regex.display(g.alphabet()).to_string())
            )
        }
        Query::Pq(pq) => format!(
            "pq\t{}",
            escape_field(&format_pq(pq, g.schema(), g.alphabet()))
        ),
    }
}

/// Encode a whole batch, one line per query.
pub fn encode_queries(queries: &[Query], g: &Graph) -> String {
    let mut out = String::new();
    for q in queries {
        out.push_str(&encode_query(q, g));
        out.push('\n');
    }
    out
}

/// Parse one request line (1-based `line` for error attribution).
pub fn parse_query_line(line_no: usize, line: &str, g: &Graph) -> Result<Query, EngineError> {
    let mut fields = line.split('\t');
    let op = fields.next().unwrap_or("");
    match op {
        "rq" => {
            let mut field = |name: &str| {
                fields
                    .next()
                    .ok_or_else(|| bad(line_no, format!("rq line is missing the {name} field")))
                    .and_then(|f| {
                        unescape_field(f).map_err(|e| bad(line_no, format!("{name} field: {e}")))
                    })
            };
            let from = field("source-predicate")?;
            let to = field("target-predicate")?;
            let regex = field("regex")?;
            if fields.next().is_some() {
                return Err(bad(line_no, "rq line has more than 4 fields"));
            }
            Query::parse_rq(&from, &to, &regex, g).map_err(|e| relocate(e, line_no))
        }
        "pq" => {
            let text = fields
                .next()
                .ok_or_else(|| bad(line_no, "pq line is missing the pattern text"))
                .and_then(|f| {
                    unescape_field(f).map_err(|e| bad(line_no, format!("pattern text: {e}")))
                })?;
            if fields.next().is_some() {
                return Err(bad(line_no, "pq line has more than 2 fields"));
            }
            Query::parse_pq(&text, g).map_err(|e| relocate_pq(e, line_no))
        }
        other => Err(bad(
            line_no,
            format!("unknown op {other:?} (expected rq or pq)"),
        )),
    }
}

/// Parse a request body: one query per non-empty line, errors carry the
/// 1-based body line number.
pub fn parse_query_body(body: &str, g: &Graph) -> Result<Vec<Query>, EngineError> {
    let mut queries = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        queries.push(parse_query_line(i + 1, line, g)?);
    }
    Ok(queries)
}

/// Stamp a parse error (reported against line 0 or a statement-internal
/// line) with the wire line it arrived on.
fn relocate(e: EngineError, line_no: usize) -> EngineError {
    match e {
        EngineError::BadQuery { msg, .. } => bad(line_no, msg),
        other => other,
    }
}

/// PQ texts are themselves line-oriented; keep the inner statement number
/// in the message, attribute the error to the wire line.
fn relocate_pq(e: EngineError, line_no: usize) -> EngineError {
    match e {
        EngineError::BadQuery { line: 0, msg } => bad(line_no, msg),
        EngineError::BadQuery { line, msg } => {
            bad(line_no, format!("pattern statement {line}: {msg}"))
        }
        other => other,
    }
}

/// Encode one update as a request line.
pub fn encode_update(u: &Update, g: &Graph) -> String {
    let (op, x, y, c) = match *u {
        Update::Insert(x, y, c) => ("ins", x, y, c),
        Update::Delete(x, y, c) => ("del", x, y, c),
    };
    let color = if c == WILDCARD {
        "_".to_owned() // rejected server-side, but encode faithfully
    } else {
        escape_field(g.alphabet().name(c))
    };
    format!("{op}\t{}\t{}\t{color}", x.0, y.0)
}

/// Encode a whole update batch, one line per update.
pub fn encode_updates(updates: &[Update], g: &Graph) -> String {
    let mut out = String::new();
    for u in updates {
        out.push_str(&encode_update(u, g));
        out.push('\n');
    }
    out
}

/// Parse one update line.
pub fn parse_update_line(line_no: usize, line: &str, g: &Graph) -> Result<Update, EngineError> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 4 {
        return Err(bad(
            line_no,
            format!("expected 4 tab-separated fields, got {}", fields.len()),
        ));
    }
    let node = |f: &str, name: &str| {
        f.parse::<u32>()
            .map(NodeId)
            .map_err(|_| bad(line_no, format!("{name} node id {f:?} is not a u32")))
    };
    let x = node(fields[1], "source")?;
    let y = node(fields[2], "target")?;
    let color_name =
        unescape_field(fields[3]).map_err(|e| bad(line_no, format!("color field: {e}")))?;
    let color = if color_name == "_" {
        WILDCARD // surfaces as EngineError::WildcardEdge in apply()
    } else {
        g.alphabet()
            .get(&color_name)
            .ok_or_else(|| bad(line_no, format!("unknown edge color {color_name:?}")))?
    };
    match fields[0] {
        "ins" => Ok(Update::Insert(x, y, color)),
        "del" => Ok(Update::Delete(x, y, color)),
        other => Err(bad(
            line_no,
            format!("unknown op {other:?} (expected ins or del)"),
        )),
    }
}

/// Parse an update body: one update per non-empty line.
pub fn parse_update_body(body: &str, g: &Graph) -> Result<Vec<Update>, EngineError> {
    let mut updates = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        updates.push(parse_update_line(i + 1, line, g)?);
    }
    Ok(updates)
}

/// Encode one answered query as its canonical JSON line (no newline).
pub fn encode_item(item: &BatchItem) -> String {
    match &item.output {
        QueryOutput::Rq(r) => {
            let pairs: Vec<String> = r
                .as_slice()
                .iter()
                .map(|(x, y)| format!("[{},{}]", x.0, y.0))
                .collect();
            format!(
                "{{\"kind\":\"rq\",\"plan\":\"{}\",\"pairs\":[{}]}}",
                crate::json::escape(item.plan.name()),
                pairs.join(",")
            )
        }
        QueryOutput::Pq(r) => {
            let nodes: Vec<String> = (0..r.node_count())
                .map(|u| {
                    let ids: Vec<String> =
                        r.node_matches(u).iter().map(|n| n.0.to_string()).collect();
                    format!("[{}]", ids.join(","))
                })
                .collect();
            let edges: Vec<String> = (0..r.edge_count())
                .map(|e| {
                    let pairs: Vec<String> = r
                        .edge_matches(e)
                        .iter()
                        .map(|(x, y)| format!("[{},{}]", x.0, y.0))
                        .collect();
                    format!("[{}]", pairs.join(","))
                })
                .collect();
            format!(
                "{{\"kind\":\"pq\",\"plan\":\"{}\",\"nodes\":[{}],\"edges\":[{}]}}",
                crate::json::escape(item.plan.name()),
                nodes.join(","),
                edges.join(",")
            )
        }
    }
}

/// Encode a run of answered queries, one JSON line per query — the body
/// of a `/v1/query` response.
pub fn encode_items(items: &[BatchItem]) -> String {
    let mut out = String::new();
    for item in items {
        out.push_str(&encode_item(item));
        out.push('\n');
    }
    out
}

/// The HTTP status an [`EngineError`] maps onto: client mistakes are
/// 400s, resource exhaustion on the serving side is a 503, config
/// problems are the server operator's bug (500).
pub fn status_for(e: &EngineError) -> u16 {
    match e {
        EngineError::BadQuery { .. }
        | EngineError::NodeOutOfRange { .. }
        | EngineError::WildcardEdge => 400,
        EngineError::IndexOverBudget { .. } | EngineError::BuildCancelled => 503,
        EngineError::Config(_) => 500,
        _ => 500, // EngineError is #[non_exhaustive]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::gen::essembly;

    #[test]
    fn field_escaping_round_trips() {
        for s in [
            "",
            "plain",
            "a\tb",
            "a\\nb",
            "tricky \\t literal",
            "nl\nnl\r",
        ] {
            assert_eq!(unescape_field(&escape_field(s)).unwrap(), s);
        }
        assert!(unescape_field("bad \\x escape").is_err());
        assert!(unescape_field("truncated \\").is_err());
    }

    #[test]
    fn rq_and_pq_lines_round_trip() {
        let g = essembly();
        let rq = Query::parse_rq("job = \"biologist\"", "", "fa^2 fn", &g).unwrap();
        let line = encode_query(&rq, &g);
        let back = parse_query_line(1, &line, &g).unwrap();
        assert_eq!(encode_query(&back, &g), line);

        let pq =
            Query::parse_pq("node a: job = \"doctor\";\nnode b;\nedge a -> b: fa+;", &g).unwrap();
        let line = encode_query(&pq, &g);
        assert!(!line.contains('\n'), "pq must travel as one line");
        let back = parse_query_line(1, &line, &g).unwrap();
        assert_eq!(encode_query(&back, &g), line);
    }

    #[test]
    fn errors_carry_the_wire_line_number() {
        let g = essembly();
        let body = "rq\t\t\tfa\nzz\t1\t2\n";
        let err = parse_query_body(body, &g).unwrap_err();
        assert_eq!(
            err,
            EngineError::BadQuery {
                line: 2,
                msg: "unknown op \"zz\" (expected rq or pq)".into()
            }
        );
        let err = parse_query_body("rq\t\t\tno_such_color", &g).unwrap_err();
        assert!(
            matches!(err, EngineError::BadQuery { line: 1, .. }),
            "{err}"
        );

        let err = parse_update_body("ins\t0\t1\tfa\ndel\t0\tnot-a-node\tfa", &g).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_update_body("ins\t0\t1\tchartreuse", &g).unwrap_err();
        assert!(err.to_string().contains("unknown edge color"), "{err}");
    }

    #[test]
    fn update_lines_round_trip() {
        let g = essembly();
        let fa = g.alphabet().get("fa").unwrap();
        for u in [
            Update::Insert(NodeId(0), NodeId(3), fa),
            Update::Delete(NodeId(2), NodeId(1), fa),
        ] {
            let line = encode_update(&u, &g);
            assert_eq!(parse_update_line(1, &line, &g).unwrap(), u);
        }
    }
}
