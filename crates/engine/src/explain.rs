//! Profiling support for the explain surface: a probe-counting
//! [`DistProbe`] wrapper and compact query rendering.

use crate::batch::Query;
use rpq_graph::{Color, Graph, NodeId};
use rpq_index::DistProbe;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`DistProbe`] decorator that counts probe calls while delegating
/// every method to the wrapped backend — so the profiled path exercises
/// the backend's own optimized implementations (e.g. the hop-label bulk
/// `sources_reaching_within`), not the trait defaults.
pub(crate) struct CountingProbe<'a, P: DistProbe + ?Sized> {
    inner: &'a P,
    probes: AtomicU64,
}

impl<'a, P: DistProbe + ?Sized> CountingProbe<'a, P> {
    pub(crate) fn new(inner: &'a P) -> Self {
        CountingProbe {
            inner,
            probes: AtomicU64::new(0),
        }
    }

    /// Probes issued so far.
    pub(crate) fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

impl<P: DistProbe + ?Sized> DistProbe for CountingProbe<'_, P> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn dist(&self, from: NodeId, to: NodeId, color: Color) -> u16 {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.inner.dist(from, to, color)
    }

    fn for_each_within(&self, from: NodeId, color: Color, max: u16, f: &mut dyn FnMut(NodeId)) {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.inner.for_each_within(from, color, max, f)
    }

    fn has_cycle_within(
        &self,
        g: &Graph,
        from: NodeId,
        color: Color,
        max_len: Option<u32>,
    ) -> bool {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.inner.has_cycle_within(g, from, color, max_len)
    }

    fn reaches_within(
        &self,
        g: &Graph,
        from: NodeId,
        to: NodeId,
        color: Color,
        max_len: Option<u32>,
    ) -> bool {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.inner.reaches_within(g, from, to, color, max_len)
    }

    fn sources_reaching_within(
        &self,
        g: &Graph,
        sources: &[NodeId],
        targets: &[NodeId],
        color: Color,
        max_len: Option<u32>,
    ) -> Vec<bool> {
        self.probes
            .fetch_add(sources.len() as u64, Ordering::Relaxed);
        self.inner
            .sources_reaching_within(g, sources, targets, color, max_len)
    }
}

/// Compact, human-readable one-line rendering of a query for profiles
/// and the slow-query log.
pub(crate) fn query_summary(query: &Query, g: &Graph) -> String {
    match query {
        Query::Rq(rq) => format!(
            "rq: {} -[{}]-> {}",
            rq.from.display(g.schema()),
            rq.regex.display(g.alphabet()),
            rq.to.display(g.schema()),
        ),
        Query::Pq(pq) => {
            let text = rpq_core::lang::format_pq(pq, g.schema(), g.alphabet());
            format!("pq: {}", text.replace('\n', " "))
        }
    }
}
